//! The environment trait and step outcome type.

use crate::state::{EnvState, RestoreError};

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// The next observation, row-major `[planes, height, width]`.
    pub observation: Vec<f32>,
    /// Reward earned by the step (environment-native scale).
    pub reward: f32,
    /// `true` when the episode ended with this step; the caller must
    /// [`Environment::reset`] before stepping again.
    pub done: bool,
}

/// A Markov decision process with image-like observations and a discrete
/// action space.
///
/// Action `0` is always a no-op, which the evaluation protocol's null-op
/// starts rely on. Implementations are deterministic given their
/// construction seed.
///
/// Environments must be [`Send`] so rollout and evaluation lanes can step
/// them on worker threads (implementations are plain data plus a seeded
/// PRNG, so this costs nothing).
pub trait Environment: Send {
    /// Display name, matching the Atari game this environment stands in
    /// for (e.g. `"Breakout"`).
    fn name(&self) -> &str;

    /// Observation shape as `(planes, height, width)`.
    fn observation_shape(&self) -> (usize, usize, usize);

    /// Number of discrete actions (`>= 1`; action `0` is a no-op).
    fn action_count(&self) -> usize;

    /// Start a new episode and return the initial observation.
    fn reset(&mut self) -> Vec<f32>;

    /// Advance one step with `action`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `action >= self.action_count()` or if the
    /// previous step ended the episode and `reset` has not been called.
    fn step(&mut self, action: usize) -> StepOutcome;

    /// Total observation length (`planes * height * width`).
    fn observation_len(&self) -> usize {
        let (p, h, w) = self.observation_shape();
        p * h * w
    }

    /// Capture the complete dynamic state of the environment — RNG words,
    /// entity positions, counters, episode flags — so that
    /// [`Environment::restore`] resumes the episode bit-exactly: after a
    /// snapshot/restore pair, identical action sequences must yield
    /// identical observations, rewards, and `done` flags.
    fn snapshot(&self) -> EnvState;

    /// Restore a state captured by [`Environment::snapshot`] on an
    /// environment of the same type and configuration.
    ///
    /// On error the environment's state is unspecified (call
    /// [`Environment::reset`] before stepping again); no implementation
    /// panics on a foreign or truncated snapshot.
    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError>;
}

impl Environment for Box<dyn Environment> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        self.as_ref().observation_shape()
    }

    fn action_count(&self) -> usize {
        self.as_ref().action_count()
    }

    fn reset(&mut self) -> Vec<f32> {
        self.as_mut().reset()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        self.as_mut().step(action)
    }

    fn snapshot(&self) -> EnvState {
        self.as_ref().snapshot()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        self.as_mut().restore(state)
    }
}

/// Plane-indexed observation canvas shared by the game implementations.
///
/// Games draw entities into named planes; `finish` yields the flat
/// `[planes, h, w]` observation vector.
#[derive(Debug, Clone)]
pub(crate) struct Canvas {
    planes: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl Canvas {
    pub(crate) fn new(planes: usize, h: usize, w: usize) -> Self {
        Canvas {
            planes,
            h,
            w,
            data: vec![0.0; planes * h * w],
        }
    }

    /// Paint intensity `v` at `(row, col)` of `plane`; out-of-bounds paints
    /// are ignored so callers can draw partially visible entities.
    pub(crate) fn paint(&mut self, plane: usize, row: isize, col: isize, v: f32) {
        debug_assert!(plane < self.planes, "plane {plane} out of range");
        if row < 0 || col < 0 {
            return;
        }
        let (row, col) = (row as usize, col as usize);
        if row >= self.h || col >= self.w {
            return;
        }
        self.data[(plane * self.h + row) * self.w + col] = v;
    }

    pub(crate) fn into_observation(self) -> Vec<f32> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canvas_paint_and_layout() {
        let mut c = Canvas::new(2, 3, 4);
        c.paint(1, 2, 3, 0.5);
        let obs = c.into_observation();
        assert_eq!(obs.len(), 24);
        assert_eq!(obs[(1 * 3 + 2) * 4 + 3], 0.5);
        assert_eq!(obs.iter().filter(|&&v| v != 0.0).count(), 1);
    }

    #[test]
    fn canvas_ignores_out_of_bounds() {
        let mut c = Canvas::new(1, 2, 2);
        c.paint(0, -1, 0, 1.0);
        c.paint(0, 0, 5, 1.0);
        c.paint(0, 2, 0, 1.0);
        assert!(c.into_observation().iter().all(|&v| v == 0.0));
    }
}
