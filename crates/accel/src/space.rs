//! The discrete accelerator search space and its knob enumeration.

use crate::template::{
    AcceleratorConfig, BufferAlloc, ChunkConfig, Dataflow, NocTopology, PeArray, Tiling,
};
use serde::{Deserialize, Serialize};

/// Buffer split options as `(input, weight, output)` fractions of a
/// chunk's buffer budget.
const BUFFER_SPLITS: [(f64, f64, f64); 6] = [
    (0.25, 0.50, 0.25),
    (0.50, 0.25, 0.25),
    (0.25, 0.25, 0.50),
    (1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0),
    (0.40, 0.40, 0.20),
    (0.20, 0.40, 0.40),
];

/// Discrete choices for every accelerator knob. The joint space (all knobs
/// of all chunks plus the per-layer assignment) matches the paper's
/// "over 10²⁷ searchable choices" at paper scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// PE-array row options.
    pub pe_rows: Vec<usize>,
    /// PE-array column options.
    pub pe_cols: Vec<usize>,
    /// NoC options.
    pub nocs: Vec<NocTopology>,
    /// Dataflow options.
    pub dataflows: Vec<Dataflow>,
    /// Per-chunk buffer budget options (KiB).
    pub buffer_totals_kb: Vec<usize>,
    /// `Tm` options.
    pub tm: Vec<usize>,
    /// `Tn` options.
    pub tn: Vec<usize>,
    /// `Tr` options.
    pub tr: Vec<usize>,
    /// `Tc` options.
    pub tc: Vec<usize>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            pe_rows: vec![2, 4, 8, 12, 16, 24],
            pe_cols: vec![2, 4, 8, 16],
            nocs: vec![
                NocTopology::Broadcast,
                NocTopology::Systolic,
                NocTopology::Multicast,
            ],
            dataflows: vec![
                Dataflow::OutputStationary,
                Dataflow::WeightStationary,
                Dataflow::RowStationary,
            ],
            buffer_totals_kb: vec![32, 64, 128, 256],
            tm: vec![2, 4, 8, 16, 32],
            tn: vec![2, 4, 8, 16],
            tr: vec![2, 4, 8],
            tc: vec![2, 4, 8],
        }
    }
}

/// Number of buffer-split options.
#[must_use]
pub(crate) fn buffer_split_count() -> usize {
    BUFFER_SPLITS.len()
}

/// Apportion `total_kb` KiB among (input, weight, output) by the largest-
/// remainder method: floor each share, then hand the leftover KiB to the
/// largest fractional remainders (ties broken by operand order). The
/// three parts always sum to exactly `total_kb` — naive rounding could
/// exceed the selected budget (e.g. 32 KiB x (1/3, 1/3, 1/3) rounds to
/// 11+11+11 = 33 KiB).
fn split_buffer(total_kb: usize, fractions: (f64, f64, f64)) -> BufferAlloc {
    let fr = [fractions.0, fractions.1, fractions.2];
    let mut parts = [0usize; 3];
    let mut remainders = [0f64; 3];
    for i in 0..3 {
        let raw = total_kb as f64 * fr[i];
        let floor = raw.floor();
        parts[i] = floor as usize;
        remainders[i] = raw - floor;
    }
    let mut leftover = total_kb.saturating_sub(parts.iter().sum::<usize>());
    let mut order = [0usize, 1, 2];
    order.sort_by(|&a, &b| {
        remainders[b]
            .total_cmp(&remainders[a])
            .then(a.cmp(&b))
    });
    for &i in &order {
        if leftover == 0 {
            break;
        }
        parts[i] += 1;
        leftover -= 1;
    }
    // Every operand needs at least 1 KiB; steal from the largest part
    // (unreachable for the shipped option lists, where the smallest share
    // is 0.2 x 32 KiB, but decode stays total for arbitrary spaces).
    for i in 0..3 {
        if parts[i] == 0 {
            let max = (0..3).fold(0, |m, j| if parts[j] > parts[m] { j } else { m });
            if parts[max] > 1 {
                parts[max] -= 1;
                parts[i] = 1;
            }
        }
    }
    BufferAlloc {
        input_kb: parts[0],
        weight_kb: parts[1],
        output_kb: parts[2],
    }
}

/// Why a choice vector failed to decode against a [`SearchSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceError {
    /// A chunk choice vector has the wrong length.
    ChunkArity {
        /// Knobs one chunk needs.
        expected: usize,
        /// Knobs provided.
        actual: usize,
    },
    /// A knob choice indexes past its option list.
    KnobOutOfRange {
        /// Knob position in decode order.
        knob: usize,
        /// The offending choice.
        choice: usize,
        /// The option count of that knob.
        size: usize,
    },
    /// A full-accelerator choice vector has the wrong length.
    AcceleratorArity {
        /// Knobs the accelerator needs.
        expected: usize,
        /// Knobs provided.
        actual: usize,
    },
    /// An assignment entry indexes a chunk that does not exist.
    AssignmentOutOfRange {
        /// The layer whose assignment is invalid.
        layer: usize,
        /// The offending chunk index.
        assignment: usize,
        /// Number of chunks being decoded.
        num_chunks: usize,
    },
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SpaceError::ChunkArity { expected, actual } => {
                write!(f, "chunk knob arity mismatch: expected {expected}, got {actual}")
            }
            SpaceError::KnobOutOfRange { knob, choice, size } => {
                write!(f, "knob choice {choice} out of range {size} (knob {knob})")
            }
            SpaceError::AcceleratorArity { expected, actual } => {
                write!(
                    f,
                    "accelerator knob arity mismatch: expected {expected}, got {actual}"
                )
            }
            SpaceError::AssignmentOutOfRange {
                layer,
                assignment,
                num_chunks,
            } => {
                write!(
                    f,
                    "assignment {assignment} out of range: layer {layer} needs a chunk \
                     index below {num_chunks}"
                )
            }
        }
    }
}

impl std::error::Error for SpaceError {}

impl SearchSpace {
    /// A monolithic-template preset: one large compute engine executing
    /// layers back-to-back (pair with `num_chunks = 1`). Demonstrates the
    /// paper's claim that the search "can be applied on top of different
    /// accelerator templates" — the knobs are the same, the template
    /// degenerates to a single-stage design with bigger PE arrays and
    /// buffers.
    #[must_use]
    pub fn monolithic() -> Self {
        SearchSpace {
            pe_rows: vec![8, 16, 24, 30],
            pe_cols: vec![8, 16, 24, 30],
            buffer_totals_kb: vec![256, 512, 1024],
            ..SearchSpace::default()
        }
    }

    /// An Eyeriss-like preset: row-stationary dataflow only, modest PE
    /// arrays, register-file-heavy buffer splits.
    #[must_use]
    pub fn eyeriss_like() -> Self {
        SearchSpace {
            pe_rows: vec![12, 14, 16],
            pe_cols: vec![12, 14, 16],
            dataflows: vec![Dataflow::RowStationary],
            nocs: vec![NocTopology::Multicast],
            ..SearchSpace::default()
        }
    }
}

impl SearchSpace {
    /// Choice counts of one chunk's knobs, in decode order:
    /// `[pe_rows, pe_cols, noc, dataflow, buffer_total, buffer_split,
    /// tm, tn, tr, tc]`.
    #[must_use]
    pub fn chunk_knob_sizes(&self) -> Vec<usize> {
        vec![
            self.pe_rows.len(),
            self.pe_cols.len(),
            self.nocs.len(),
            self.dataflows.len(),
            self.buffer_totals_kb.len(),
            buffer_split_count(),
            self.tm.len(),
            self.tn.len(),
            self.tr.len(),
            self.tc.len(),
        ]
    }

    /// Decode one chunk's knob choices into a [`ChunkConfig`].
    ///
    /// # Errors
    ///
    /// [`SpaceError::ChunkArity`] or [`SpaceError::KnobOutOfRange`] when
    /// `choices` does not address this space.
    #[must_use = "the decoded chunk config is the whole point of the call"]
    pub fn try_decode_chunk(&self, choices: &[usize]) -> Result<ChunkConfig, SpaceError> {
        let sizes = self.chunk_knob_sizes();
        if choices.len() != sizes.len() {
            return Err(SpaceError::ChunkArity {
                expected: sizes.len(),
                actual: choices.len(),
            });
        }
        for (knob, (&c, &s)) in choices.iter().zip(sizes.iter()).enumerate() {
            if c >= s {
                return Err(SpaceError::KnobOutOfRange {
                    knob,
                    choice: c,
                    size: s,
                });
            }
        }
        Ok(ChunkConfig {
            pe: PeArray {
                rows: self.pe_rows[choices[0]],
                cols: self.pe_cols[choices[1]],
            },
            noc: self.nocs[choices[2]],
            dataflow: self.dataflows[choices[3]],
            buffers: split_buffer(self.buffer_totals_kb[choices[4]], BUFFER_SPLITS[choices[5]]),
            tiling: Tiling {
                tm: self.tm[choices[6]],
                tn: self.tn[choices[7]],
                tr: self.tr[choices[8]],
                tc: self.tc[choices[9]],
            },
        })
    }

    /// Panicking convenience wrapper around
    /// [`SearchSpace::try_decode_chunk`].
    ///
    /// # Panics
    ///
    /// Panics if `choices` has the wrong arity or any index is out of
    /// range.
    #[must_use]
    pub fn decode_chunk(&self, choices: &[usize]) -> ChunkConfig {
        match self.try_decode_chunk(choices) {
            Ok(chunk) => chunk,
            // Callers who must handle malformed choices use
            // `try_decode_chunk`; reaching this arm is a caller bug the
            // documented contract rules out.
            Err(e) => unreachable!("decode_chunk precondition violated: {e}"),
        }
    }

    /// Decode a full accelerator: `num_chunks` consecutive chunk-knob
    /// groups followed by one assignment knob (with `num_chunks` choices)
    /// per layer.
    ///
    /// # Errors
    ///
    /// [`SpaceError::AcceleratorArity`], or the first chunk/assignment
    /// decoding error encountered.
    pub fn try_decode(
        &self,
        num_chunks: usize,
        num_layers: usize,
        choices: &[usize],
    ) -> Result<AcceleratorConfig, SpaceError> {
        let per_chunk = self.chunk_knob_sizes().len();
        let expected = num_chunks * per_chunk + num_layers;
        if choices.len() != expected {
            return Err(SpaceError::AcceleratorArity {
                expected,
                actual: choices.len(),
            });
        }
        let chunks = (0..num_chunks)
            .map(|c| self.try_decode_chunk(&choices[c * per_chunk..(c + 1) * per_chunk]))
            .collect::<Result<Vec<_>, _>>()?;
        let assignment = choices[num_chunks * per_chunk..]
            .iter()
            .enumerate()
            .map(|(layer, &a)| {
                if a < num_chunks {
                    Ok(a)
                } else {
                    Err(SpaceError::AssignmentOutOfRange {
                        layer,
                        assignment: a,
                        num_chunks,
                    })
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(AcceleratorConfig { chunks, assignment })
    }

    /// Panicking convenience wrapper around [`SearchSpace::try_decode`].
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or out-of-range choices.
    #[must_use]
    pub fn decode(
        &self,
        num_chunks: usize,
        num_layers: usize,
        choices: &[usize],
    ) -> AcceleratorConfig {
        match self.try_decode(num_chunks, num_layers, choices) {
            Ok(accel) => accel,
            // Callers who must handle malformed choices use `try_decode`;
            // reaching this arm is a caller bug the documented contract
            // rules out.
            Err(e) => unreachable!("decode precondition violated: {e}"),
        }
    }

    /// Knob sizes for the whole accelerator, in the same order
    /// [`SearchSpace::decode`] expects.
    #[must_use]
    pub fn knob_sizes(&self, num_chunks: usize, num_layers: usize) -> Vec<usize> {
        let mut sizes = Vec::new();
        for _ in 0..num_chunks {
            sizes.extend(self.chunk_knob_sizes());
        }
        sizes.extend(std::iter::repeat(num_chunks).take(num_layers));
        sizes
    }

    /// Cardinality of the joint space as `log10`.
    #[must_use]
    pub fn log10_cardinality(&self, num_chunks: usize, num_layers: usize) -> f64 {
        self.knob_sizes(num_chunks, num_layers)
            .iter()
            .map(|&s| (s as f64).log10())
            .sum()
    }

    /// Cardinality of the joint space (may be `inf` for huge spaces; use
    /// [`SearchSpace::log10_cardinality`] for reporting).
    #[must_use]
    pub fn cardinality(&self, num_chunks: usize, num_layers: usize) -> f64 {
        10f64.powf(self.log10_cardinality(num_chunks, num_layers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_space_exceeds_1e27() {
        // Paper scale: 4 pipeline chunks and a ResNet-scale layer count.
        let space = SearchSpace::default();
        let log10 = space.log10_cardinality(4, 20);
        assert!(log10 > 27.0, "log10 cardinality {log10} must exceed 27");
    }

    #[test]
    fn decode_round_trips_all_zero_choices() {
        let space = SearchSpace::default();
        let n_knobs = space.knob_sizes(2, 3).len();
        let cfg = space.decode(2, 3, &vec![0; n_knobs]);
        assert_eq!(cfg.chunks.len(), 2);
        assert_eq!(cfg.assignment, vec![0, 0, 0]);
        assert_eq!(cfg.chunks[0].pe.rows, 2);
        assert!(cfg.assignment_valid());
    }

    #[test]
    fn decode_chunk_buffer_split_sums_to_total() {
        // Largest-remainder allocation: the three shares sum to exactly
        // the selected budget for every (total, split) pair in the space.
        let space = SearchSpace::default();
        for (budget, &total_kb) in space.buffer_totals_kb.iter().enumerate() {
            for split in 0..buffer_split_count() {
                let chunk = space.decode_chunk(&[0, 0, 0, 0, budget, split, 0, 0, 0, 0]);
                assert_eq!(
                    chunk.buffers.total_kb(),
                    total_kb,
                    "budget {total_kb} KiB, split {split}: {:?}",
                    chunk.buffers
                );
                assert!(chunk.buffers.input_kb >= 1);
                assert!(chunk.buffers.weight_kb >= 1);
                assert!(chunk.buffers.output_kb >= 1);
            }
        }
    }

    #[test]
    fn split_buffer_handles_thirds_exactly() {
        // 32 x (1/3, 1/3, 1/3): floors are 10+10+10, the 2 leftover KiB go
        // to the two largest remainders (input, weight by operand order).
        let alloc = split_buffer(32, (1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0));
        assert_eq!((alloc.input_kb, alloc.weight_kb, alloc.output_kb), (11, 11, 10));
        assert_eq!(alloc.total_kb(), 32);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let space = SearchSpace::default();
        let _ = space.decode(1, 1, &[0, 0]);
    }

    #[test]
    fn try_decode_reports_structured_errors() {
        let space = SearchSpace::default();
        let per_chunk = space.chunk_knob_sizes().len();
        assert_eq!(
            space.try_decode(1, 1, &[0, 0]),
            Err(SpaceError::AcceleratorArity {
                expected: per_chunk + 1,
                actual: 2,
            })
        );
        // Knob 0 (pe_rows) has 6 options; choice 6 is one past the end.
        let mut bad_knob = vec![0; per_chunk + 1];
        bad_knob[0] = space.pe_rows.len();
        let err = space.try_decode(1, 1, &bad_knob).unwrap_err();
        assert_eq!(
            err,
            SpaceError::KnobOutOfRange {
                knob: 0,
                choice: space.pe_rows.len(),
                size: space.pe_rows.len(),
            }
        );
        assert!(err.to_string().contains("out of range"));
        // Assignment entry beyond the chunk count.
        let mut bad_assign = vec![0; per_chunk + 2];
        bad_assign[per_chunk + 1] = 1;
        assert_eq!(
            space.try_decode(1, 2, &bad_assign),
            Err(SpaceError::AssignmentOutOfRange {
                layer: 1,
                assignment: 1,
                num_chunks: 1,
            })
        );
        assert_eq!(
            space.try_decode_chunk(&[0; 3]),
            Err(SpaceError::ChunkArity {
                expected: per_chunk,
                actual: 3,
            })
        );
        // The Ok path agrees with the panicking wrapper.
        let ok = space.try_decode(1, 1, &vec![0; per_chunk + 1]).expect("legal");
        assert_eq!(ok, space.decode(1, 1, &vec![0; per_chunk + 1]));
    }

    #[test]
    fn alternative_templates_decode_and_search() {
        use crate::das::{DasConfig, DasEngine};
        use crate::predictor::PerfModel;
        use crate::zc706::FpgaTarget;
        use a3cs_nn::{vanilla, LayerDesc};

        let layers: Vec<LayerDesc> = vanilla(4, 12, 12, 32, 0).layer_descs();
        let target = FpgaTarget::zc706();
        for (space, chunks) in [
            (SearchSpace::monolithic(), 1usize),
            (SearchSpace::eyeriss_like(), 3),
        ] {
            let mut das = DasEngine::new(
                DasConfig {
                    space,
                    num_chunks: chunks,
                    ..DasConfig::default()
                },
                5,
            );
            let best = das.run(&layers, &target, 150);
            let report = PerfModel::evaluate(&best, &layers, &target);
            assert!(report.fps > 0.0 && report.fps.is_finite());
            assert_eq!(best.chunks.len(), chunks);
        }
    }

    #[test]
    fn eyeriss_preset_is_row_stationary_only() {
        let space = SearchSpace::eyeriss_like();
        assert_eq!(space.dataflows, vec![Dataflow::RowStationary]);
        let n = space.knob_sizes(1, 1).len();
        let cfg = space.decode(1, 1, &vec![0; n]);
        assert_eq!(cfg.chunks[0].dataflow, Dataflow::RowStationary);
    }

    #[test]
    fn knob_sizes_align_with_decode() {
        let space = SearchSpace::default();
        let sizes = space.knob_sizes(3, 5);
        // Max-choice vector must decode without panic.
        let choices: Vec<usize> = sizes.iter().map(|&s| s - 1).collect();
        let cfg = space.decode(3, 5, &choices);
        assert!(cfg.assignment_valid());
        assert_eq!(cfg.assignment, vec![2; 5]);
    }
}
