//! Environment wrappers implementing the paper's evaluation protocol:
//! frame stacking, reward clipping, null-op starts and episode caps.

use crate::env::{Environment, StepOutcome};
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stack the most recent `k` observations along the plane axis, giving the
/// agent short-term motion information (standard Atari preprocessing).
pub struct FrameStack<E> {
    inner: E,
    k: usize,
    frames: Vec<Vec<f32>>,
}

impl<E: Environment> FrameStack<E> {
    /// Wrap `inner`, stacking `k >= 1` frames.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(inner: E, k: usize) -> Self {
        assert!(k >= 1, "frame stack needs k >= 1");
        FrameStack {
            inner,
            k,
            frames: Vec::new(),
        }
    }

    fn stacked(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.k * self.inner.observation_len());
        for f in &self.frames {
            out.extend_from_slice(f);
        }
        out
    }

    /// Access the wrapped environment.
    #[must_use]
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: Environment> Environment for FrameStack<E> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        let (p, h, w) = self.inner.observation_shape();
        (p * self.k, h, w)
    }

    fn action_count(&self) -> usize {
        self.inner.action_count()
    }

    fn reset(&mut self) -> Vec<f32> {
        let first = self.inner.reset();
        self.frames = vec![first; self.k];
        self.stacked()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        let out = self.inner.step(action);
        self.frames.remove(0);
        self.frames.push(out.observation);
        StepOutcome {
            observation: self.stacked(),
            reward: out.reward,
            done: out.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("FrameStack");
        w.usize(self.k);
        w.usize(self.frames.len());
        for frame in &self.frames {
            w.usize(frame.len());
            w.floats(frame);
        }
        w.child(self.inner.snapshot());
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "FrameStack")?;
        let k = r.usize()?;
        if k != self.k {
            return Err(r.out_of_range(format!("stack depth {k} != configured {}", self.k)));
        }
        let n = r.len(64)?;
        let mut frames = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.len(1 << 20)?;
            frames.push(r.floats(len)?);
        }
        self.frames = frames;
        self.inner.restore(r.child()?)?;
        r.finish()
    }
}

/// Clip rewards to `{-1, 0, +1}` (sign clipping), the standard DQN/A3C
/// training transform. Evaluation uses the unclipped environment.
pub struct ClipReward<E> {
    inner: E,
}

impl<E: Environment> ClipReward<E> {
    /// Wrap `inner` with sign reward clipping.
    #[must_use]
    pub fn new(inner: E) -> Self {
        ClipReward { inner }
    }
}

impl<E: Environment> Environment for ClipReward<E> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        self.inner.observation_shape()
    }

    fn action_count(&self) -> usize {
        self.inner.action_count()
    }

    fn reset(&mut self) -> Vec<f32> {
        self.inner.reset()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        let mut out = self.inner.step(action);
        out.reward = out.reward.signum() * f32::from(out.reward != 0.0);
        out
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("ClipReward");
        w.child(self.inner.snapshot());
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "ClipReward")?;
        self.inner.restore(r.child()?)?;
        r.finish()
    }
}

/// Begin each episode with a random number (up to `max_noops`) of no-op
/// actions — the paper's "null-op starts" evaluation protocol, which
/// decorrelates initial states across the 30 evaluation episodes.
pub struct NoopStart<E> {
    inner: E,
    rng: StdRng,
    max_noops: usize,
}

impl<E: Environment> NoopStart<E> {
    /// Wrap `inner` applying up to `max_noops` no-ops at reset.
    #[must_use]
    pub fn new(inner: E, max_noops: usize, seed: u64) -> Self {
        NoopStart {
            inner,
            rng: StdRng::seed_from_u64(seed),
            max_noops,
        }
    }
}

impl<E: Environment> Environment for NoopStart<E> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        self.inner.observation_shape()
    }

    fn action_count(&self) -> usize {
        self.inner.action_count()
    }

    fn reset(&mut self) -> Vec<f32> {
        let mut obs = self.inner.reset();
        let noops = if self.max_noops == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.max_noops)
        };
        for _ in 0..noops {
            let out = self.inner.step(0);
            if out.done {
                obs = self.inner.reset();
            } else {
                obs = out.observation;
            }
        }
        obs
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        self.inner.step(action)
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("NoopStart");
        w.usize(self.max_noops);
        w.rng(&self.rng);
        w.child(self.inner.snapshot());
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "NoopStart")?;
        let max_noops = r.usize()?;
        if max_noops != self.max_noops {
            return Err(r.out_of_range(format!(
                "max_noops {max_noops} != configured {}",
                self.max_noops
            )));
        }
        self.rng = r.rng()?;
        self.inner.restore(r.child()?)?;
        r.finish()
    }
}

/// Truncate episodes after `max_steps` steps (reported as `done`), bounding
/// rollout and evaluation time on unbounded games.
pub struct EpisodeLimit<E> {
    inner: E,
    max_steps: usize,
    steps: usize,
}

impl<E: Environment> EpisodeLimit<E> {
    /// Wrap `inner` with a step cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_steps == 0`.
    #[must_use]
    pub fn new(inner: E, max_steps: usize) -> Self {
        assert!(max_steps > 0, "episode limit must be positive");
        EpisodeLimit {
            inner,
            max_steps,
            steps: 0,
        }
    }
}

impl<E: Environment> Environment for EpisodeLimit<E> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        self.inner.observation_shape()
    }

    fn action_count(&self) -> usize {
        self.inner.action_count()
    }

    fn reset(&mut self) -> Vec<f32> {
        self.steps = 0;
        self.inner.reset()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        let mut out = self.inner.step(action);
        self.steps += 1;
        if self.steps >= self.max_steps {
            out.done = true;
        }
        out
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("EpisodeLimit");
        w.usize(self.max_steps);
        w.usize(self.steps);
        w.child(self.inner.snapshot());
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "EpisodeLimit")?;
        let max_steps = r.usize()?;
        if max_steps != self.max_steps {
            return Err(r.out_of_range(format!(
                "max_steps {max_steps} != configured {}",
                self.max_steps
            )));
        }
        self.steps = r.usize()?;
        self.inner.restore(r.child()?)?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::Breakout;

    #[test]
    fn frame_stack_multiplies_planes() {
        let mut env = FrameStack::new(Breakout::new(1), 4);
        let (p, h, w) = env.observation_shape();
        assert_eq!(p, 12); // 3 planes * 4 frames
        let obs = env.reset();
        assert_eq!(obs.len(), p * h * w);
        // All four stacked frames are identical right after reset.
        let len = obs.len() / 4;
        assert_eq!(&obs[..len], &obs[len..2 * len]);
        let out = env.step(2);
        assert_eq!(out.observation.len(), obs.len());
    }

    #[test]
    fn frame_stack_shifts_history() {
        let mut env = FrameStack::new(Breakout::new(1), 2);
        let obs0 = env.reset();
        let len = obs0.len() / 2;
        let out = env.step(2); // move paddle right: new frame differs
        // Newest frame sits at the back; the old newest moved to the front.
        assert_eq!(&out.observation[..len], &obs0[len..]);
        assert_ne!(&out.observation[len..], &obs0[len..]);
    }

    #[test]
    fn clip_reward_signs() {
        struct Fixed(f32, bool);
        impl Environment for Fixed {
            fn name(&self) -> &str {
                "Fixed"
            }
            fn observation_shape(&self) -> (usize, usize, usize) {
                (1, 1, 1)
            }
            fn action_count(&self) -> usize {
                1
            }
            fn reset(&mut self) -> Vec<f32> {
                vec![0.0]
            }
            fn step(&mut self, _a: usize) -> StepOutcome {
                StepOutcome {
                    observation: vec![0.0],
                    reward: self.0,
                    done: self.1,
                }
            }
            fn snapshot(&self) -> EnvState {
                StateWriter::new("Fixed").finish()
            }
            fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
                StateReader::new(state, "Fixed")?.finish()
            }
        }
        for (raw, clipped) in [(3.5, 1.0), (-7.0, -1.0), (0.0, 0.0)] {
            let mut env = ClipReward::new(Fixed(raw, false));
            let _ = env.reset();
            assert_eq!(env.step(0).reward, clipped);
        }
    }

    #[test]
    fn noop_start_diversifies_initial_states() {
        let collect = |seed| {
            let mut env = NoopStart::new(Breakout::new(7), 8, seed);
            (0..6).map(|_| env.reset()).collect::<Vec<_>>()
        };
        let states = collect(1);
        let distinct = states
            .iter()
            .filter(|s| s.as_slice() != states[0].as_slice())
            .count();
        assert!(distinct > 0, "noop starts should vary the start state");
    }

    #[test]
    fn episode_limit_truncates() {
        let mut env = EpisodeLimit::new(Breakout::new(1), 5);
        let _ = env.reset();
        let mut steps = 0;
        loop {
            steps += 1;
            if env.step(0).done {
                break;
            }
        }
        assert!(steps <= 5);
        // Reset clears the counter.
        let _ = env.reset();
        let out = env.step(0);
        assert!(!out.done || steps == 1);
    }

    #[test]
    fn wrappers_compose() {
        let env = Breakout::new(3);
        let mut wrapped = EpisodeLimit::new(
            ClipReward::new(NoopStart::new(FrameStack::new(env, 4), 5, 11)),
            50,
        );
        let obs = wrapped.reset();
        assert_eq!(obs.len(), wrapped.observation_len());
        for _ in 0..60 {
            let out = wrapped.step(1);
            assert!(out.reward.abs() <= 1.0);
            if out.done {
                let _ = wrapped.reset();
            }
        }
    }
}
