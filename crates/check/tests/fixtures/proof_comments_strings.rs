//! Proof fixture: every hazard below appears only inside comments,
//! strings, or doc text — the token scanner must report ZERO hits.
//!
//! HashMap::new(), Instant::now(), std::thread::spawn, thread_rng(),
//! unsafe { }, x as u32, value.unwrap(), panic!("doc")

// line comment: HashMap, SystemTime::now(), from_entropy(), todo!()
/* block comment: HashSet, thread::Builder, rand::random::<u8>()
   nested /* unsafe { transmute } */ still a comment: expect("msg") */

/// Doc comment with a code example that must not count:
///
/// ```
/// let m = std::collections::HashMap::new();
/// let t = std::time::Instant::now();
/// std::thread::spawn(|| drop(rand::thread_rng()));
/// unsafe { core::hint::unreachable_unchecked() }
/// ```
pub fn messages() -> Vec<String> {
    vec![
        "HashMap iteration is randomized".to_string(),
        "Instant::now() and SystemTime belong to telemetry".to_string(),
        "std::thread::spawn bypasses the pool".to_string(),
        "thread_rng and from_entropy cannot replay".to_string(),
        String::from("unsafe { } needs review; x as u32 truncates"),
        "never .unwrap() or .expect() or panic!()".to_string(),
        r#"raw string: HashSet::new(); unimplemented!(); todo!()"#,
    ]
}

pub fn char_soup() -> Vec<char> {
    // Char literals exercise the lexer's '\''-vs-lifetime split.
    vec!['u', '\n', '\'', '\\', '"']
}
