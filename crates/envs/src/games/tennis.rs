//! Tennis: a vertical rally against a scripted opponent.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::games::clamp;
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;
const POINTS_PER_MATCH: i32 = 24;

/// Tennis stand-in: the agent plays the near (bottom) court against a
/// scripted opponent on the far side; the ball travels diagonally and
/// must be met with the racket (within one column). `+1`/`-1` per point,
/// fixed-length match of 24 points, so the match score lies in
/// `[-24, 24]` like Atari Tennis.
///
/// Actions: `0` no-op, `1` left, `2` right.
#[derive(Debug, Clone)]
pub struct Tennis {
    rng: StdRng,
    player: isize,
    opponent: isize,
    ball: (isize, isize),
    vel: (isize, isize),
    points_played: i32,
    done: bool,
}

impl Tennis {
    /// Create a seeded Tennis game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Tennis {
            rng: StdRng::seed_from_u64(seed),
            player: GRID as isize / 2,
            opponent: GRID as isize / 2,
            ball: (0, 0),
            vel: (1, 1),
            points_played: 0,
            done: true,
        }
    }

    fn serve(&mut self, toward_player: bool) {
        self.ball = (GRID as isize / 2, self.rng.gen_range(2..GRID as isize - 2));
        self.vel = (
            if toward_player { 1 } else { -1 },
            if self.rng.gen_bool(0.5) { 1 } else { -1 },
        );
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(3, GRID, GRID);
        for d in -1..=1 {
            canvas.paint(0, GRID as isize - 1, self.player + d, 1.0);
            canvas.paint(1, 0, self.opponent + d, 1.0);
        }
        canvas.paint(2, self.ball.0, self.ball.1, 1.0);
        canvas.into_observation()
    }
}

impl Environment for Tennis {
    fn name(&self) -> &str {
        "Tennis"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (3, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        3
    }

    fn reset(&mut self) -> Vec<f32> {
        self.player = GRID as isize / 2;
        self.opponent = GRID as isize / 2;
        self.points_played = 0;
        self.done = false;
        let toward = self.rng.gen_bool(0.5);
        self.serve(toward);
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        let lim = (1, GRID as isize - 2);
        match action {
            1 => self.player = clamp(self.player - 1, lim.0, lim.1),
            2 => self.player = clamp(self.player + 1, lim.0, lim.1),
            _ => {}
        }
        // Opponent tracks with 75% reliability.
        if self.rng.gen_bool(0.75) {
            let delta = (self.ball.1 - self.opponent).signum();
            self.opponent = clamp(self.opponent + delta, lim.0, lim.1);
        }

        // Ball motion with side-wall bounces.
        let mut nc = self.ball.1 + self.vel.1;
        if !(0..GRID as isize).contains(&nc) {
            self.vel.1 = -self.vel.1;
            nc = self.ball.1 + self.vel.1;
        }
        let nr = self.ball.0 + self.vel.0;

        let mut reward = 0.0f32;
        if nr >= GRID as isize - 1 {
            // Ball at the near baseline: return or lose the point.
            if (nc - self.player).abs() <= 1 {
                self.vel.0 = -1;
                self.ball = (GRID as isize - 2, nc);
            } else {
                reward -= 1.0;
                self.points_played += 1;
                self.serve(false);
            }
        } else if nr <= 0 {
            if (nc - self.opponent).abs() <= 1 {
                self.vel.0 = 1;
                self.ball = (1, nc);
            } else {
                reward += 1.0;
                self.points_played += 1;
                self.serve(true);
            }
        } else {
            self.ball = (nr, nc);
        }

        if self.points_played >= POINTS_PER_MATCH {
            self.done = true;
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("Tennis");
        w.rng(&self.rng);
        w.isize(self.player);
        w.isize(self.opponent);
        w.isize(self.ball.0);
        w.isize(self.ball.1);
        w.isize(self.vel.0);
        w.isize(self.vel.1);
        w.int(i64::from(self.points_played));
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "Tennis")?;
        self.rng = r.rng()?;
        self.player = r.isize()?;
        self.opponent = r.isize()?;
        self.ball = (r.isize()?, r.isize()?);
        self.vel = (r.isize()?, r.isize()?);
        self.points_played = r.i32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(Tennis::new(161), Tennis::new(161), 400);
    }

    #[test]
    fn match_score_is_bounded() {
        let mut env = Tennis::new(1);
        let _ = env.reset();
        let mut total = 0.0f32;
        loop {
            let out = env.step(0);
            total += out.reward;
            if out.done {
                break;
            }
        }
        assert!((-(POINTS_PER_MATCH as f32)..=POINTS_PER_MATCH as f32).contains(&total));
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = Tennis::new(2);
        let _ = random_rollout(&mut env, 1000, 20);
    }

    #[test]
    fn tracking_beats_idling() {
        let score = |track: bool| {
            let mut total = 0.0;
            for seed in 0..3 {
                let mut env = Tennis::new(seed);
                let _ = env.reset();
                for _ in 0..500 {
                    let a = if track {
                        match env.ball.1.cmp(&env.player) {
                            std::cmp::Ordering::Less => 1,
                            std::cmp::Ordering::Greater => 2,
                            std::cmp::Ordering::Equal => 0,
                        }
                    } else {
                        0
                    };
                    let out = env.step(a);
                    total += out.reward;
                    if out.done {
                        let _ = env.reset();
                    }
                }
            }
            total
        };
        assert!(score(true) > score(false));
    }
}
