//! Positive fixture: HashMap/HashSet in non-test code must fire A3CS-L301.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(words: &[String]) -> usize {
    let mut seen: HashSet<&str> = HashSet::new();
    for w in words {
        seen.insert(w);
    }
    seen.len()
}

pub fn index(words: &[String]) -> HashMap<String, usize> {
    let mut m = HashMap::new();
    for (i, w) in words.iter().enumerate() {
        m.insert(w.clone(), i);
    }
    m
}
