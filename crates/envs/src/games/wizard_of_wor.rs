//! Wizard of Wor: corridor-shooting monsters in a maze.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 11;

/// Wizard of Wor stand-in: hunt monsters through a maze. Shots travel
/// along corridors until a wall; kills pay `+1` (`+5` for the blue
/// Worluk that appears after a cleared dungeon). Monster contact ends
/// the episode.
///
/// Actions: `0` no-op, `1` up, `2` down, `3` left, `4` right,
/// `5` fire (along the last movement direction).
#[derive(Debug, Clone)]
pub struct WizardOfWor {
    rng: StdRng,
    walls: [[bool; GRID]; GRID],
    player: (isize, isize),
    facing: (isize, isize),
    monsters: Vec<(isize, isize)>,
    worluk: Option<(isize, isize)>,
    shot: Option<(isize, isize, isize, isize)>,
    dungeon: u32,
    clock: u32,
    done: bool,
}

fn maze_walls() -> [[bool; GRID]; GRID] {
    let mut walls = [[false; GRID]; GRID];
    for i in 0..GRID {
        walls[0][i] = true;
        walls[GRID - 1][i] = true;
        walls[i][0] = true;
        walls[i][GRID - 1] = true;
    }
    for r in (2..GRID - 1).step_by(2) {
        for c in (2..GRID - 1).step_by(2) {
            walls[r][c] = true;
        }
    }
    walls
}

impl WizardOfWor {
    /// Create a seeded Wizard of Wor game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        WizardOfWor {
            rng: StdRng::seed_from_u64(seed),
            walls: maze_walls(),
            player: (1, 1),
            facing: (0, 1),
            monsters: Vec::new(),
            worluk: None,
            shot: None,
            dungeon: 1,
            clock: 0,
            done: true,
        }
    }

    fn free(&self, r: isize, c: isize) -> bool {
        (0..GRID as isize).contains(&r)
            && (0..GRID as isize).contains(&c)
            && !self.walls[r as usize][c as usize]
    }

    fn spawn_monsters(&mut self) {
        self.monsters = vec![
            (GRID as isize - 2, GRID as isize - 2),
            (1, GRID as isize - 2),
            (GRID as isize - 2, 1),
        ];
        self.worluk = None;
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(5, GRID, GRID);
        for r in 0..GRID {
            for c in 0..GRID {
                if self.walls[r][c] {
                    canvas.paint(0, r as isize, c as isize, 1.0);
                }
            }
        }
        canvas.paint(1, self.player.0, self.player.1, 1.0);
        for &(r, c) in &self.monsters {
            canvas.paint(2, r, c, 1.0);
        }
        if let Some((r, c)) = self.worluk {
            canvas.paint(3, r, c, 1.0);
        }
        if let Some((r, c, _, _)) = self.shot {
            canvas.paint(4, r, c, 1.0);
        }
        canvas.into_observation()
    }

    fn monster_step(&mut self, idx: usize) {
        let (mr, mc) = self.monsters[idx];
        let (pr, pc) = self.player;
        let moves = [(-1, 0), (1, 0), (0, -1), (0, 1)];
        let options: Vec<(isize, isize)> = moves
            .iter()
            .map(|&(dr, dc)| (mr + dr, mc + dc))
            .filter(|&(r, c)| self.free(r, c))
            .collect();
        if options.is_empty() {
            return;
        }
        self.monsters[idx] = if self.rng.gen_bool(0.6) {
            match options
                .iter()
                .min_by_key(|&&(r, c)| (r - pr).abs() + (c - pc).abs())
            {
                Some(&best) => best,
                None => unreachable!("guarded by the is_empty check above"),
            }
        } else {
            options[self.rng.gen_range(0..options.len())]
        };
    }
}

impl Environment for WizardOfWor {
    fn name(&self) -> &str {
        "WizardOfWor"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (5, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        6
    }

    fn reset(&mut self) -> Vec<f32> {
        self.player = (1, 1);
        self.facing = (0, 1);
        self.shot = None;
        self.dungeon = 1;
        self.clock = 0;
        self.done = false;
        self.spawn_monsters();
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        self.clock += 1;
        match action {
            1..=4 => {
                let (dr, dc) = [(-1, 0), (1, 0), (0, -1), (0, 1)][action - 1];
                self.facing = (dr, dc);
                let (nr, nc) = (self.player.0 + dr, self.player.1 + dc);
                if self.free(nr, nc) {
                    self.player = (nr, nc);
                }
            }
            5 => {
                if self.shot.is_none() {
                    self.shot = Some((
                        self.player.0 + self.facing.0,
                        self.player.1 + self.facing.1,
                        self.facing.0,
                        self.facing.1,
                    ));
                }
            }
            _ => {}
        }

        let mut reward = 0.0f32;

        // Shot: 2 cells/step, stopped by walls.
        if let Some((mut r, mut c, dr, dc)) = self.shot.take() {
            let mut live = true;
            for _ in 0..2 {
                if !self.free(r, c) {
                    live = false;
                    break;
                }
                if let Some(i) = self.monsters.iter().position(|&m| m == (r, c)) {
                    self.monsters.swap_remove(i);
                    reward += 1.0;
                    live = false;
                    break;
                }
                if self.worluk == Some((r, c)) {
                    self.worluk = None;
                    reward += 5.0;
                    live = false;
                    break;
                }
                r += dr;
                c += dc;
            }
            if live && self.free(r, c) {
                self.shot = Some((r, c, dr, dc));
            }
        }

        // Monsters move every other step; the Worluk every step.
        if self.clock % 2 == 0 {
            for i in 0..self.monsters.len() {
                self.monster_step(i);
            }
        }
        if let Some((wr, wc)) = self.worluk {
            let moves = [(-1, 0), (1, 0), (0, -1), (0, 1)];
            let options: Vec<(isize, isize)> = moves
                .iter()
                .map(|&(dr, dc)| (wr + dr, wc + dc))
                .filter(|&(r, c)| self.free(r, c))
                .collect();
            if !options.is_empty() {
                self.worluk = Some(options[self.rng.gen_range(0..options.len())]);
            }
        }

        // Cleared dungeon: the Worluk appears; killing it (handled above)
        // advances to the next dungeon with fresh monsters.
        if self.monsters.is_empty() && self.worluk.is_none() {
            if reward >= 5.0 {
                // Worluk just died: next dungeon.
                self.dungeon += 1;
                self.spawn_monsters();
            } else {
                self.worluk = Some((GRID as isize / 2, GRID as isize / 2));
            }
        }

        let touched = self.monsters.iter().any(|&m| m == self.player)
            || self.worluk == Some(self.player);
        if touched {
            self.done = true;
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("WizardOfWor");
        w.rng(&self.rng);
        for row in &self.walls {
            for &cell in row {
                w.bool(cell);
            }
        }
        w.isize(self.player.0);
        w.isize(self.player.1);
        w.isize(self.facing.0);
        w.isize(self.facing.1);
        w.usize(self.monsters.len());
        for item in &self.monsters {
            w.isize(item.0);
            w.isize(item.1);
        }
        w.bool(self.worluk.is_some());
        if let Some(item) = &self.worluk {
            w.isize(item.0);
            w.isize(item.1);
        }
        w.bool(self.shot.is_some());
        if let Some(item) = &self.shot {
            w.isize(item.0);
            w.isize(item.1);
            w.isize(item.2);
            w.isize(item.3);
        }
        w.u32(self.dungeon);
        w.u32(self.clock);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "WizardOfWor")?;
        self.rng = r.rng()?;
        for row in &mut self.walls {
            for cell in row.iter_mut() {
                *cell = r.bool()?;
            }
        }
        self.player = (r.isize()?, r.isize()?);
        self.facing = (r.isize()?, r.isize()?);
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push((r.isize()?, r.isize()?));
        }
        self.monsters = items;
        self.worluk = if r.bool()? {
            Some((r.isize()?, r.isize()?))
        } else {
            None
        };
        self.shot = if r.bool()? {
            Some((r.isize()?, r.isize()?, r.isize()?, r.isize()?))
        } else {
            None
        };
        self.dungeon = r.u32()?;
        self.clock = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(WizardOfWor::new(181), WizardOfWor::new(181), 300);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = WizardOfWor::new(1);
        let total = random_rollout(&mut env, 1000, 22);
        assert!(total >= 0.0);
    }

    #[test]
    fn walls_stop_shots() {
        let mut env = WizardOfWor::new(2);
        let _ = env.reset();
        // Fire into the wall directly above the start corner.
        let _ = env.step(1); // face up (blocked by wall, stays put or moves)
        env.player = (1, 1);
        env.facing = (-1, 0);
        let _ = env.step(5);
        // Shot at (0,1) is inside the border wall: must be dead by now.
        assert!(env.shot.is_none());
    }

    #[test]
    fn worluk_appears_after_clearing_monsters() {
        let mut env = WizardOfWor::new(3);
        let _ = env.reset();
        env.monsters.clear();
        let _ = env.step(0);
        assert!(env.worluk.is_some());
    }

    #[test]
    fn killing_worluk_starts_next_dungeon() {
        let mut env = WizardOfWor::new(4);
        let _ = env.reset();
        env.monsters.clear();
        let _ = env.step(0); // worluk spawns at centre
        let (wr, wc) = env.worluk.expect("worluk present");
        env.shot = Some((wr, wc, 0, 1));
        let out = env.step(0);
        assert!(out.reward >= 5.0);
        assert_eq!(env.dungeon, 2);
        assert!(!env.monsters.is_empty());
    }
}
