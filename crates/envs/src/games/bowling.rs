//! Bowling: aim and release down a drifting lane.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::games::clamp;
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;
const FRAMES: u32 = 10;
const PIN_COL: isize = GRID as isize - 2;

/// Bowling stand-in: ten frames, one throw each. Position the ball
/// vertically, release it, and it rolls right with a per-frame seeded
/// drift; pins within one row of the ball's arrival are knocked down
/// (`+1` each). Ten frames end the episode, so scores are bounded like
/// Atari Bowling's.
///
/// Actions: `0` no-op, `1` up, `2` down, `3` throw.
#[derive(Debug, Clone)]
pub struct Bowling {
    rng: StdRng,
    ball_row: isize,
    ball_col: isize,
    rolling: bool,
    drift: isize,
    pins: Vec<isize>,
    frame: u32,
    done: bool,
}

impl Bowling {
    /// Create a seeded Bowling game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Bowling {
            rng: StdRng::seed_from_u64(seed),
            ball_row: GRID as isize / 2,
            ball_col: 1,
            rolling: false,
            drift: 0,
            pins: Vec::new(),
            frame: 0,
            done: true,
        }
    }

    fn rack_pins(&mut self) {
        // Five pins stacked vertically around the lane centre.
        self.pins = (3..8).map(|r| r as isize).collect();
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(3, GRID, GRID);
        canvas.paint(0, self.ball_row, self.ball_col, 1.0);
        for &r in &self.pins {
            canvas.paint(1, r, PIN_COL, 1.0);
        }
        // Frame counter bar.
        let remaining = (FRAMES - self.frame) as usize;
        for c in 0..remaining {
            canvas.paint(2, 0, c as isize, 1.0);
        }
        canvas.into_observation()
    }

    fn new_frame(&mut self) {
        self.ball_row = GRID as isize / 2;
        self.ball_col = 1;
        self.rolling = false;
        self.rack_pins();
    }
}

impl Environment for Bowling {
    fn name(&self) -> &str {
        "Bowling"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (3, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        4
    }

    fn reset(&mut self) -> Vec<f32> {
        self.frame = 0;
        self.done = false;
        self.new_frame();
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        let mut reward = 0.0f32;

        if self.rolling {
            // Ball advances two columns per step with occasional drift.
            for _ in 0..2 {
                self.ball_col += 1;
                if self.rng.gen_bool(0.25) {
                    self.ball_row = clamp(self.ball_row + self.drift, 1, GRID as isize - 2);
                }
                if self.ball_col >= PIN_COL {
                    let row = self.ball_row;
                    let before = self.pins.len();
                    self.pins.retain(|&p| (p - row).abs() > 1);
                    reward += (before - self.pins.len()) as f32;
                    self.frame += 1;
                    if self.frame >= FRAMES {
                        self.done = true;
                    } else {
                        self.new_frame();
                    }
                    break;
                }
            }
        } else {
            match action {
                1 => self.ball_row = clamp(self.ball_row - 1, 1, GRID as isize - 2),
                2 => self.ball_row = clamp(self.ball_row + 1, 1, GRID as isize - 2),
                3 => {
                    self.rolling = true;
                    self.drift = self.rng.gen_range(-1..=1);
                }
                _ => {}
            }
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("Bowling");
        w.rng(&self.rng);
        w.isize(self.ball_row);
        w.isize(self.ball_col);
        w.bool(self.rolling);
        w.isize(self.drift);
        w.usize(self.pins.len());
        for item in &self.pins {
            w.isize(*item);
        }
        w.u32(self.frame);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "Bowling")?;
        self.rng = r.rng()?;
        self.ball_row = r.isize()?;
        self.ball_col = r.isize()?;
        self.rolling = r.bool()?;
        self.drift = r.isize()?;
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(r.isize()?);
        }
        self.pins = items;
        self.frame = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(Bowling::new(71), Bowling::new(71), 400);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = Bowling::new(1);
        let total = random_rollout(&mut env, 800, 11);
        assert!(total >= 0.0);
    }

    #[test]
    fn ten_frames_end_the_episode() {
        let mut env = Bowling::new(2);
        let _ = env.reset();
        let mut frames_thrown = 0;
        loop {
            let out = env.step(3); // throw immediately every frame
            if env.frame > frames_thrown {
                frames_thrown = env.frame;
            }
            if out.done {
                break;
            }
        }
        assert_eq!(frames_thrown, FRAMES);
    }

    #[test]
    fn centre_throw_knocks_pins() {
        let mut env = Bowling::new(3);
        let _ = env.reset();
        let mut total = 0.0;
        loop {
            let out = env.step(3);
            total += out.reward;
            if out.done {
                break;
            }
        }
        assert!(total > 0.0, "centre throws should hit some pins");
    }

    #[test]
    fn aiming_moves_ball_only_before_release() {
        let mut env = Bowling::new(4);
        let _ = env.reset();
        let r0 = env.ball_row;
        let _ = env.step(1);
        assert_eq!(env.ball_row, r0 - 1);
        let _ = env.step(3); // release
        let row_at_release = env.ball_row;
        let _ = env.step(1); // aiming after release is ignored
        // Row may drift randomly but must not deterministically follow `up`.
        assert!((env.ball_row - row_at_release).abs() <= 1);
    }
}
