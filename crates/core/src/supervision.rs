//! In-process fault containment for the co-search loop.
//!
//! The pieces here let [`crate::CoSearch::run_guarded`] survive transient
//! faults *without* dying and resuming from disk (see `DESIGN.md` §12):
//!
//! - [`Watchdog`] — a soft-deadline monitor on its own thread. The
//!   supervisor arms it at phase entry with a deadline derived from
//!   [`PhaseTimings`]; if the phase overruns, the watchdog records a stall
//!   (surfaced later as a `phase-stalled` robustness event) and fires a
//!   live `watchdog-deadline-exceeded` telemetry instant. It only
//!   observes — wall-clock jitter can never change the search trajectory.
//! - [`PhaseTimings`] — an exponentially weighted moving average of each
//!   supervised phase's duration, from which stall deadlines are derived.
//! - [`DegradationLadder`] — pure bookkeeping that steps the supervised
//!   thread count N → N/2 → … → 1 after repeated lane faults. Sound
//!   because the threadpool's fixed `chunk_ranges` splitting makes every
//!   result bit-identical at any lane count.
//! - [`Supervisor`] — bundles the isolation-mode pool, the ladder, the
//!   watchdog and the retry budget for one guarded run.

use crate::fault::FaultConfig;
use crate::robustness::{RobustnessEventKind, RobustnessLog};
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;
use threadpool::ThreadPool;

/// EWMA smoothing factor for phase durations (recent phases dominate, but a
/// single slow outlier cannot halve the deadline headroom on its own).
const EWMA_ALPHA: f64 = 0.3;

fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// --- stall watchdog ------------------------------------------------------

enum WatchdogMsg {
    Arm {
        phase: &'static str,
        iteration: u64,
        deadline: Duration,
    },
    Disarm,
    Shutdown,
}

/// One recorded soft-deadline overrun.
pub(crate) struct StallRecord {
    pub(crate) phase: &'static str,
    pub(crate) iteration: u64,
    pub(crate) deadline_ms: u64,
}

/// A soft-deadline monitor on a dedicated thread. `arm` starts a countdown
/// for the current phase; `disarm` cancels it. A countdown that expires
/// records a [`StallRecord`] (drained by the supervisor after the phase
/// returns) and fires a live `watchdog-deadline-exceeded` telemetry
/// instant — the only signal with sub-phase latency, since the phase itself
/// is still blocked at that moment.
pub(crate) struct Watchdog {
    tx: Option<Sender<WatchdogMsg>>,
    stalls: Arc<Mutex<Vec<StallRecord>>>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    pub(crate) fn spawn() -> Watchdog {
        let (tx, rx) = channel();
        let stalls = Arc::new(Mutex::new(Vec::new()));
        let shared = Arc::clone(&stalls);
        let handle = std::thread::Builder::new()
            .name("a3cs-watchdog".to_string())
            .spawn(move || watchdog_main(&rx, &shared))
            .ok();
        Watchdog {
            // If the OS refused us a thread, degrade to a no-op watchdog
            // rather than failing the run.
            tx: handle.is_some().then_some(tx),
            stalls,
            handle,
        }
    }

    /// Arm a countdown for `phase`. No-op when `deadline` is `None` (the
    /// phase has no timing history yet) or the watchdog thread is gone.
    pub(crate) fn arm(&self, phase: &'static str, iteration: u64, deadline: Option<Duration>) {
        if let (Some(tx), Some(deadline)) = (self.tx.as_ref(), deadline) {
            let _ = tx.send(WatchdogMsg::Arm {
                phase,
                iteration,
                deadline,
            });
        }
    }

    /// Cancel the active countdown (the phase returned).
    pub(crate) fn disarm(&self) {
        if let Some(tx) = self.tx.as_ref() {
            let _ = tx.send(WatchdogMsg::Disarm);
        }
    }

    /// Take every stall recorded since the last drain.
    pub(crate) fn drain_stalls(&self) -> Vec<StallRecord> {
        std::mem::take(&mut *lock_or_recover(&self.stalls))
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(WatchdogMsg::Shutdown);
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn watchdog_main(rx: &Receiver<WatchdogMsg>, stalls: &Mutex<Vec<StallRecord>>) {
    loop {
        let armed = match rx.recv() {
            Ok(WatchdogMsg::Arm {
                phase,
                iteration,
                deadline,
            }) => (phase, iteration, deadline),
            Ok(WatchdogMsg::Disarm) => continue,
            Ok(WatchdogMsg::Shutdown) | Err(_) => return,
        };
        let (phase, iteration, deadline) = armed;
        match rx.recv_timeout(deadline) {
            // Disarmed (or re-armed) before the deadline: nothing stalled.
            Ok(WatchdogMsg::Disarm | WatchdogMsg::Arm { .. }) => {}
            Ok(WatchdogMsg::Shutdown) => return,
            Err(RecvTimeoutError::Timeout) => {
                let deadline_ms = deadline.as_millis() as u64;
                lock_or_recover(stalls).push(StallRecord {
                    phase,
                    iteration,
                    deadline_ms,
                });
                if telemetry::enabled() {
                    telemetry::instant(
                        "watchdog-deadline-exceeded",
                        &format!("[iter {iteration}] {phase} still running after {deadline_ms} ms"),
                    );
                }
                // The overrunning phase will still disarm (or the run will
                // shut us down); wait for that before re-arming.
                match rx.recv() {
                    Ok(WatchdogMsg::Shutdown) | Err(_) => return,
                    Ok(_) => {}
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

// --- phase timing history ------------------------------------------------

/// EWMA of each supervised phase's wall-clock duration. Deadlines are
/// derived only after a phase has at least one sample, so the first
/// iteration is never spuriously flagged.
#[derive(Default)]
pub(crate) struct PhaseTimings {
    ewma_ns: BTreeMap<&'static str, f64>,
}

impl PhaseTimings {
    pub(crate) fn record(&mut self, phase: &'static str, elapsed: Duration) {
        let ns = elapsed.as_nanos() as f64;
        self.ewma_ns
            .entry(phase)
            .and_modify(|e| *e = (1.0 - EWMA_ALPHA) * *e + EWMA_ALPHA * ns)
            .or_insert(ns);
    }

    /// Soft deadline for `phase`: `max(min_ms, multiplier × EWMA)`, or
    /// `None` until the phase has run once.
    pub(crate) fn deadline(
        &self,
        phase: &'static str,
        multiplier: u32,
        min_ms: u64,
    ) -> Option<Duration> {
        let ewma = *self.ewma_ns.get(phase)?;
        let scaled_ms = (ewma * f64::from(multiplier) / 1e6).ceil() as u64;
        Some(Duration::from_millis(scaled_ms.max(min_ms)))
    }
}

// --- degradation ladder --------------------------------------------------

/// Steps the supervised thread count down (N → N/2 → … → 1) as lane faults
/// accumulate, trading parallelism for stability instead of aborting.
///
/// Pure bookkeeping: for a given fault sequence the step sequence is fully
/// deterministic, and because the threadpool splits work by fixed
/// [`threadpool::chunk_ranges`], running the remainder of the search at a
/// lower lane count cannot change any result bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationLadder {
    threads: usize,
    threshold: u32,
    accumulated: u64,
}

impl DegradationLadder {
    /// A ladder starting at `threads` lanes that steps down every
    /// `threshold` lane faults. `threshold == 0` disables stepping.
    #[must_use]
    pub fn new(threads: usize, threshold: u32) -> Self {
        DegradationLadder {
            threads: threads.max(1),
            threshold,
            accumulated: 0,
        }
    }

    /// Current rung: the lane count the supervised pool should have.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Record `n` new lane faults. Returns `Some(new_thread_count)` if the
    /// ladder stepped down (possibly more than one rung), `None` otherwise.
    /// Already-serial ladders never step.
    pub fn record_faults(&mut self, n: u64) -> Option<usize> {
        if self.threshold == 0 {
            return None;
        }
        self.accumulated += n;
        let before = self.threads;
        while self.accumulated >= u64::from(self.threshold) && self.threads > 1 {
            self.threads = (self.threads / 2).max(1);
            self.accumulated -= u64::from(self.threshold);
        }
        (self.threads != before).then_some(self.threads)
    }
}

// --- the supervisor ------------------------------------------------------

/// Everything `run_guarded` needs to contain faults in-process: the
/// isolation-mode pool phases run under, the retry budget, the stall
/// watchdog and the degradation ladder, plus the pool-stat highwater marks
/// that turn cumulative counters into per-phase deltas.
pub(crate) struct Supervisor {
    pub(crate) pool: Arc<ThreadPool>,
    pub(crate) watchdog: Watchdog,
    pub(crate) timings: PhaseTimings,
    pub(crate) max_retries: u32,
    stall_multiplier: u32,
    stall_min_ms: u64,
    ladder: DegradationLadder,
    seen_faults: u64,
    seen_quarantined: u64,
    seen_respawned: u64,
    seen_reexecuted: u64,
}

impl Supervisor {
    pub(crate) fn new(fault: &FaultConfig, initial_threads: usize) -> Supervisor {
        Supervisor {
            pool: Arc::new(ThreadPool::new_isolated(initial_threads)),
            watchdog: Watchdog::spawn(),
            timings: PhaseTimings::default(),
            max_retries: fault.max_phase_retries,
            stall_multiplier: fault.stall_multiplier,
            stall_min_ms: fault.stall_min_ms,
            ladder: DegradationLadder::new(initial_threads, fault.ladder_fault_threshold),
            seen_faults: 0,
            seen_quarantined: 0,
            seen_respawned: 0,
            seen_reexecuted: 0,
        }
    }

    /// Soft deadline for `phase` from its timing history.
    pub(crate) fn deadline(&self, phase: &'static str) -> Option<Duration> {
        self.timings
            .deadline(phase, self.stall_multiplier, self.stall_min_ms)
    }

    /// Fold the pool's cumulative lane-health counters into the robustness
    /// log (quarantines, respawns) and feed new faults to the degradation
    /// ladder — rebuilding the supervised pool at the lower lane count when
    /// it steps.
    pub(crate) fn absorb_pool_health(&mut self, log: &mut RobustnessLog, iteration: u64) {
        let stats = self.pool.stats();
        let faults = stats.total_faults().saturating_sub(self.seen_faults);
        let quarantined = stats.quarantined.saturating_sub(self.seen_quarantined);
        let respawned = stats.respawned.saturating_sub(self.seen_respawned);
        let reexecuted = stats.reexecuted_chunks.saturating_sub(self.seen_reexecuted);
        if faults == 0 && quarantined == 0 && respawned == 0 {
            return;
        }
        self.seen_faults = stats.total_faults();
        self.seen_quarantined = stats.quarantined;
        self.seen_respawned = stats.respawned;
        self.seen_reexecuted = stats.reexecuted_chunks;
        if quarantined > 0 {
            log.push(
                iteration,
                RobustnessEventKind::LaneQuarantined,
                format!(
                    "{quarantined} lane(s) quarantined, {reexecuted} chunk(s) re-executed \
                     inline; per-lane faults {:?}",
                    stats.lane_faults
                ),
            );
        }
        if respawned > 0 {
            log.push(
                iteration,
                RobustnessEventKind::WorkerRespawned,
                format!("{respawned} replacement worker(s) spawned"),
            );
        }
        if faults > 0 {
            if let Some(next) = self.ladder.record_faults(faults) {
                self.pool = Arc::new(ThreadPool::new_isolated(next));
                self.seen_faults = 0;
                self.seen_quarantined = 0;
                self.seen_respawned = 0;
                self.seen_reexecuted = 0;
                log.push(
                    iteration,
                    RobustnessEventKind::LadderStepped,
                    format!("thread count stepped down to {next} after repeated lane faults"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_steps_halve_until_serial() {
        let mut ladder = DegradationLadder::new(8, 2);
        assert_eq!(ladder.record_faults(1), None);
        assert_eq!(ladder.record_faults(1), Some(4));
        assert_eq!(ladder.record_faults(2), Some(2));
        assert_eq!(ladder.record_faults(2), Some(1));
        assert_eq!(ladder.record_faults(10), None, "serial ladders never step");
        assert_eq!(ladder.threads(), 1);
    }

    #[test]
    fn ladder_threshold_zero_disables_stepping() {
        let mut ladder = DegradationLadder::new(8, 0);
        assert_eq!(ladder.record_faults(1_000), None);
        assert_eq!(ladder.threads(), 8);
    }

    #[test]
    fn ladder_can_step_multiple_rungs_at_once() {
        let mut ladder = DegradationLadder::new(8, 1);
        assert_eq!(ladder.record_faults(2), Some(2));
        assert_eq!(ladder.threads(), 2);
    }

    #[test]
    fn timings_deadline_needs_history_and_respects_floor() {
        let mut timings = PhaseTimings::default();
        assert_eq!(timings.deadline("rollout", 8, 40), None);
        timings.record("rollout", Duration::from_millis(10));
        assert_eq!(
            timings.deadline("rollout", 8, 40),
            Some(Duration::from_millis(80))
        );
        assert_eq!(
            timings.deadline("rollout", 2, 40),
            Some(Duration::from_millis(40)),
            "deadline never drops below the configured floor"
        );
    }

    #[test]
    fn watchdog_records_a_stall_and_survives_disarm_cycles() {
        let dog = Watchdog::spawn();
        dog.arm("rollout", 3, Some(Duration::from_millis(20)));
        std::thread::sleep(Duration::from_millis(120));
        dog.disarm();
        let stalls = dog.drain_stalls();
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].phase, "rollout");
        assert_eq!(stalls[0].iteration, 3);
        // A phase that finishes in time records nothing.
        dog.arm("update", 4, Some(Duration::from_millis(200)));
        dog.disarm();
        std::thread::sleep(Duration::from_millis(30));
        assert!(dog.drain_stalls().is_empty());
    }
}
