//! Distillation configuration: none, policy-only (Rusu et al.), or the
//! paper's AC-distillation (policy + value, Eq. 10–11).

/// Which distillation terms are active during training/search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistillMode {
    /// No teacher terms (the "No distillation" baseline of Table II).
    #[default]
    None,
    /// KL distillation of the actor only ("Policy distillation only").
    PolicyOnly,
    /// The paper's AC-distillation: actor KL plus critic MSE (Eq. 10–11).
    ActorCritic,
}

/// Distillation hyper-parameters (paper Section V-A: `β2 = 1e-1`,
/// `β3 = 1e-3`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistillConfig {
    /// Which terms are active.
    pub mode: DistillMode,
    /// Weight of the actor KL term (`β2`).
    pub beta2: f32,
    /// Weight of the critic MSE term (`β3`).
    pub beta3: f32,
}

impl DistillConfig {
    /// The paper's AC-distillation settings.
    #[must_use]
    pub fn ac_distillation() -> Self {
        DistillConfig {
            mode: DistillMode::ActorCritic,
            beta2: 1e-1,
            beta3: 1e-3,
        }
    }

    /// Policy-only distillation with the same actor weight.
    #[must_use]
    pub fn policy_only() -> Self {
        DistillConfig {
            mode: DistillMode::PolicyOnly,
            beta2: 1e-1,
            beta3: 0.0,
        }
    }

    /// Effective actor-KL weight (zero when disabled).
    #[must_use]
    pub fn actor_weight(&self) -> f32 {
        match self.mode {
            DistillMode::None => 0.0,
            DistillMode::PolicyOnly | DistillMode::ActorCritic => self.beta2,
        }
    }

    /// Effective critic-MSE weight (zero unless AC-distillation).
    #[must_use]
    pub fn critic_weight(&self) -> f32 {
        match self.mode {
            DistillMode::ActorCritic => self.beta3,
            _ => 0.0,
        }
    }
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            mode: DistillMode::None,
            beta2: 1e-1,
            beta3: 1e-3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_follow_mode() {
        let none = DistillConfig::default();
        assert_eq!(none.actor_weight(), 0.0);
        assert_eq!(none.critic_weight(), 0.0);

        let policy = DistillConfig::policy_only();
        assert!(policy.actor_weight() > 0.0);
        assert_eq!(policy.critic_weight(), 0.0);

        let ac = DistillConfig::ac_distillation();
        assert!(ac.actor_weight() > 0.0);
        assert!(ac.critic_weight() > 0.0);
    }

    #[test]
    fn paper_betas() {
        let ac = DistillConfig::ac_distillation();
        assert_eq!(ac.beta2, 1e-1);
        assert_eq!(ac.beta3, 1e-3);
    }
}
