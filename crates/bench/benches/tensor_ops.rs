//! Micro-benchmarks of the tensor/autograd substrate: GEMM, convolution
//! forward+backward and batch normalisation.

use a3cs_tensor::{matmul, Conv2dGeometry, Tape, Tensor};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 64, 128] {
        let a = Tensor::randn(&[n, n], 1.0, 1);
        let b = Tensor::randn(&[n, n], 1.0, 2);
        group.bench_function(format!("{n}x{n}"), |bench| {
            bench.iter(|| black_box(matmul(&a, &b)));
        });
    }
    group.finish();
}

fn bench_conv_forward_backward(c: &mut Criterion) {
    let geom = Conv2dGeometry {
        in_channels: 16,
        out_channels: 32,
        kernel: 3,
        stride: 1,
        padding: 1,
        in_h: 12,
        in_w: 12,
    };
    let x_t = Tensor::randn(&[4, 16, 12, 12], 0.5, 3);
    let w_t = Tensor::randn(&[32, 16, 3, 3], 0.5, 4);

    c.bench_function("conv2d_forward", |bench| {
        bench.iter_batched(
            Tape::new,
            |tape| {
                let x = tape.leaf(x_t.clone());
                let w = tape.leaf(w_t.clone());
                black_box(x.conv2d(&w, geom).value());
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("conv2d_forward_backward", |bench| {
        bench.iter_batched(
            Tape::new,
            |tape| {
                let x = tape.leaf(x_t.clone());
                let w = tape.leaf(w_t.clone());
                let y = x.conv2d(&w, geom).square().sum();
                y.backward();
                black_box(w.grad());
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_batch_norm(c: &mut Criterion) {
    let x_t = Tensor::randn(&[8, 32, 6, 6], 0.5, 5);
    c.bench_function("batch_norm2d_train", |bench| {
        bench.iter_batched(
            Tape::new,
            |tape| {
                let x = tape.leaf(x_t.clone());
                let gamma = tape.leaf(Tensor::ones(&[32]));
                let beta = tape.leaf(Tensor::zeros(&[32]));
                black_box(x.batch_norm2d(&gamma, &beta, 1e-5).value());
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_matmul, bench_conv_forward_backward, bench_batch_norm
}
criterion_main!(benches);
