//! Table printing and JSON result persistence.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Print an aligned text table.
///
/// # Panics
///
/// Panics if a row's arity differs from the header's.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (cell, w) in cells.iter().zip(widths.iter()) {
            out.push_str(&format!("{cell:>w$}  ", w = w));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| (*s).to_owned()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Directory where experiment JSON dumps are written: `results/` under
/// the current working directory (the workspace root when invoked via
/// `cargo run`), created on demand.
#[must_use]
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

/// Serialise `value` as pretty JSON into `results/<name>.json`.
///
/// Failures are reported on stderr but do not abort the experiment (the
/// printed table is the primary artefact).
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("(results written to {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise {name}: {e}"),
    }
}

/// Format a float compactly for table cells.
#[must_use]
pub fn fmt(v: f64) -> String {
    if v.abs() >= 10_000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_scales_precision() {
        assert_eq!(fmt(123_456.7), "123457");
        assert_eq!(fmt(123.456), "123.5");
        assert_eq!(fmt(1.2345), "1.23");
    }

    #[test]
    fn print_table_accepts_matching_rows() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn print_table_rejects_ragged_rows() {
        print_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
