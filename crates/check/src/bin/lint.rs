//! Workspace lint driver:
//! `cargo run -p a3cs-check --bin lint [-- --update | --deny-new | --json]`.
//!
//! Walks every project-owned source root — `crates/*/src`, the root
//! `src/`, and the project-owned vendor crates `vendor/threadpool` and
//! `vendor/telemetry` (third-party vendored crates are upstream code and
//! out of the determinism contract) — runs the token-level scanner
//! (`a3cs_check::scan_source`), and compares the census against the
//! committed allowlist `crates/check/lint-allowlist.txt`.
//!
//! Modes:
//! - default: fail on any count above its allowance; print ratchet
//!   opportunities as suggestions.
//! - `--deny-new`: the CI gate. Additionally fails when the allowlist is
//!   *stale* (an allowance exceeds the actual count), so paid-down debt
//!   must be recorded with `--update` in the same change.
//! - `--update`: rewrite the allowlist to the current counts.
//! - `--json`: emit every finding as an `A3CS-L3xx` diagnostic in the
//!   same JSON report format as the shape/legality checks, then apply
//!   the normal gate.

use a3cs_check::{
    compare, count_hits, format_allowlist, hits_to_report, parse_allowlist, scan_source, LintHit,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const ALLOWLIST_REL: &str = "crates/check/lint-allowlist.txt";

/// Project-owned vendor crates included in the scan. The rest of
/// `vendor/` (serde, proptest, criterion, rand) is third-party code.
const VENDOR_ROOTS: [&str; 2] = ["vendor/threadpool/src", "vendor/telemetry/src"];

fn repo_root() -> Option<PathBuf> {
    // This binary lives in crates/check; the workspace root is two up.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest.parent()?.parent()?;
    Some(root.to_path_buf())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Every scanned source root, relative to the repo root.
fn scan_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut crate_dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            let src = crate_dir.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        roots.push(root_src);
    }
    for rel in VENDOR_ROOTS {
        let dir = root.join(rel);
        if dir.is_dir() {
            roots.push(dir);
        }
    }
    roots
}

fn scan_workspace(root: &Path) -> Result<Vec<LintHit>, String> {
    let mut hits = Vec::new();
    for scan_root in scan_roots(root) {
        let mut files = Vec::new();
        collect_rs_files(&scan_root, &mut files);
        for file in files {
            let source =
                fs::read_to_string(&file).map_err(|e| format!("cannot read {file:?}: {e}"))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            hits.extend(scan_source(&rel, &source));
        }
    }
    Ok(hits)
}

fn run() -> Result<ExitCode, String> {
    let mut update = false;
    let mut deny_new = false;
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--update" => update = true,
            "--deny-new" => deny_new = true,
            "--json" => json = true,
            other => {
                return Err(format!(
                    "unknown argument `{other}` (accepted: --update, --deny-new, --json)"
                ))
            }
        }
    }
    let root = repo_root().ok_or_else(|| "cannot locate the workspace root".to_string())?;
    let hits = scan_workspace(&root)?;
    let actual = count_hits(&hits);
    let total: usize = actual.values().sum();
    let allowlist_path = root.join(ALLOWLIST_REL);

    if json {
        println!("{}", hits_to_report(&hits).to_json());
    }

    if update {
        fs::write(&allowlist_path, format_allowlist(&actual))
            .map_err(|e| format!("cannot write {allowlist_path:?}: {e}"))?;
        println!("lint: allowlist updated with {total} grandfathered findings ({ALLOWLIST_REL})");
        return Ok(ExitCode::SUCCESS);
    }

    let allowed = match fs::read_to_string(&allowlist_path) {
        Ok(text) => parse_allowlist(&text)?,
        Err(e) => {
            return Err(format!(
                "cannot read {ALLOWLIST_REL}: {e}; run with --update to create it"
            ))
        }
    };
    let outcome = compare(&actual, &allowed);
    if !outcome.is_ok() {
        eprintln!("lint: counts above the allowlist (new findings must be fixed, not added):");
        for (file, category, got, cap) in &outcome.violations {
            eprintln!("  {file}: {category} {got} > allowed {cap}");
            for hit in &hits {
                if &hit.file == file && hit.category.as_str() == category {
                    eprintln!("    {file}:{} — {}", hit.line, hit.category.why());
                }
            }
        }
        return Ok(ExitCode::FAILURE);
    }
    if outcome.ratchets.is_empty() {
        println!("lint: clean against allowlist ({total} grandfathered findings)");
    } else if deny_new {
        eprintln!(
            "lint: {} allowlist entries are stale — debt was paid but not recorded; \
             run `cargo run -p a3cs-check --bin lint -- --update`:",
            outcome.ratchets.len()
        );
        for (file, category, got, cap) in &outcome.ratchets {
            eprintln!("  {file}: {category} {got} (allowed {cap})");
        }
        return Ok(ExitCode::FAILURE);
    } else {
        println!(
            "lint: clean; {} entries improved — ratchet down with --update:",
            outcome.ratchets.len()
        );
        for (file, category, got, cap) in &outcome.ratchets {
            println!("  {file}: {category} {got} (allowed {cap})");
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("lint: {message}");
            ExitCode::FAILURE
        }
    }
}
