//! Offline vendored stand-in for a scoped thread pool (`threadpool`/`rayon`
//! lineage), specialised for the determinism contract this workspace needs.
//!
//! The contract: work is partitioned into **fixed, contiguous, disjoint**
//! index ranges ([`chunk_ranges`]), each item's computation must be
//! independent of which worker runs it, and every floating-point reduction
//! happens on the calling thread in index order. Under that contract the
//! output of any parallel helper here is bit-identical for every thread
//! count, including the pure-inline `threads = 1` fallback.
//!
//! Thread count resolution for the process-global pool:
//! `A3CS_THREADS` env var if set to a positive integer, otherwise
//! `std::thread::available_parallelism()`. `A3CS_THREADS=1` yields the exact
//! sequential fallback (no worker threads are ever spawned). Tests that need
//! a specific thread count without mutating the environment use
//! [`with_threads`], which installs a thread-local override consulted by
//! [`current`].
//!
//! Nesting policy: only the thread that entered a parallel region forks.
//! Workers (and the caller while it executes its own chunk) run any nested
//! parallel call inline, which makes the pool deadlock-free by construction
//! and avoids oversubscription without work stealing.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;

/// Acquire a mutex, recovering from poisoning (worker panics are caught and
/// forwarded, so a poisoned lock never guards broken invariants here).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

thread_local! {
    /// True while this thread is executing inside a parallel region (worker
    /// threads set it permanently). Nested parallel calls then run inline.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
    /// Thread-local pool override installed by [`with_threads`].
    static OVERRIDE: RefCell<Option<Arc<ThreadPool>>> = const { RefCell::new(None) };
}

/// Returns true when called from inside a parallel region (a pool worker, or
/// the caller thread while it runs its own chunk).
pub fn in_parallel_region() -> bool {
    IN_PARALLEL.with(Cell::get)
}

/// Shared bookkeeping for one fork-join region.
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    /// First panic payload raised by a worker task, if any.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn new(pending: usize) -> Self {
        ScopeState {
            pending: Mutex::new(pending),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn complete_one(&self) {
        let mut pending = lock(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = lock(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn wait(&self) {
        let mut pending = lock(&self.pending);
        while *pending > 0 {
            pending = match self.done.wait(pending) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

/// A lifetime-erased task plus the fork-join region it belongs to.
struct Job {
    task: Box<dyn FnOnce() + Send + 'static>,
    state: Arc<ScopeState>,
}

fn worker_main(rx: Arc<Mutex<Receiver<Job>>>, lane: usize) {
    IN_PARALLEL.with(|f| f.set(true));
    loop {
        // Take the next job while holding the lock, then release it before
        // running so other workers can dequeue concurrently.
        let job = {
            let rx = lock(&rx);
            rx.recv()
        };
        let Ok(job) = job else { break };
        // Observe-only busy-time attribution; the clock is read only while
        // telemetry is enabled and never influences scheduling.
        let started = telemetry::enabled().then(std::time::Instant::now);
        let result = catch_unwind(AssertUnwindSafe(job.task));
        if let Some(started) = started {
            let busy = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            telemetry::record_pool_task(lane, busy);
        }
        if let Err(payload) = result {
            job.state.record_panic(payload);
        }
        job.state.complete_one();
    }
}

/// Fixed-size pool of worker threads executing scoped fork-join regions.
///
/// `threads` counts execution lanes including the calling thread, so
/// `ThreadPool::new(n)` spawns `n - 1` workers and `new(1)` spawns none
/// (every helper then runs inline — the exact sequential fallback).
pub struct ThreadPool {
    threads: usize,
    queue: Option<Sender<Job>>,
}

impl ThreadPool {
    /// Create a pool with `threads` execution lanes (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        if threads == 1 {
            return ThreadPool { threads: 1, queue: None };
        }
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let mut spawned = 0usize;
        for i in 0..threads - 1 {
            let rx = Arc::clone(&rx);
            let handle = thread::Builder::new()
                .name(format!("a3cs-pool-{i}"))
                .spawn(move || worker_main(rx, i + 1));
            if handle.is_err() {
                // Could not spawn (resource exhaustion): degrade to fewer
                // lanes. Remaining chunks run on the caller; determinism is
                // unaffected because partitioning uses `self.threads`, which
                // we keep as requested, and every chunk still runs.
                break;
            }
            spawned += 1;
        }
        if spawned == 0 {
            // No consumers: fall back to the inline pool so fork_join never
            // queues work nobody will run.
            return ThreadPool { threads: 1, queue: None };
        }
        ThreadPool { threads, queue: Some(tx) }
    }

    /// Number of execution lanes (including the calling thread).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run a set of scoped tasks to completion: all but the last are queued
    /// for the workers, the last runs on the calling thread, and the call
    /// does not return (or unwind) until every task has finished. The first
    /// panic from any task is re-raised on the caller.
    fn fork_join<'env>(&self, mut tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let Some(local) = tasks.pop() else { return };
        if tasks.is_empty() || self.queue.is_none() || in_parallel_region() {
            // Inline path: run everything sequentially in index order.
            for task in tasks {
                task();
            }
            local();
            return;
        }
        // Capture the caller's innermost span so work queued to the pool
        // attributes to the phase that forked it (observe-only).
        let parent_span = telemetry::current_span_id();
        let state = Arc::new(ScopeState::new(tasks.len()));
        if let Some(queue) = self.queue.as_ref() {
            for task in tasks {
                let task: Box<dyn FnOnce() + Send + 'env> = if parent_span.is_some() {
                    Box::new(move || telemetry::with_parent_span(parent_span, task))
                } else {
                    task
                };
                // SAFETY: lifetime erasure from 'env to 'static. Sound
                // because this function waits (via `WaitGuard`, even when the
                // local task unwinds) for every queued task to complete
                // before returning, so no borrow in `task` outlives its
                // referent.
                let task: Box<dyn FnOnce() + Send + 'static> =
                    unsafe { std::mem::transmute(task) };
                let job = Job { task, state: Arc::clone(&state) };
                if let Err(send_err) = queue.send(job) {
                    // Workers are gone (spawn failed earlier): run inline.
                    let Job { task, state } = send_err.0;
                    task();
                    state.complete_one();
                }
            }
        }

        struct WaitGuard<'a>(&'a ScopeState);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                self.0.wait();
            }
        }
        let guard = WaitGuard(&state);
        // Run the caller's own chunk with the in-parallel flag set so nested
        // parallel calls stay inline.
        let local_result = {
            IN_PARALLEL.with(|f| f.set(true));
            let started = telemetry::enabled().then(std::time::Instant::now);
            let r = catch_unwind(AssertUnwindSafe(local));
            if let Some(started) = started {
                let busy = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                telemetry::record_pool_task(0, busy);
            }
            IN_PARALLEL.with(|f| f.set(false));
            r
        };
        drop(guard); // blocks until all queued tasks have completed
        if let Err(payload) = local_result {
            resume_unwind(payload);
        }
        let worker_panic = lock(&state.panic).take();
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }

    /// Invoke `f` on fixed, contiguous, disjoint chunks of `0..len`
    /// (partitioned by [`chunk_ranges`] into at most [`Self::threads`]
    /// pieces). With one lane, inside a parallel region, or for `len <= 1`,
    /// this is exactly `f(0..len)`.
    pub fn parallel_for_chunks<F>(&self, len: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if len == 0 {
            return;
        }
        if self.threads <= 1 || len == 1 || in_parallel_region() {
            f(0..len);
            return;
        }
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunk_ranges(len, self.threads)
            .into_iter()
            .map(|r| Box::new(move || f(r)) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        self.fork_join(tasks);
    }

    /// Split `items` into fixed contiguous chunks and invoke
    /// `f(start_index, chunk)` on each with exclusive access. The sequential
    /// fallback is a single `f(0, items)` call; `f` must therefore treat
    /// items independently (chunk boundaries carry no meaning).
    pub fn parallel_chunks_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if items.is_empty() {
            return;
        }
        if self.threads <= 1 || items.len() == 1 || in_parallel_region() {
            f(0, items);
            return;
        }
        let ranges = chunk_ranges(items.len(), self.threads);
        let f = &f;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ranges.len());
        let mut rest = items;
        for r in ranges {
            let (chunk, tail) = rest.split_at_mut(r.len());
            rest = tail;
            let start = r.start;
            tasks.push(Box::new(move || f(start, chunk)));
        }
        self.fork_join(tasks);
    }

    /// Fill `out` (laid out as `rows` rows of `row_len` items) by invoking
    /// `f(row, row_slice)` for every row, rows fanned out across lanes in
    /// fixed contiguous blocks. Row order within a lane is ascending, and
    /// each `f(row, ..)` call is identical to the sequential one, so the
    /// result is bit-identical for any thread count.
    pub fn parallel_fill_rows<T, F>(&self, out: &mut [T], rows: usize, row_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert_eq!(
            out.len(),
            rows * row_len,
            "parallel_fill_rows: output length {} != rows {} * row_len {}",
            out.len(),
            rows,
            row_len
        );
        if rows == 0 || row_len == 0 {
            return;
        }
        let mut row_slices: Vec<&mut [T]> = out.chunks_mut(row_len).collect();
        self.parallel_chunks_mut(&mut row_slices, |start, chunk| {
            for (i, row) in chunk.iter_mut().enumerate() {
                f(start + i, row);
            }
        });
    }
}

/// Partition `0..len` into `parts` fixed, contiguous, disjoint ranges that
/// cover every index in order. The first `len % parts` chunks hold one extra
/// item. `parts` is clamped to `1..=len`; `len == 0` yields no ranges.
#[must_use]
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

static GLOBAL: OnceLock<Arc<ThreadPool>> = OnceLock::new();

fn default_threads() -> usize {
    if let Ok(raw) = std::env::var("A3CS_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The pool the current thread should use: the [`with_threads`] override if
/// one is installed, otherwise the lazily created process-global pool
/// (`A3CS_THREADS` lanes, defaulting to the available core count).
#[must_use]
pub fn current() -> Arc<ThreadPool> {
    let overridden = OVERRIDE.with(|o| o.borrow().clone());
    if let Some(pool) = overridden {
        return pool;
    }
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(ThreadPool::new(default_threads()))))
}

/// Install the process-global pool with an explicit lane count before first
/// use. Returns `false` (leaving the existing pool in place) if the global
/// pool was already created.
pub fn configure_global(threads: usize) -> bool {
    GLOBAL.set(Arc::new(ThreadPool::new(threads))).is_ok()
}

/// Run `f` with [`current`] resolving to a fresh pool of `threads` lanes on
/// this thread. Restores the previous override on exit (including unwind).
/// This is the race-free alternative to mutating `A3CS_THREADS` in tests.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<ThreadPool>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            OVERRIDE.with(|o| *o.borrow_mut() = prev);
        }
    }
    let pool = Arc::new(ThreadPool::new(threads));
    let prev = OVERRIDE.with(|o| o.borrow_mut().replace(pool));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_ranges_cover_all_indices_in_order() {
        for len in 0..40usize {
            for parts in 1..8usize {
                let ranges = chunk_ranges(len, parts);
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..len).collect::<Vec<_>>(), "len={len} parts={parts}");
                if len > 0 {
                    assert_eq!(ranges.len(), parts.min(len));
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_is_deterministic() {
        assert_eq!(chunk_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
        assert_eq!(chunk_ranges(10, 4), chunk_ranges(10, 4));
        assert_eq!(chunk_ranges(2, 16), vec![0..1, 1..2]);
        assert!(chunk_ranges(0, 4).is_empty());
    }

    #[test]
    fn parallel_for_chunks_visits_every_index_once() {
        for threads in [1usize, 2, 4, 7] {
            let pool = ThreadPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..101).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for_chunks(hits.len(), |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_chunks_mut_matches_sequential() {
        let expected: Vec<usize> = (0..57).map(|i| i * 3 + 1).collect();
        for threads in [1usize, 4] {
            let pool = ThreadPool::new(threads);
            let mut got = vec![0usize; 57];
            pool.parallel_chunks_mut(&mut got, |start, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = (start + i) * 3 + 1;
                }
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn parallel_fill_rows_is_bit_identical_across_thread_counts() {
        let fill = |row: usize, out: &mut [f32]| {
            let mut acc = 0.1f32 + row as f32;
            for (j, slot) in out.iter_mut().enumerate() {
                acc = acc * 1.000_1 + (j as f32) * 0.01;
                *slot = acc.sin();
            }
        };
        let mut seq = vec![0.0f32; 33 * 17];
        ThreadPool::new(1).parallel_fill_rows(&mut seq, 33, 17, fill);
        for threads in [2usize, 4, 8] {
            let mut par = vec![0.0f32; 33 * 17];
            ThreadPool::new(threads).parallel_fill_rows(&mut par, 33, 17, fill);
            assert_eq!(
                seq.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn nested_parallel_calls_run_inline_without_deadlock() {
        let pool = Arc::new(ThreadPool::new(4));
        let outer = Arc::clone(&pool);
        let hits = AtomicUsize::new(0);
        outer.parallel_for_chunks(8, |range| {
            for _ in range {
                // Nested region: must run inline on whatever thread we're on.
                pool.parallel_for_chunks(4, |inner| {
                    hits.fetch_add(inner.len(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8 * 4);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for_chunks(16, |range| {
                if range.contains(&0) {
                    panic!("boom from chunk");
                }
            });
        }));
        assert!(result.is_err());
        // Pool must remain usable after a panicked region.
        let count = AtomicUsize::new(0);
        pool.parallel_for_chunks(16, |range| {
            count.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn with_threads_overrides_current_and_restores() {
        let before = current().threads();
        with_threads(3, || {
            assert_eq!(current().threads(), 3);
            with_threads(5, || assert_eq!(current().threads(), 5));
            assert_eq!(current().threads(), 3);
        });
        assert_eq!(current().threads(), before);
    }

    #[test]
    fn one_lane_pool_spawns_no_workers_and_runs_inline() {
        let pool = ThreadPool::new(1);
        assert!(pool.queue.is_none());
        let caller = thread::current().id();
        pool.parallel_for_chunks(10, |range| {
            assert_eq!(range, 0..10);
            assert_eq!(thread::current().id(), caller);
        });
    }
}
