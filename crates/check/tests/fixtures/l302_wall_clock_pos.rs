//! Positive fixture: wall-clock reads outside the telemetry/watchdog
//! allowlist must fire A3CS-L302.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u64 {
    let t0 = Instant::now();
    let _ = SystemTime::now();
    t0.elapsed().as_nanos() as u64
}
