//! Fig. 3 reproduction: test-score vs FPS trade-off of
//! (1) ResNet-14 on a DAS-searched accelerator,
//! (2) the A3C-S searched agent on its DAS-searched accelerator, and
//! (3) the same A3C-S agent on the DNNBuilder baseline accelerator,
//! all under the ZC706's 900-DSP budget.
//!
//! Paper claims to reproduce (Section V-E): the co-searched agent attains
//! higher FPS than ResNet-14 at a comparable-or-better score, and DAS
//! accelerators beat DNNBuilder's on the same agent at equal DSPs.
//!
//! ```sh
//! A3CS_SCALE=short cargo run --release -p a3cs-bench --bin fig3_fps_tradeoff
//! ```

use a3cs_bench::paper_data::FIG3_GAMES;
use a3cs_bench::report::{fmt, or_exit, print_table, save_json, status};
use a3cs_bench::scale::Scale;
use a3cs_bench::setup::{
    agent_with, cosearch_config, factory_for, game_info, train_backbone, train_teacher,
};
use a3cs_accel::{DasConfig, DasEngine, DnnBuilderModel, FpgaTarget, PerfModel};
use a3cs_core::CoSearch;
use a3cs_drl::{DistillConfig, Trainer};
use a3cs_nas::derive_backbone;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    game: &'static str,
    design: String,
    score: f32,
    fps: f64,
    dsp: usize,
}

fn main() {
    let scale = or_exit(Scale::try_from_env());
    let target = FpgaTarget::zc706();
    status(format!(
        "Fig. 3: score/FPS trade-off on {FIG3_GAMES:?} under {} DSPs (scale: {})\n",
        target.dsp_limit, scale.name
    ));

    let ac = DistillConfig::ac_distillation();
    let mut rows = Vec::new();
    let mut dumps = Vec::new();
    for &game in FIG3_GAMES {
        let info = or_exit(game_info(game));
        let factory = or_exit(factory_for(game));
        let teacher = or_exit(train_teacher(game, &scale, 6000));

        // (1) ResNet-14 + DAS accelerator (both halves searched/trained
        // with the same machinery for a fair comparison, per the paper).
        let (resnet_agent, resnet_curve) =
            or_exit(train_backbone(game, "ResNet-14", &scale, Some((&ac, &teacher)), 60));
        let _ = resnet_agent;
        let resnet_layers =
            or_exit(a3cs_bench::setup::build_backbone("ResNet-14", &info, 60)).layer_descs();
        let mut das = DasEngine::new(DasConfig::default(), 61);
        let resnet_accel = das.run(&resnet_layers, &target, scale.das_iters);
        let resnet_report = PerfModel::evaluate(&resnet_accel, &resnet_layers, &target);

        // (2) A3C-S agent + DAS accelerator.
        let mut cfg = or_exit(cosearch_config(game, &scale));
        cfg.das_final_iters = scale.das_iters;
        let mut search = or_exit(CoSearch::try_new(cfg, 62));
        let result = search.run(&factory, Some(&teacher));
        let derived = derive_backbone(search.supernet().config(), &result.arch, 63);
        let derived_layers = derived.layer_descs();
        let derived_agent = agent_with(derived, &info, 64);
        let retrain_cfg = a3cs_bench::setup::trainer_config(&scale, scale.train_steps);
        let curve = Trainer::new(retrain_cfg, 65).train(
            &derived_agent,
            &factory,
            Some((&ac, &teacher)),
        );

        // (3) same agent on the DNNBuilder baseline accelerator.
        let dnnb_accel = DnnBuilderModel::design(&derived_layers, &target);
        let dnnb_report = PerfModel::evaluate(&dnnb_accel, &derived_layers, &target);

        for (design, score, fps, dsp) in [
            (
                "ResNet-14 + DAS",
                resnet_curve.best_score(),
                resnet_report.fps,
                resnet_report.dsp_used,
            ),
            (
                "A3C-S + DAS",
                curve.best_score(),
                result.report.fps,
                result.report.dsp_used,
            ),
            (
                "A3C-S + DNNBuilder",
                curve.best_score(),
                dnnb_report.fps,
                dnnb_report.dsp_used,
            ),
        ] {
            status(format!("{game:<14} {design:<20} score={score:<10.1} fps={fps:.1}"));
            rows.push(vec![
                game.to_owned(),
                design.to_owned(),
                fmt(f64::from(score)),
                fmt(fps),
                dsp.to_string(),
            ]);
            dumps.push(Point {
                game,
                design: design.to_owned(),
                score,
                fps,
                dsp,
            });
        }
        status("");
    }

    status("summary:\n");
    print_table(&["game", "design", "score", "FPS", "DSPs"], &rows);
    save_json("fig3_fps_tradeoff", &dumps);
}
