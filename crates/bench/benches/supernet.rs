//! Supernet benches: the single-path-forward / top-K-backward design
//! choice (paper Eq. 6–7). Comparing K = 1 / 2 / 9 quantifies the
//! compute cost the paper's "multi-path backward" trades for gradient
//! stability, and K = 9 approximates an all-paths (DARTS-style) supernet.

use a3cs_nas::{SuperNet, SupernetConfig};
use a3cs_nn::Module;
use a3cs_tensor::{Tape, Tensor};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn supernet_with_k(k: usize) -> SuperNet {
    let mut cfg = SupernetConfig::tiny(4, 12, 12);
    cfg.top_k = k;
    SuperNet::new(cfg, 1)
}

fn bench_forward_backward_by_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("supernet_fwd_bwd");
    let x_t = Tensor::randn(&[4, 4, 12, 12], 0.3, 2);
    for k in [1usize, 2, 9] {
        let sn = supernet_with_k(k);
        group.bench_function(format!("top_k_{k}"), |bench| {
            bench.iter_batched(
                Tape::new,
                |tape| {
                    let x = tape.leaf(x_t.clone());
                    let y = sn.forward(&tape, &x, true);
                    y.square().sum().backward();
                    black_box(());
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_eval_forward(c: &mut Criterion) {
    let sn = supernet_with_k(2);
    let x_t = Tensor::randn(&[1, 4, 12, 12], 0.3, 3);
    c.bench_function("supernet_eval_forward", |bench| {
        bench.iter_batched(
            Tape::new,
            |tape| {
                let x = tape.leaf(x_t.clone());
                black_box(sn.forward(&tape, &x, false).value());
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_derive_descs(c: &mut Criterion) {
    let sn = supernet_with_k(2);
    c.bench_function("supernet_candidate_layer_descs", |bench| {
        bench.iter(|| black_box(sn.candidate_layer_descs().len()));
    });
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_forward_backward_by_k, bench_eval_forward, bench_derive_descs
}
criterion_main!(benches);
