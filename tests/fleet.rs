//! Fleet isolation proofs: a deterministic fault in one session must not
//! perturb its siblings (bit-identical to solo runs), a faulted session
//! must restart from its namespaced checkpoint store and finish
//! bit-identically to a fault-free run, restart exhaustion must be a
//! typed terminal state that never poisons the scheduler, and a cancelled
//! session's store must stay recoverable for resume.

use a3cs::core::{CoSearch, CoSearchConfig, CoSearchResult, FaultPlan, RobustnessEventKind};
use a3cs::envs::{Breakout, Environment};
use a3cs::fleet::{Fleet, FleetConfig, SessionFailure, SessionState};
use std::path::PathBuf;

fn factory(seed: u64) -> Box<dyn Environment> {
    Box::new(Breakout::new(seed))
}

fn cosearch(cfg: CoSearchConfig, seed: u64) -> CoSearch {
    CoSearch::try_new(cfg, seed).expect("test config passes pre-flight")
}

fn tiny_config(total_steps: u64) -> CoSearchConfig {
    let mut cfg = CoSearchConfig::tiny(3, 12, 12, 3);
    cfg.total_steps = total_steps;
    cfg.eval_every = 100;
    cfg.eval_episodes = 2;
    cfg.eval_max_steps = 40;
    cfg.das_final_iters = 50;
    cfg
}

fn test_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("a3cs_fleet_{}_{}", std::process::id(), test));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn curve_bits(curve: &[(u64, f32)]) -> Vec<(u64, u32)> {
    curve.iter().map(|&(s, v)| (s, v.to_bits())).collect()
}

fn assert_results_bit_identical(a: &CoSearchResult, b: &CoSearchResult) {
    assert_eq!(format!("{:?}", a.arch), format!("{:?}", b.arch));
    assert_eq!(
        format!("{:?}", a.accelerator),
        format!("{:?}", b.accelerator)
    );
    assert_eq!(curve_bits(&a.score_curve), curve_bits(&b.score_curve));
    assert_eq!(
        curve_bits(&a.alpha_entropy_curve),
        curve_bits(&b.alpha_entropy_curve)
    );
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.report.fps.to_bits(), b.report.fps.to_bits());
    assert_eq!(a.report.dsp_used, b.report.dsp_used);
}

/// ISSUE 8 acceptance: N >= 4 sessions, one deterministic fault, siblings
/// bit-identical to solo runs, failed session typed — not panicking, not
/// blocking the scheduler.
#[test]
fn fault_in_one_session_leaves_siblings_bit_identical_to_solo_runs() {
    let mut fleet = Fleet::new(FleetConfig {
        max_session_restarts: 0,
        scheduler_seed: 42,
        ..FleetConfig::default()
    });
    let mut ids = Vec::new();
    for seed in 10..14u64 {
        let mut cfg = tiny_config(200);
        if seed == 12 {
            // The black sheep: simulated crash at iteration 7, no
            // checkpoint store, no restart budget -> terminal failure.
            cfg.fault.plan = FaultPlan::none().abort_at(7);
        }
        let id = fleet
            .submit(format!("s{seed}"), cfg, seed, factory)
            .expect("tiny config is admitted");
        ids.push((seed, id));
    }

    let report = fleet.run_to_completion();
    assert_eq!(report.total_faults, 1);

    for (seed, id) in ids {
        let session = report.session(id).expect("session is reported");
        if seed == 12 {
            match &session.state {
                SessionState::Failed(SessionFailure::Search(e)) => {
                    assert!(e.to_string().contains("iteration 7"), "got: {e}");
                }
                other => panic!("expected a typed search failure, got {other:?}"),
            }
            assert!(session.result.is_none());
            assert_eq!(
                session.fleet_events.count(RobustnessEventKind::SessionFailed),
                1
            );
            // The run's own log kept the injected-fault record.
            assert_eq!(
                session.robustness.count(RobustnessEventKind::FaultInjected),
                1
            );
            continue;
        }
        // Siblings: completed, and bit-identical to the same search run
        // solo (no fleet, no interleaving, default pool).
        assert_eq!(session.state, SessionState::Done, "seed {seed}");
        let solo = cosearch(tiny_config(200), seed).run(&factory, None);
        let fleet_result = session.result.as_ref().expect("done session has a result");
        assert_results_bit_identical(&solo, fleet_result);
        assert!(fleet_result.robustness.is_empty());
    }
    assert_eq!(*report.event_totals.get("session-failed").expect("aggregated"), 1);
}

#[test]
fn faulted_session_restarts_from_checkpoint_and_finishes_bit_identically() {
    let root = test_dir("restart");
    let mut fleet = Fleet::new(FleetConfig {
        max_session_restarts: 1,
        checkpoint_root: Some(root.clone()),
        scheduler_seed: 7,
        ..FleetConfig::default()
    });
    let mut cfg = tiny_config(200);
    cfg.fault.plan = FaultPlan::none().abort_at(7);
    let id = fleet
        .submit("restarter", cfg, 21, factory)
        .expect("admitted");

    let report = fleet.run_to_completion();
    let session = report.session(id).expect("reported");
    assert_eq!(session.state, SessionState::Done);
    assert_eq!(session.restarts, 1);
    assert_eq!(
        session.fleet_events.count(RobustnessEventKind::SessionRestarted),
        1
    );
    // The restarted attempt auto-resumed from the namespaced store...
    assert_eq!(session.robustness.count(RobustnessEventKind::Resumed), 1);
    assert!(session.checkpoint_restores >= 1);
    assert!(session.checkpoint_bytes_written > 0);
    // ...which held the fleet-default incremental format: base frames plus
    // per-iteration deltas, scrubbed clean on resume.
    assert!(
        session.checkpoint_delta_frames > 0,
        "fleet sessions write delta frames by default"
    );
    assert_eq!(session.checkpoint_quarantined, 0, "clean store scrubs clean");
    // ...and the final result matches a run that never faulted.
    let solo = cosearch(tiny_config(200), 21).run(&factory, None);
    assert_results_bit_identical(&solo, session.result.as_ref().expect("completed"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn restart_exhaustion_is_typed_and_does_not_poison_the_scheduler() {
    let root = test_dir("exhaustion");
    let mut fleet = Fleet::new(FleetConfig {
        max_session_restarts: 2,
        // Keep the fault plan across restarts: the abort re-fires on
        // every attempt (the store never reaches iteration 7), so the
        // budget is provably spent.
        clear_fault_plan_on_restart: false,
        checkpoint_root: Some(root.clone()),
        ..FleetConfig::default()
    });
    let mut cfg = tiny_config(200);
    cfg.fault.plan = FaultPlan::none().abort_at(7);
    let doomed = fleet.submit("doomed", cfg, 31, factory).expect("admitted");
    let healthy = fleet
        .submit("healthy", tiny_config(200), 32, factory)
        .expect("admitted");

    let report = fleet.run_to_completion();
    assert_eq!(report.total_faults, 3); // initial fault + 2 failed restarts

    let doomed = report.session(doomed).expect("reported");
    assert!(
        matches!(doomed.state, SessionState::Failed(SessionFailure::Search(_))),
        "exhaustion must end in a typed failure, got {:?}",
        doomed.state
    );
    assert_eq!(doomed.restarts, 2);
    assert_eq!(
        doomed.fleet_events.count(RobustnessEventKind::SessionRestarted),
        2
    );
    assert_eq!(
        doomed
            .fleet_events
            .count(RobustnessEventKind::SessionRestartsExhausted),
        1
    );

    // The sibling in its own fault domain still completed normally.
    let healthy = report.session(healthy).expect("reported");
    assert_eq!(healthy.state, SessionState::Done);
    let solo = cosearch(tiny_config(200), 32).run(&factory, None);
    assert_results_bit_identical(&solo, healthy.result.as_ref().expect("completed"));
    std::fs::remove_dir_all(&root).ok();
}

/// ISSUE 10 acceptance: a fleet session whose delta chain rots on disk
/// restarts through scrub + chain fallback and still finishes
/// bit-identically to a solo run that never faulted.
#[test]
fn fleet_restart_scrubs_rotten_delta_frames_and_stays_bit_identical() {
    let root = test_dir("scrub_restart");
    let mut fleet = Fleet::new(FleetConfig {
        max_session_restarts: 1,
        checkpoint_root: Some(root.clone()),
        scheduler_seed: 9,
        ..FleetConfig::default()
    });
    // Bit rot in the delta frame at iteration 5, then a crash at 7: the
    // restarted attempt must fall back to the verified chain prefix
    // (iteration 4), quarantine the rotten frame and its downstream delta,
    // and replay to the same final result.
    let mut cfg = tiny_config(200);
    cfg.fault.plan = FaultPlan::none().flip_checkpoint_byte_at(5, 40).abort_at(7);
    let id = fleet.submit("rotten", cfg, 51, factory).expect("admitted");

    let report = fleet.run_to_completion();
    let session = report.session(id).expect("reported");
    assert_eq!(session.state, SessionState::Done);
    assert_eq!(session.restarts, 1);
    assert_eq!(session.robustness.count(RobustnessEventKind::Resumed), 1);
    assert_eq!(
        session
            .robustness
            .count(RobustnessEventKind::DeltaChainFallback),
        1,
        "events: {:?}",
        session.robustness.events
    );
    assert_eq!(session.checkpoint_quarantined, 2);
    assert_eq!(
        session
            .robustness
            .count(RobustnessEventKind::CheckpointQuarantined),
        2
    );
    let solo = cosearch(tiny_config(200), 51).run(&factory, None);
    assert_results_bit_identical(&solo, session.result.as_ref().expect("completed"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn cancel_mid_run_leaves_the_store_recoverable_for_resume() {
    let root = test_dir("cancel");
    let mut fleet = Fleet::new(FleetConfig {
        checkpoint_root: Some(root.clone()),
        scheduler_seed: 3,
        ..FleetConfig::default()
    });
    let id = fleet
        .submit("pausable", tiny_config(200), 41, factory)
        .expect("admitted");

    // Drive a handful of ticks: enough to open the run and persist at
    // least the iteration-0 checkpoint, nowhere near completion.
    for _ in 0..10 {
        assert!(fleet.tick(), "session must still be in flight");
    }
    let status = fleet.poll(id).expect("session is polled");
    assert_eq!(status.state, SessionState::Running);
    assert!(status.checkpoint_bytes_written > 0, "store has checkpoints");

    assert!(fleet.cancel(id), "live sessions are cancellable");
    assert!(!fleet.cancel(id), "cancel is not idempotent on terminal state");
    let status = fleet.poll(id).expect("session is polled");
    assert_eq!(status.state, SessionState::Cancelled);

    // Re-admit: the rebuilt run auto-resumes from the store and the
    // completed search is bit-identical to one that was never paused.
    assert!(fleet.resume(id), "cancelled sessions are resumable");
    let report = fleet.run_to_completion();
    let session = report.session(id).expect("reported");
    assert_eq!(session.state, SessionState::Done);
    assert_eq!(session.restarts, 0, "resume is not a fault restart");
    assert_eq!(
        session.fleet_events.count(RobustnessEventKind::SessionCancelled),
        1
    );
    assert_eq!(session.robustness.count(RobustnessEventKind::Resumed), 1);
    let solo = cosearch(tiny_config(200), 41).run(&factory, None);
    assert_results_bit_identical(&solo, session.result.as_ref().expect("completed"));
    std::fs::remove_dir_all(&root).ok();
}
