//! Negative fixture: ordered collections never fire A3CS-L301.
use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub fn tally(words: &[String]) -> usize {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for w in words {
        seen.insert(w);
    }
    seen.len()
}

pub fn index(words: &[String]) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for (i, w) in words.iter().enumerate() {
        m.insert(w.clone(), i);
    }
    m
}
