//! Parameter checkpointing: persist and restore agent weights as JSON.
//!
//! The harnesses use this to train a teacher once and reuse it across
//! experiments, mirroring how the paper pretrains one ResNet-20 teacher
//! per task.

use crate::agent::ActorCritic;
use a3cs_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

/// A serialisable snapshot of one agent's parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    entries: Vec<ParamEntry>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ParamEntry {
    name: String,
    shape: Vec<usize>,
    data: Vec<f32>,
}

/// Error loading or applying a checkpoint.
#[derive(Debug)]
pub enum LoadCheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a valid checkpoint.
    Parse(serde_json::Error),
    /// The checkpoint does not match the agent's parameter list.
    Mismatch(String),
}

impl fmt::Display for LoadCheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadCheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            LoadCheckpointError::Parse(e) => write!(f, "checkpoint parse error: {e}"),
            LoadCheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl Error for LoadCheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadCheckpointError::Io(e) => Some(e),
            LoadCheckpointError::Parse(e) => Some(e),
            LoadCheckpointError::Mismatch(_) => None,
        }
    }
}

impl From<std::io::Error> for LoadCheckpointError {
    fn from(e: std::io::Error) -> Self {
        LoadCheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for LoadCheckpointError {
    fn from(e: serde_json::Error) -> Self {
        LoadCheckpointError::Parse(e)
    }
}

impl Checkpoint {
    /// Capture the current parameter values of `agent`.
    #[must_use]
    pub fn capture(agent: &ActorCritic) -> Self {
        let entries = agent
            .params()
            .iter()
            .map(|p| {
                let value = p.value();
                ParamEntry {
                    name: p.name().to_owned(),
                    shape: value.shape().to_vec(),
                    data: value.data().to_vec(),
                }
            })
            .collect();
        Checkpoint { entries }
    }

    /// Number of parameter tensors stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the checkpoint stores no parameters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Write the checkpoint as pretty JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error encountered.
    pub fn save(&self, path: &Path) -> Result<(), std::io::Error> {
        let json = serde_json::to_string(self).expect("checkpoint serialises");
        fs::write(path, json)
    }

    /// Read a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`LoadCheckpointError`] on IO or parse failure.
    pub fn load(path: &Path) -> Result<Self, LoadCheckpointError> {
        let json = fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }

    /// Apply the stored values to `agent` (parameter lists must match in
    /// order, name and shape).
    ///
    /// # Errors
    ///
    /// Returns [`LoadCheckpointError::Mismatch`] when the agent's
    /// architecture differs from the checkpointed one.
    pub fn apply(&self, agent: &ActorCritic) -> Result<(), LoadCheckpointError> {
        let params = agent.params();
        if params.len() != self.entries.len() {
            return Err(LoadCheckpointError::Mismatch(format!(
                "agent has {} parameters, checkpoint has {}",
                params.len(),
                self.entries.len()
            )));
        }
        for (p, e) in params.iter().zip(self.entries.iter()) {
            if p.name() != e.name {
                return Err(LoadCheckpointError::Mismatch(format!(
                    "parameter {} vs checkpoint entry {}",
                    p.name(),
                    e.name
                )));
            }
            let tensor = Tensor::from_vec(e.data.clone(), &e.shape).map_err(|err| {
                LoadCheckpointError::Mismatch(format!("entry {}: {err}", e.name))
            })?;
            if tensor.shape() != p.value().shape() {
                return Err(LoadCheckpointError::Mismatch(format!(
                    "parameter {} shape {:?} vs checkpoint {:?}",
                    p.name(),
                    p.value().shape(),
                    tensor.shape()
                )));
            }
            p.set_value(tensor);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_nn::vanilla;

    fn agent(seed: u64) -> ActorCritic {
        let backbone = vanilla(3, 12, 12, 16, seed);
        ActorCritic::new(Box::new(backbone), 16, (3, 12, 12), 3, seed)
    }

    #[test]
    fn capture_apply_round_trip() {
        let a = agent(1);
        let b = agent(2);
        let obs = vec![0.4; 3 * 12 * 12];
        assert_ne!(a.policy_probs(&obs, 1), b.policy_probs(&obs, 1));
        Checkpoint::capture(&a).apply(&b).expect("compatible agents");
        assert_eq!(a.policy_probs(&obs, 1), b.policy_probs(&obs, 1));
    }

    #[test]
    fn save_load_round_trip() {
        let a = agent(3);
        let dir = std::env::temp_dir().join("a3cs_ckpt_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("agent.json");
        let ck = Checkpoint::capture(&a);
        ck.save(&path).expect("save");
        let loaded = Checkpoint::load(&path).expect("load");
        assert_eq!(ck, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let a = agent(4);
        let bigger = {
            let backbone = vanilla(3, 12, 12, 32, 5);
            ActorCritic::new(Box::new(backbone), 32, (3, 12, 12), 3, 5)
        };
        let err = Checkpoint::capture(&a).apply(&bigger).unwrap_err();
        assert!(matches!(err, LoadCheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Checkpoint::load(Path::new("/nonexistent/a3cs.json")).unwrap_err();
        assert!(matches!(err, LoadCheckpointError::Io(_)));
    }
}
