//! Accelerator-side benches: the analytical predictor, one DAS step, the
//! DNNBuilder generator, and a DAS-vs-random search-quality ablation.

use a3cs_accel::{
    CostWeights, DasConfig, DasEngine, DnnBuilderModel, FpgaTarget, PerfModel, RandomSearch,
    SearchSpace,
};
use a3cs_nn::resnet;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_predictor(c: &mut Criterion) {
    let net = resnet(20, 4, 12, 12, 8, 32, 0);
    let layers = net.layer_descs();
    let target = FpgaTarget::zc706();
    let accel = DnnBuilderModel::design(&layers, &target);
    c.bench_function("perf_model_evaluate_resnet20", |bench| {
        bench.iter(|| black_box(PerfModel::evaluate(&accel, &layers, &target)));
    });
}

fn bench_das_step(c: &mut Criterion) {
    let net = resnet(14, 4, 12, 12, 8, 32, 0);
    let layers = net.layer_descs();
    let target = FpgaTarget::zc706();
    let mut das = DasEngine::new(DasConfig::default(), 1);
    c.bench_function("das_step_resnet14", |bench| {
        bench.iter(|| black_box(das.step(&layers, &target).1));
    });
}

fn bench_dnnbuilder_design(c: &mut Criterion) {
    let net = resnet(38, 4, 12, 12, 8, 32, 0);
    let layers = net.layer_descs();
    let target = FpgaTarget::zc706();
    c.bench_function("dnnbuilder_design_resnet38", |bench| {
        bench.iter(|| black_box(DnnBuilderModel::design(&layers, &target)));
    });
}

/// Ablation: cost of the best design after a fixed evaluation budget, DAS
/// vs uniform random search (lower is better; printed as a side effect).
fn das_vs_random_quality(c: &mut Criterion) {
    let net = resnet(14, 4, 12, 12, 8, 32, 0);
    let layers = net.layer_descs();
    let target = FpgaTarget::zc706();
    let budget = 400;

    let mut das = DasEngine::new(DasConfig::default(), 5);
    let das_best = das.run(&layers, &target, budget);
    let das_cost = PerfModel::cost(
        &PerfModel::evaluate(&das_best, &layers, &target),
        &target,
        &CostWeights::default(),
    );
    let mut rand = RandomSearch::new(SearchSpace::default(), 4, CostWeights::default(), 5);
    let (_, rand_cost) = rand.run(&layers, &target, budget);
    println!("[ablation] best cost after {budget} evals: DAS={das_cost:.0} random={rand_cost:.0}");

    c.bench_function("das_400_iters_resnet14", |bench| {
        bench.iter(|| {
            let mut das = DasEngine::new(DasConfig::default(), 7);
            black_box(das.run(&layers, &target, 50));
        });
    });
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_predictor, bench_das_step, bench_dnnbuilder_design, das_vs_random_quality
}
criterion_main!(benches);
