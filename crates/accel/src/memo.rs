//! Transposition-table memoization for the analytical predictor.
//!
//! The DAS sweep, beam search and exhaustive enumeration all draw
//! candidates from a > 10²⁷ joint space and re-run
//! [`PerfModel::evaluate`] from scratch on every one. This module fronts
//! the predictor with two fixed-size, hash-indexed tables in the style of
//! a chess engine's transposition table (packed entries, no `HashMap`, so
//! lookups are allocation-free and iteration-order questions never
//! arise):
//!
//! - a **full-config cost table**: FNV-1a key over the canonical
//!   `(context, choice vector)` or `(context, decoded config)` encoding →
//!   the scalar search cost, so re-visited candidates skip decode and
//!   evaluation entirely;
//! - a **per-chunk partial table**: key over `(context, chunk knobs,
//!   assigned layers, bandwidth share)` → that chunk's
//!   [`ChunkPartial`], so candidates differing in a single knob `φ^m` or
//!   only in an assignment boundary reuse every unchanged chunk's layer
//!   sweep.
//!
//! Entries carry a **generation tag**: switching evaluation context
//! (network, target, weights or space) bumps the generation, lazily
//! invalidating stale entries instead of clearing the tables. Collisions
//! within a slot follow an always-replace scheme — newer results win —
//! and full 64-bit keys are verified on probe, so a stale or aliased slot
//! reads as a miss, never as a wrong cost. Cached results are
//! **bit-identical** to direct evaluation by construction: hits return
//! values produced by the exact same code path
//! ([`PerfModel::chunk_partial`] / [`PerfModel::assemble`]) that the
//! direct [`PerfModel::evaluate_dims`] runs.

use crate::predictor::{ChunkPartial, CostWeights, LayerDims, PerfModel, PerfReport};
use crate::space::SearchSpace;
use crate::template::{AcceleratorConfig, ChunkConfig, Dataflow, NocTopology};
use crate::zc706::FpgaTarget;
use a3cs_nn::LayerDesc;
use serde::{Deserialize, Serialize};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Word-level FNV-1a: each `u64` is folded in one xor-multiply round.
/// Word granularity (instead of byte granularity) keeps hashing an order
/// of magnitude cheaper than the predictor sweep it replaces while
/// remaining fully deterministic.
#[derive(Debug, Clone, Copy)]
pub struct KeyHasher(u64);

impl KeyHasher {
    /// Start from the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        KeyHasher(FNV_OFFSET)
    }

    /// Start from the offset basis folded with `seed` (used to chain a
    /// pre-computed context key into a candidate key).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        let mut h = Self::new();
        h.word(seed);
        h
    }

    /// Fold one 64-bit word.
    pub fn word(&mut self, w: u64) {
        self.0 = (self.0 ^ w).wrapping_mul(FNV_PRIME);
    }

    /// Fold a `usize` (widening to 64 bits is lossless on all supported
    /// targets).
    pub fn index(&mut self, v: usize) {
        self.word(v as u64);
    }

    /// Fold an `f64` by its bit pattern.
    pub fn float(&mut self, v: f64) {
        self.word(v.to_bits());
    }

    /// The accumulated key.
    #[must_use]
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

fn noc_tag(noc: NocTopology) -> u64 {
    match noc {
        NocTopology::Broadcast => 0,
        NocTopology::Systolic => 1,
        NocTopology::Multicast => 2,
    }
}

fn dataflow_tag(dataflow: Dataflow) -> u64 {
    match dataflow {
        Dataflow::OutputStationary => 0,
        Dataflow::WeightStationary => 1,
        Dataflow::RowStationary => 2,
    }
}

/// Canonical key of one chunk's knob values.
#[must_use]
pub fn chunk_key(chunk: &ChunkConfig) -> u64 {
    let mut h = KeyHasher::new();
    h.index(chunk.pe.rows);
    h.index(chunk.pe.cols);
    h.word(noc_tag(chunk.noc));
    h.word(dataflow_tag(chunk.dataflow));
    h.index(chunk.buffers.input_kb);
    h.index(chunk.buffers.weight_kb);
    h.index(chunk.buffers.output_kb);
    h.index(chunk.tiling.tm);
    h.index(chunk.tiling.tn);
    h.index(chunk.tiling.tr);
    h.index(chunk.tiling.tc);
    h.finish()
}

fn fold_dims(h: &mut KeyHasher, d: &LayerDims) {
    h.index(d.m);
    h.index(d.n);
    h.index(d.r);
    h.index(d.c);
    h.index(d.k);
    h.index(d.stride);
    h.word(u64::from(d.depthwise));
}

/// Hit/miss/eviction counters of a [`CachedCostModel`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoStats {
    /// Full-config cost-table hits (decode + evaluation skipped).
    pub hits: u64,
    /// Full-config cost-table misses (predictor actually ran).
    pub misses: u64,
    /// Live full-config entries displaced by newer results.
    pub evictions: u64,
    /// Per-chunk partial-table hits (one chunk's layer sweep skipped).
    pub chunk_hits: u64,
    /// Per-chunk partial-table misses.
    pub chunk_misses: u64,
    /// Live per-chunk entries displaced by newer results.
    pub chunk_evictions: u64,
    /// Context switches that bumped the generation tag.
    pub generations: u64,
}

impl MemoStats {
    /// Full predictor evaluations avoided (full-table hits).
    #[must_use]
    pub fn evals_saved(&self) -> u64 {
        self.hits
    }

    /// Full-table hit rate in `[0, 1]` (0 when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Per-chunk partial-table hit rate in `[0, 1]`.
    #[must_use]
    pub fn chunk_hit_rate(&self) -> f64 {
        let total = self.chunk_hits + self.chunk_misses;
        if total == 0 {
            0.0
        } else {
            self.chunk_hits as f64 / total as f64
        }
    }
}

/// The evaluation context a cost model is currently bound to: search
/// space, chunk count, network, FPGA target and cost weights. Everything
/// a choice vector's cost depends on besides the choices themselves.
#[derive(Debug, Clone)]
struct Context {
    space: SearchSpace,
    num_chunks: usize,
    dims: Vec<LayerDims>,
    target: FpgaTarget,
    weights: CostWeights,
    /// Digest of all of the above; chained into every candidate key.
    key: u64,
}

impl Context {
    fn build(
        space: &SearchSpace,
        num_chunks: usize,
        layers: &[LayerDesc],
        target: &FpgaTarget,
        weights: &CostWeights,
    ) -> Context {
        let dims: Vec<LayerDims> = layers.iter().map(LayerDims::from_desc).collect();
        let mut h = KeyHasher::new();
        h.index(num_chunks);
        for sizes in space.knob_sizes(num_chunks, 0) {
            h.index(sizes);
        }
        for list in [
            &space.pe_rows,
            &space.pe_cols,
            &space.buffer_totals_kb,
            &space.tm,
            &space.tn,
            &space.tr,
            &space.tc,
        ] {
            for &v in list {
                h.index(v);
            }
        }
        for noc in &space.nocs {
            h.word(noc_tag(*noc));
        }
        for dataflow in &space.dataflows {
            h.word(dataflow_tag(*dataflow));
        }
        h.index(dims.len());
        for d in &dims {
            fold_dims(&mut h, d);
        }
        h.index(target.dsp_limit);
        h.index(target.bram_kb_limit);
        h.float(target.clock_mhz);
        h.float(target.dram_gbps);
        h.float(weights.resource_penalty);
        h.float(weights.energy_weight);
        Context {
            space: space.clone(),
            num_chunks,
            dims,
            target: *target,
            weights: *weights,
            key: h.finish(),
        }
    }
}

/// A cost model the search engines evaluate candidates through:
/// [`DirectCost`] recomputes every candidate, [`CachedCostModel`]
/// memoizes. Both are bound to an evaluation context with
/// [`CostModel::begin`] and then score canonical choice vectors.
pub trait CostModel {
    /// Bind the model to an evaluation context. Must be called before any
    /// scoring; calling it again with different arguments re-binds (and,
    /// for the cached model, invalidates stale entries via the generation
    /// tag).
    fn begin(
        &mut self,
        space: &SearchSpace,
        num_chunks: usize,
        layers: &[LayerDesc],
        target: &FpgaTarget,
        weights: &CostWeights,
    );

    /// Scalar search cost of the candidate encoded by `choices` (the
    /// canonical `(chunk knobs…, assignment)` vector of
    /// [`SearchSpace::decode`], assignment tail already legal).
    fn cost_choices(&mut self, choices: &[usize]) -> f64;

    /// Full performance report of the candidate encoded by `choices`.
    fn evaluate_choices(&mut self, choices: &[usize]) -> PerfReport;

    /// Cheap lookup: the candidate's cost if it is already known, with no
    /// evaluation and no table mutation. The uncached model knows
    /// nothing.
    #[must_use]
    fn probe_choices(&self, choices: &[usize]) -> Option<f64> {
        let _ = choices;
        None
    }
}

/// The uncached baseline: decodes and evaluates every candidate from
/// scratch. Exists so benches and equivalence tests can run the exact
/// same search code with memoization switched off.
#[derive(Debug, Default)]
pub struct DirectCost {
    ctx: Option<Context>,
}

impl DirectCost {
    /// Create an unbound direct model.
    #[must_use]
    pub fn new() -> Self {
        DirectCost { ctx: None }
    }
}

fn bound_ctx(ctx: &Option<Context>) -> &Context {
    assert!(ctx.is_some(), "call begin() before scoring candidates");
    match ctx {
        Some(c) => c,
        None => unreachable!("asserted bound just above"),
    }
}

impl CostModel for DirectCost {
    fn begin(
        &mut self,
        space: &SearchSpace,
        num_chunks: usize,
        layers: &[LayerDesc],
        target: &FpgaTarget,
        weights: &CostWeights,
    ) {
        self.ctx = Some(Context::build(space, num_chunks, layers, target, weights));
    }

    fn cost_choices(&mut self, choices: &[usize]) -> f64 {
        let report = self.evaluate_choices(choices);
        let ctx = bound_ctx(&self.ctx);
        PerfModel::cost(&report, &ctx.target, &ctx.weights)
    }

    fn evaluate_choices(&mut self, choices: &[usize]) -> PerfReport {
        let ctx = bound_ctx(&self.ctx);
        let accel = ctx
            .space
            .decode(ctx.num_chunks, ctx.dims.len(), choices);
        PerfModel::evaluate_dims(&accel, &ctx.dims, &ctx.target)
    }
}

/// One packed full-config entry: verified 64-bit key, scalar cost,
/// generation tag (`generation == 0` marks an empty slot).
#[derive(Debug, Clone, Copy)]
struct CostEntry {
    key: u64,
    cost: f64,
    generation: u32,
}

const EMPTY_COST: CostEntry = CostEntry {
    key: 0,
    cost: 0.0,
    generation: 0,
};

/// One packed per-chunk entry mirroring [`ChunkPartial`].
#[derive(Debug, Clone, Copy)]
struct ChunkEntry {
    key: u64,
    cycles: f64,
    energy: f64,
    thrashing: u32,
    generation: u32,
}

const EMPTY_CHUNK: ChunkEntry = ChunkEntry {
    key: 0,
    cycles: 0.0,
    energy: 0.0,
    thrashing: 0,
    generation: 0,
};

/// The memoizing cost model: a transposition-table cost cache fronting
/// [`PerfModel`]. See the module docs for the table layout and the
/// bit-identity argument.
#[derive(Debug)]
pub struct CachedCostModel {
    cost_table: Vec<CostEntry>,
    chunk_table: Vec<ChunkEntry>,
    mask: u64,
    generation: u32,
    stats: MemoStats,
    ctx: Option<Context>,
}

impl CachedCostModel {
    /// Create a cache with `2^log2_entries` slots per table (clamped to
    /// `[4, 24]`; the default [`DasConfig::memo_log2`] is 14 ≈ 16k
    /// entries ≈ 0.9 MiB total).
    ///
    /// [`DasConfig::memo_log2`]: crate::DasConfig::memo_log2
    #[must_use]
    pub fn new(log2_entries: u32) -> Self {
        let log2 = log2_entries.clamp(4, 24);
        let entries = 1usize << log2;
        CachedCostModel {
            cost_table: vec![EMPTY_COST; entries],
            chunk_table: vec![EMPTY_CHUNK; entries],
            mask: (entries - 1) as u64,
            generation: 1,
            stats: MemoStats::default(),
            ctx: None,
        }
    }

    /// Counters accumulated since construction (or the last
    /// [`CachedCostModel::reset_stats`]).
    #[must_use]
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Zero the counters (table contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = MemoStats::default();
    }

    /// Slots per table.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cost_table.len()
    }

    /// Candidate key: context digest chained with the choice vector.
    fn choices_key(ctx: &Context, choices: &[usize]) -> u64 {
        let mut h = KeyHasher::seeded(ctx.key);
        h.index(choices.len());
        for &c in choices {
            h.index(c);
        }
        h.finish()
    }

    /// Candidate key for an already-decoded config (used by engines that
    /// hold an [`AcceleratorConfig`] rather than a choice vector; the
    /// decoded knob values are the canonical encoding here).
    fn config_key(ctx: &Context, accel: &AcceleratorConfig) -> u64 {
        let mut h = KeyHasher::seeded(ctx.key);
        h.index(accel.chunks.len());
        for chunk in &accel.chunks {
            h.word(chunk_key(chunk));
        }
        h.index(accel.assignment.len());
        for &a in &accel.assignment {
            h.index(a);
        }
        h.finish()
    }

    fn probe_cost(&self, key: u64) -> Option<f64> {
        let entry = &self.cost_table[(key & self.mask) as usize];
        (entry.generation == self.generation && entry.key == key).then_some(entry.cost)
    }

    fn insert_cost(&mut self, key: u64, cost: f64) {
        let slot = (key & self.mask) as usize;
        let entry = &mut self.cost_table[slot];
        if entry.generation == self.generation && entry.key != key && entry.key != 0 {
            self.stats.evictions += 1;
            telemetry::MEMO_EVICTIONS.add(1);
        }
        *entry = CostEntry {
            key,
            cost,
            generation: self.generation,
        };
    }

    /// Memoized [`PerfModel::evaluate`] of a decoded config against the
    /// bound context: per-chunk partials are fetched from the chunk table
    /// when known and recomputed (and stored) when not, then assembled
    /// exactly as the direct path assembles them.
    ///
    /// # Panics
    ///
    /// Panics if [`CostModel::begin`] has not been called, or if `accel`
    /// does not cover the bound network.
    pub fn evaluate_config(&mut self, accel: &AcceleratorConfig) -> PerfReport {
        let CachedCostModel {
            chunk_table,
            mask,
            generation,
            stats,
            ctx,
            ..
        } = self;
        let ctx = bound_ctx(ctx);
        assert_eq!(
            accel.assignment.len(),
            ctx.dims.len(),
            "assignment must cover every layer of the bound network"
        );
        assert!(accel.assignment_valid(), "assignment indexes missing chunk");
        let assigned = PerfModel::assigned_layers(accel);
        let bw_share = PerfModel::bandwidth_share(accel, &ctx.target);
        let partials: Vec<ChunkPartial> = accel
            .chunks
            .iter()
            .zip(assigned.iter())
            .map(|(chunk, layer_ids)| {
                let mut h = KeyHasher::seeded(ctx.key);
                h.word(chunk_key(chunk));
                h.float(bw_share);
                h.index(layer_ids.len());
                for &l in layer_ids {
                    h.index(l);
                }
                let key = h.finish();
                let slot = (key & *mask) as usize;
                let entry = &mut chunk_table[slot];
                if entry.generation == *generation && entry.key == key {
                    stats.chunk_hits += 1;
                    telemetry::MEMO_CHUNK_HITS.add(1);
                    return ChunkPartial {
                        cycles: entry.cycles,
                        energy: entry.energy,
                        thrashing: entry.thrashing as usize,
                    };
                }
                stats.chunk_misses += 1;
                if entry.generation == *generation && entry.key != 0 {
                    stats.chunk_evictions += 1;
                    telemetry::MEMO_EVICTIONS.add(1);
                }
                let partial = PerfModel::chunk_partial(chunk, &ctx.dims, layer_ids, bw_share);
                *entry = ChunkEntry {
                    key,
                    cycles: partial.cycles,
                    energy: partial.energy,
                    // Layer counts are far below 2^32; widening back is
                    // lossless.
                    thrashing: partial.thrashing as u32,
                    generation: *generation,
                };
                partial
            })
            .collect();
        PerfModel::assemble(accel, &ctx.target, &partials)
    }

    /// Memoized scalar cost of a decoded config (full-table fast path,
    /// falling back to [`CachedCostModel::evaluate_config`] on a miss).
    ///
    /// # Panics
    ///
    /// Panics if [`CostModel::begin`] has not been called, or if `accel`
    /// does not cover the bound network.
    pub fn cost_config(&mut self, accel: &AcceleratorConfig) -> f64 {
        let key = Self::config_key(bound_ctx(&self.ctx), accel);
        if let Some(cost) = self.probe_cost(key) {
            self.stats.hits += 1;
            telemetry::MEMO_HITS.add(1);
            telemetry::MEMO_EVALS_SAVED.add(1);
            return cost;
        }
        self.stats.misses += 1;
        telemetry::MEMO_MISSES.add(1);
        let report = self.evaluate_config(accel);
        let ctx = bound_ctx(&self.ctx);
        let cost = PerfModel::cost(&report, &ctx.target, &ctx.weights);
        self.insert_cost(key, cost);
        cost
    }
}

impl CostModel for CachedCostModel {
    fn begin(
        &mut self,
        space: &SearchSpace,
        num_chunks: usize,
        layers: &[LayerDesc],
        target: &FpgaTarget,
        weights: &CostWeights,
    ) {
        // Cheap re-bind check: rebuilding the context digest is a few
        // hundred word folds; only a *changed* digest pays the (lazy)
        // invalidation cost of a generation bump.
        let next = Context::build(space, num_chunks, layers, target, weights);
        let changed = self.ctx.as_ref().is_none_or(|c| c.key != next.key);
        if changed {
            self.generation = self.generation.wrapping_add(1).max(1);
            self.stats.generations += 1;
        }
        self.ctx = Some(next);
    }

    fn cost_choices(&mut self, choices: &[usize]) -> f64 {
        let key = Self::choices_key(bound_ctx(&self.ctx), choices);
        if let Some(cost) = self.probe_cost(key) {
            self.stats.hits += 1;
            telemetry::MEMO_HITS.add(1);
            telemetry::MEMO_EVALS_SAVED.add(1);
            return cost;
        }
        self.stats.misses += 1;
        telemetry::MEMO_MISSES.add(1);
        let accel = {
            let ctx = bound_ctx(&self.ctx);
            ctx.space.decode(ctx.num_chunks, ctx.dims.len(), choices)
        };
        let report = self.evaluate_config(&accel);
        let ctx = bound_ctx(&self.ctx);
        let cost = PerfModel::cost(&report, &ctx.target, &ctx.weights);
        self.insert_cost(key, cost);
        cost
    }

    fn evaluate_choices(&mut self, choices: &[usize]) -> PerfReport {
        let accel = {
            let ctx = bound_ctx(&self.ctx);
            ctx.space.decode(ctx.num_chunks, ctx.dims.len(), choices)
        };
        self.evaluate_config(&accel)
    }

    fn probe_choices(&self, choices: &[usize]) -> Option<f64> {
        let ctx = self.ctx.as_ref()?;
        self.probe_cost(Self::choices_key(ctx, choices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::tiny_space;
    use a3cs_nn::vanilla;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn layers() -> Vec<LayerDesc> {
        vanilla(4, 12, 12, 32, 0).layer_descs()
    }

    fn random_choices(space: &SearchSpace, chunks: usize, n_layers: usize, rng: &mut StdRng) -> Vec<usize> {
        let sizes = space.knob_sizes(chunks, n_layers);
        let split = space.chunk_knob_sizes().len() * chunks;
        let mut c: Vec<usize> = sizes.iter().map(|&s| rng.gen_range(0..s)).collect();
        c[split..].sort_unstable();
        c
    }

    #[test]
    fn cold_warm_and_config_paths_agree_with_direct() {
        let space = SearchSpace::default();
        let layers = layers();
        let target = FpgaTarget::zc706();
        let weights = CostWeights::default();
        let mut cached = CachedCostModel::new(10);
        let mut direct = DirectCost::new();
        cached.begin(&space, 2, &layers, &target, &weights);
        direct.begin(&space, 2, &layers, &target, &weights);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..40 {
            let c = random_choices(&space, 2, layers.len(), &mut rng);
            let want = direct.cost_choices(&c);
            let cold = cached.cost_choices(&c);
            let warm = cached.cost_choices(&c);
            assert_eq!(want.to_bits(), cold.to_bits());
            assert_eq!(want.to_bits(), warm.to_bits());
            let accel = space.decode(2, layers.len(), &c);
            assert_eq!(want.to_bits(), cached.cost_config(&accel).to_bits());
            assert_eq!(direct.evaluate_choices(&c), cached.evaluate_choices(&c));
        }
        let stats = cached.stats();
        assert!(stats.hits >= 40, "{stats:?}");
        assert!(stats.chunk_hits > 0, "{stats:?}");
    }

    #[test]
    fn eviction_pressure_keeps_costs_identical() {
        // 16 slots, hundreds of distinct candidates: every slot gets
        // displaced many times over and probes must still never return a
        // wrong cost.
        let space = tiny_space();
        let layers = layers();
        let target = FpgaTarget::zc706();
        let weights = CostWeights::default();
        let mut cached = CachedCostModel::new(4);
        let mut direct = DirectCost::new();
        cached.begin(&space, 2, &layers, &target, &weights);
        direct.begin(&space, 2, &layers, &target, &weights);
        let mut rng = StdRng::seed_from_u64(11);
        let pool: Vec<Vec<usize>> = (0..120)
            .map(|_| random_choices(&space, 2, layers.len(), &mut rng))
            .collect();
        for round in 0..3 {
            for c in &pool {
                assert_eq!(
                    direct.cost_choices(c).to_bits(),
                    cached.cost_choices(c).to_bits(),
                    "round {round}"
                );
            }
        }
        assert!(cached.stats().evictions > 0, "{:?}", cached.stats());
    }

    #[test]
    fn context_switch_bumps_generation_and_invalidates() {
        let space = tiny_space();
        let layers = layers();
        let target = FpgaTarget::zc706();
        let mut cached = CachedCostModel::new(8);
        let w0 = CostWeights::default();
        let w1 = CostWeights {
            energy_weight: 1.0,
            ..CostWeights::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let c = random_choices(&space, 1, layers.len(), &mut rng);
        cached.begin(&space, 1, &layers, &target, &w0);
        let cost0 = cached.cost_choices(&c);
        cached.begin(&space, 1, &layers, &target, &w1);
        let cost1 = cached.cost_choices(&c);
        assert!(cost1 > cost0, "energy weight must change the cost");
        // Re-binding the original context still yields the original cost.
        cached.begin(&space, 1, &layers, &target, &w0);
        assert_eq!(cost0.to_bits(), cached.cost_choices(&c).to_bits());
        assert!(cached.stats().generations >= 3);
    }

    #[test]
    fn probe_is_read_only() {
        let space = tiny_space();
        let layers = layers();
        let target = FpgaTarget::zc706();
        let weights = CostWeights::default();
        let mut cached = CachedCostModel::new(8);
        cached.begin(&space, 1, &layers, &target, &weights);
        let mut rng = StdRng::seed_from_u64(5);
        let c = random_choices(&space, 1, layers.len(), &mut rng);
        assert_eq!(cached.probe_choices(&c), None);
        let stats_before = cached.stats();
        assert_eq!(stats_before.hits + stats_before.misses, 0);
        let cost = cached.cost_choices(&c);
        assert_eq!(cached.probe_choices(&c), Some(cost));
        assert_eq!(cached.stats().hits, 0, "probe must not count as a hit");
    }
}
