//! Table I reproduction: highest test scores of the five hand-designed
//! backbones across the simulated game suite.
//!
//! Paper claims to reproduce (Section V-B): (1) bigger networks help on
//! hard games; (2) a task-specific optimum exists and the largest model
//! (ResNet-74) is often inferior within the training budget.
//!
//! ```sh
//! A3CS_SCALE=short cargo run --release -p a3cs-bench --bin table1_model_sizes
//! ```

use a3cs_bench::cli::positional;
use a3cs_bench::paper_data::TABLE1;
use a3cs_bench::report::{fmt, or_exit, print_table, save_json, status};
use a3cs_bench::scale::Scale;
use a3cs_bench::setup::{train_backbone, BACKBONES};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Row {
    game: String,
    scores: BTreeMap<String, f32>,
}

fn main() {
    let scale = or_exit(Scale::try_from_env());
    // Defaults to the paper's 16-game Table I roster; pass game names to
    // filter (e.g. `table1_model_sizes Breakout Pong`).
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter = positional(&args);
    let games: Vec<&'static str> = TABLE1
        .iter()
        .map(|(g, _)| *g)
        .filter(|g| filter.is_empty() || filter.iter().any(|f| f == g))
        .collect();
    status(format!(
        "Table I: best scores of {:?} on {} games (scale: {})\n",
        BACKBONES,
        games.len(),
        scale.name
    ));

    let mut rows = Vec::new();
    let mut dumps = Vec::new();
    for game in games {
        let mut cells = vec![game.to_owned()];
        let mut scores = BTreeMap::new();
        for kind in BACKBONES {
            let (_, curve) = or_exit(train_backbone(game, kind, &scale, None, 777));
            let best = curve.best_score();
            cells.push(fmt(f64::from(best)));
            scores.insert(kind.to_owned(), best);
        }
        status(format!("{game} done"));
        rows.push(cells);
        dumps.push(Row {
            game: game.to_owned(),
            scores,
        });
    }

    status("\nmeasured (best evaluation score):\n");
    let mut headers = vec!["game"];
    headers.extend(BACKBONES);
    print_table(&headers, &rows);

    status("\npaper reference (ALE, 3e7 steps) for the shared games:\n");
    let paper_rows: Vec<Vec<String>> = TABLE1
        .iter()
        .map(|(g, vals)| {
            let mut r = vec![(*g).to_owned()];
            r.extend(vals.iter().map(|v| fmt(*v)));
            r
        })
        .collect();
    print_table(&headers, &paper_rows);

    save_json("table1_model_sizes", &dumps);
}
