//! 1-thread vs N-thread baseline for the deterministic parallel execution
//! layer: rollout collection, evaluation and conv2d forward/backward on the
//! ResNet-20 workload, with a bit-equivalence check per entry.
//!
//! Emits `BENCH_par.json` in the working directory. Speedups depend on the
//! machine's core count (`available_cores` in the JSON); determinism does
//! not — `identical` must be `true` for every entry everywhere.
//!
//! ```sh
//! cargo run --release -p a3cs-bench --bin bench_par
//! ```

use a3cs_bench::report::{or_exit, status, warn};
use a3cs_bench::setup::{agent_with, build_backbone, factory_for, game_info};
use a3cs_drl::{evaluate, ActorCritic, EvalProtocol, RolloutRunner};
use a3cs_tensor::{Conv2dGeometry, Tape, Tensor};
use serde::Serialize;
use std::time::Instant;

/// Threads for the parallel leg (the acceptance workload compares 4 vs 1).
const PAR_THREADS: usize = 4;
/// Timed repetitions per leg (best-of, after one warm-up run).
const REPS: usize = 3;

#[derive(Serialize)]
struct Entry {
    name: String,
    seq_ms: f64,
    par_ms: f64,
    speedup: f64,
    /// Bit-identical output across thread counts (must always hold).
    identical: bool,
}

#[derive(Serialize)]
struct Baseline {
    threads_seq: usize,
    threads_par: usize,
    /// Cores visible to this process; speedup is bounded by this.
    available_cores: usize,
    entries: Vec<Entry>,
}

/// Time `work` at a fixed thread count: one warm-up, then best of [`REPS`],
/// returning (milliseconds, output fingerprint).
fn time_at<T: PartialEq>(threads: usize, work: &dyn Fn() -> T) -> (f64, T) {
    threadpool::with_threads(threads, || {
        let mut out = work();
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            out = work();
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        (best, out)
    })
}

fn entry<T: PartialEq>(name: &str, work: &dyn Fn() -> T) -> Entry {
    let (seq_ms, seq_out) = time_at(1, work);
    let (par_ms, par_out) = time_at(PAR_THREADS, work);
    let e = Entry {
        name: name.to_owned(),
        seq_ms,
        par_ms,
        speedup: seq_ms / par_ms,
        identical: seq_out == par_out,
    };
    status(format!(
        "{:>32}  seq {:8.2} ms  par {:8.2} ms  speedup {:.2}x  identical: {}",
        e.name, e.seq_ms, e.par_ms, e.speedup, e.identical
    ));
    e
}

fn bits(data: &[f32]) -> Vec<u32> {
    data.iter().map(|x| x.to_bits()).collect()
}

fn resnet20_agent(seed: u64) -> ActorCritic {
    let info = or_exit(game_info("Breakout"));
    agent_with(or_exit(build_backbone("ResNet-20", &info, seed)), &info, seed)
}

fn main() {
    let agent = resnet20_agent(7);
    let info = or_exit(game_info("Breakout"));
    let obs_len = info.planes * info.height * info.width;
    let factory = or_exit(factory_for("Breakout"));
    let available_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    status(format!(
        "parallel-layer baseline: ResNet-20 on Breakout, {PAR_THREADS} threads vs 1 \
         ({available_cores} cores available)\n"
    ));

    let entries = vec![
        entry("rollout_collect_8x5", &|| {
            let mut runner = RolloutRunner::new(&factory, 8, 11);
            let r = runner.collect(&agent, 5);
            (r.actions, bits(&r.rewards), bits(&r.observations))
        }),
        entry("conv2d_forward_batch8", &|| {
            // Full ResNet-20 forward: every conv in the backbone, batch 8.
            let batch: Vec<f32> = (0..8 * obs_len).map(|i| (i % 17) as f32 * 0.05).collect();
            bits(agent.policy_probs(&batch, 8).data())
        }),
        entry("conv2d_forward_backward_batch8", &|| {
            // One representative ResNet-20 body convolution, fwd + bwd.
            let geom = Conv2dGeometry {
                in_channels: 16,
                out_channels: 16,
                kernel: 3,
                stride: 1,
                padding: 1,
                in_h: 12,
                in_w: 12,
            };
            let tape = Tape::new();
            let x = tape.leaf(Tensor::randn(&[8, 16, 12, 12], 0.5, 3));
            let w = tape.leaf(Tensor::randn(&[16, 16, 3, 3], 0.5, 4));
            let y = x.conv2d(&w, geom);
            y.square().sum().backward();
            let grad_bits = |g: Option<Tensor>| g.map(|t| bits(t.data()));
            (bits(y.value().data()), grad_bits(w.grad()), grad_bits(x.grad()))
        }),
        entry("evaluate_6_episodes", &|| {
            let protocol = EvalProtocol {
                episodes: 6,
                max_steps: 60,
                ..EvalProtocol::default()
            };
            evaluate(&agent, &factory, &protocol).to_bits()
        }),
    ];

    let all_identical = entries.iter().all(|e| e.identical);
    let baseline = Baseline {
        threads_seq: 1,
        threads_par: PAR_THREADS,
        available_cores,
        entries,
    };
    match serde_json::to_string_pretty(&baseline) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_par.json", json + "\n") {
                warn(format!("cannot write BENCH_par.json: {e}"));
            } else {
                status("\n(baseline written to BENCH_par.json)");
            }
        }
        Err(e) => warn(format!("cannot serialise baseline: {e}")),
    }
    assert!(all_identical, "parallel output diverged from sequential");
}
