//! Gumbel-Softmax sampling and the paper's temperature schedule.

use a3cs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's Gumbel-Softmax temperature schedule: initial temperature 5,
/// multiplied by 0.98 every 10⁵ steps (Section V-A). The scale is
/// configurable so the reproduction can anneal over its smaller budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperatureSchedule {
    /// Starting temperature (paper: 5.0).
    pub initial: f32,
    /// Multiplicative decay factor (paper: 0.98).
    pub decay: f32,
    /// Steps between decays (paper: 1e5; scaled down here).
    pub every: u64,
    /// Temperature floor to keep the relaxation numerically sane.
    pub min: f32,
}

impl Default for TemperatureSchedule {
    fn default() -> Self {
        TemperatureSchedule {
            initial: 5.0,
            decay: 0.98,
            every: 1_000,
            min: 0.2,
        }
    }
}

impl TemperatureSchedule {
    /// Temperature at training step `step`.
    #[must_use]
    pub fn at(&self, step: u64) -> f32 {
        let decays = (step / self.every.max(1)) as i32;
        (self.initial * self.decay.powi(decays)).max(self.min)
    }
}

/// A seeded Gumbel-Softmax sampler.
///
/// Provides Gumbel noise, the softmax relaxation `softmax((logits + g)/τ)`
/// and hard (argmax) sampling — the ingredients of Eq. 6 and Eq. 9.
#[derive(Debug, Clone)]
pub struct GumbelSoftmax {
    rng: StdRng,
}

impl GumbelSoftmax {
    /// Create a sampler with a fixed seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        GumbelSoftmax {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The sampler's RNG state words, for checkpointing.
    #[must_use]
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restore RNG state captured by [`GumbelSoftmax::rng_state`],
    /// resuming the noise stream exactly where it left off.
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }

    /// Draw `n` i.i.d. standard Gumbel variates `-ln(-ln(U))`.
    #[must_use]
    pub fn sample_noise(&mut self, n: usize) -> Vec<f32> {
        (0..n)
            .map(|_| {
                let u: f32 = self.rng.gen_range(f32::EPSILON..1.0);
                -(-u.ln()).ln()
            })
            .collect()
    }

    /// Perturbed logits `(logits + g) / τ` with fresh Gumbel noise.
    ///
    /// # Panics
    ///
    /// Panics if `temperature <= 0`.
    #[must_use]
    pub fn perturb(&mut self, logits: &[f32], temperature: f32) -> Vec<f32> {
        assert!(temperature > 0.0, "temperature must be positive");
        let noise = self.sample_noise(logits.len());
        logits
            .iter()
            .zip(noise.iter())
            .map(|(&l, &g)| (l + g) / temperature)
            .collect()
    }

    /// Soft sample: `softmax((logits + g)/τ)` as a rank-1 tensor.
    #[must_use]
    pub fn soft(&mut self, logits: &[f32], temperature: f32) -> Tensor {
        let z = self.perturb(logits, temperature);
        softmax_vec(&z)
    }

    /// Hard sample: the argmax index of the perturbed logits (one-hot
    /// forward of `GS_hard`).
    #[must_use]
    pub fn hard(&mut self, logits: &[f32], temperature: f32) -> usize {
        let z = self.perturb(logits, temperature);
        argmax(&z)
    }
}

pub(crate) fn softmax_vec(z: &[f32]) -> Tensor {
    let mx = z.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = z.iter().map(|&v| (v - mx).exp()).collect();
    let sum: f32 = exps.iter().sum();
    match Tensor::from_vec(exps.iter().map(|&e| e / sum).collect(), &[z.len()]) {
        Ok(t) => t,
        Err(e) => unreachable!("z.len() values always fit shape [z.len()]: {e:?}"),
    }
}

pub(crate) fn argmax(z: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in z.iter().enumerate() {
        if v > z[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_matches_paper_shape() {
        let s = TemperatureSchedule::default();
        assert_eq!(s.at(0), 5.0);
        assert_eq!(s.at(999), 5.0);
        assert!((s.at(1_000) - 4.9).abs() < 1e-5);
        assert!(s.at(1_000_000) >= s.min);
    }

    #[test]
    fn gumbel_noise_is_seeded() {
        let a = GumbelSoftmax::new(1).sample_noise(16);
        let b = GumbelSoftmax::new(1).sample_noise(16);
        let c = GumbelSoftmax::new(2).sample_noise(16);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn soft_sample_is_a_distribution() {
        let mut gs = GumbelSoftmax::new(3);
        let p = gs.soft(&[0.0, 1.0, -1.0], 1.0);
        assert!((p.sum() - 1.0).abs() < 1e-5);
        assert!(p.data().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn hard_sample_frequencies_track_logits() {
        let mut gs = GumbelSoftmax::new(4);
        let logits = [2.0f32, 0.0, 0.0];
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[gs.hard(&logits, 1.0)] += 1;
        }
        // P(argmax = 0) = e^2 / (e^2 + 2) ≈ 0.787 under Gumbel-max.
        assert!(
            counts[0] > 1400 && counts[0] < 1800,
            "gumbel-max frequency off: {counts:?}"
        );
    }

    #[test]
    fn high_temperature_flattens_soft_samples() {
        let sharp: f32 = (0..200)
            .map(|s| GumbelSoftmax::new(s).soft(&[3.0, 0.0], 0.5).max())
            .sum::<f32>()
            / 200.0;
        let flat: f32 = (0..200)
            .map(|s| GumbelSoftmax::new(s).soft(&[3.0, 0.0], 50.0).max())
            .sum::<f32>()
            / 200.0;
        assert!(sharp > flat, "τ=0.5 should be peakier than τ=50");
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_panics() {
        let mut gs = GumbelSoftmax::new(0);
        let _ = gs.perturb(&[0.0], 0.0);
    }
}
