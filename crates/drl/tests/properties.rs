//! Property tests for the DRL stack: loss finiteness across random games
//! and rollouts, optimiser convergence, schedule monotonicity.

use a3cs_drl::{
    a2c_losses, A2cConfig, ActorCritic, Adam, DistillConfig, LrSchedule, Optimizer, RmsProp,
    RolloutRunner,
};
use a3cs_envs::{game_names, make_env, Environment};
use a3cs_nn::{vanilla, Param};
use a3cs_tensor::{Tape, Tensor};
use proptest::prelude::*;

fn agent_for(game: &str, seed: u64) -> (ActorCritic, (usize, usize, usize)) {
    let env = make_env(game, 0).expect("known game");
    let (p, h, w) = env.observation_shape();
    let backbone = vanilla(p, h, w, 16, seed);
    (
        ActorCritic::new(Box::new(backbone), 16, (p, h, w), env.action_count(), seed),
        (p, h, w),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn a2c_losses_finite_on_any_game(
        game in prop::sample::select(game_names()),
        seed in 0u64..500,
        rollout_len in 2usize..8,
        gamma in 0.5f32..0.999,
    ) {
        let (agent, _) = agent_for(game, seed);
        let factory = move |s: u64| make_env(game, s).expect("known game");
        let mut runner = RolloutRunner::new(&factory, 2, seed);
        let rollout = runner.collect(&agent, rollout_len);
        let tape = Tape::new();
        let config = A2cConfig { gamma, ..A2cConfig::default() };
        let (loss, stats) = a2c_losses(
            &tape, &agent, &rollout, &config, &DistillConfig::default(), None,
        );
        prop_assert!(loss.value().item().is_finite(), "{game}: {stats:?}");
        prop_assert!(stats.value >= 0.0);
        prop_assert!(stats.entropy <= 1e-4, "entropy loss must be <= 0");
    }

    #[test]
    fn distillation_losses_are_nonnegative(
        game in prop::sample::select(game_names()),
        seed in 0u64..200,
    ) {
        let (student, _) = agent_for(game, seed);
        let (teacher, _) = agent_for(game, seed + 999);
        let factory = move |s: u64| make_env(game, s).expect("known game");
        let mut runner = RolloutRunner::new(&factory, 2, seed);
        let rollout = runner.collect(&student, 5);
        let tape = Tape::new();
        let (_, stats) = a2c_losses(
            &tape, &student, &rollout, &A2cConfig::default(),
            &DistillConfig::ac_distillation(), Some(&teacher),
        );
        prop_assert!(stats.actor_distill >= -1e-4, "KL must be >= 0: {stats:?}");
        prop_assert!(stats.critic_distill >= 0.0);
    }

    #[test]
    fn optimisers_descend_a_random_quadratic(
        target in -4.0f32..4.0,
        start in -4.0f32..4.0,
        use_adam in any::<bool>(),
    ) {
        let p = Param::new("p", Tensor::scalar(start));
        let mut opt: Box<dyn Optimizer> = if use_adam {
            Box::new(Adam::new(0.15))
        } else {
            Box::new(RmsProp::new(0.08))
        };
        let loss_at = |v: f32| (v - target) * (v - target);
        let initial = loss_at(p.value().item());
        for _ in 0..250 {
            let tape = Tape::new();
            let v = p.bind(&tape);
            v.add_scalar(-target).square().sum().backward();
            opt.step(std::slice::from_ref(&p));
        }
        let final_loss = loss_at(p.value().item());
        prop_assert!(final_loss <= initial.max(0.05), "{start}->{target}: {final_loss}");
    }

    #[test]
    fn lr_schedule_is_monotone_nonincreasing(
        initial in 1e-4f32..1e-2,
        frac in 0.05f32..0.9,
        total in 100u64..100_000,
    ) {
        let sched = LrSchedule {
            initial_lr: initial,
            final_lr: initial * 0.1,
            constant_steps: (total as f32 * frac) as u64,
            total_steps: total,
        };
        let mut prev = sched.at(0);
        for i in 0..20 {
            let step = total * i / 19;
            let lr = sched.at(step);
            prop_assert!(lr <= prev + 1e-9);
            prop_assert!(lr >= sched.final_lr - 1e-9);
            prev = lr;
        }
    }

    #[test]
    fn rollouts_have_consistent_layout(
        game in prop::sample::select(game_names()),
        n_envs in 1usize..4,
        len in 1usize..8,
        seed in 0u64..300,
    ) {
        let (agent, (p, h, w)) = agent_for(game, seed);
        let factory = move |s: u64| make_env(game, s).expect("known game");
        let mut runner = RolloutRunner::new(&factory, n_envs, seed);
        let r = runner.collect(&agent, len);
        prop_assert_eq!(r.transitions(), n_envs * len);
        prop_assert_eq!(r.observations.len(), (len + 1) * n_envs * p * h * w);
        prop_assert!(r.actions.iter().all(|&a| a < agent.n_actions()));
    }
}
