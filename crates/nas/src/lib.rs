//! Differentiable neural architecture search (DNAS) for DRL agents — the
//! network half of A3C-S (paper Section IV-A).
//!
//! Implements:
//!
//! - [`GumbelSoftmax`]: seeded Gumbel noise, temperature-annealed softmax
//!   relaxation and hard (one-hot) sampling, with the paper's temperature
//!   schedule (initial 5, ×0.98 every 10⁵ steps) as [`TemperatureSchedule`];
//! - [`OpChoice`]: the 9 candidate operators per cell (3×3/5×5 convolution,
//!   inverted residuals with kernel ∈ {3,5} × expansion ∈ {1,3,5}, skip),
//!   giving the paper's `9^12` search space over 12 cells;
//! - [`ArchParams`]: the architecture distribution `α`;
//! - [`SuperNet`]: the weight-sharing supernet with **single-path forward /
//!   multi-path (top-K) backward** (Eq. 6–7) via a straight-through
//!   Gumbel-Softmax estimator;
//! - [`derive_backbone`]: extraction of the final (argmax-`α`) network as a
//!   plain [`a3cs_nn::Backbone`].
//!
//! # Example
//!
//! ```
//! use a3cs_nas::{SuperNet, SupernetConfig};
//! use a3cs_nn::Module;
//! use a3cs_tensor::{Tape, Tensor};
//!
//! let config = SupernetConfig::tiny(3, 12, 12);
//! let supernet = SuperNet::new(config, 0);
//! let tape = Tape::new();
//! let x = tape.leaf(Tensor::zeros(&[1, 3, 12, 12]));
//! let y = supernet.forward(&tape, &x, true);
//! assert_eq!(y.shape()[0], 1);
//! let arch = supernet.most_likely_arch();
//! assert_eq!(arch.len(), supernet.num_cells());
//! ```

#![deny(missing_docs)]

mod arch;
mod derive;
mod error;
mod gumbel;
mod ops;
mod supernet;

pub use arch::ArchParams;
pub use derive::{derive_backbone, try_derive_backbone};
pub use error::NasError;
pub use gumbel::{GumbelSoftmax, TemperatureSchedule};
pub use ops::{build_op, search_space_size, OpChoice, ALL_OPS};
pub use supernet::{SuperNet, SupernetConfig, SupernetSearchState};
