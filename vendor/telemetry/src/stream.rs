//! Live JSONL streaming: an optional process-global writer that receives
//! every span/instant record *as it is published to the collector* — i.e.
//! at outermost-span exit for buffered records, immediately for records
//! produced outside any span — instead of only when `Session::finish`
//! drains the trace. A fleet tails this to watch long-running sessions.
//!
//! Ordering contract: lines are written while the collector mutex is held
//! (see `push_record` / `flush_local` in `lib.rs`), so the streamed line
//! order is exactly the collector's record order, and each line is
//! byte-identical to the corresponding record line of `Trace::to_jsonl`
//! (both go through `trace::record_jsonl_line`). Streamed records are raw
//! (not [`Trace::normalized`]): ids and timestamps are the live values.
//!
//! Streaming is observe-only and best-effort: write errors are swallowed
//! (a broken tail must never panic or abort a search), and the buffered
//! path is untouched — with no stream attached, behavior and output are
//! bit-identical to the pre-streaming crate.
//!
//! [`Trace::normalized`]: crate::Trace::normalized

use crate::trace::{record_jsonl_line, Record};
use crate::Trace;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Fast gate so the hot publish path pays one relaxed load when no stream
/// is attached (the common case).
static STREAM_ACTIVE: AtomicBool = AtomicBool::new(false);
/// The attached writer, if any. Locked only after the collector mutex (or
/// alone, from attach/detach) — never the other way around.
static STREAM: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Write the JSONL lines for `records` to the attached stream, if any.
/// Called with the collector mutex held so stream order matches collector
/// order. Best-effort: I/O errors are ignored.
pub(crate) fn publish(records: &[Record]) {
    if !STREAM_ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let mut guard = crate::lock(&STREAM);
    if let Some(writer) = guard.as_mut() {
        let mut lines = String::new();
        for record in records {
            record_jsonl_line(record, &mut lines);
        }
        let _ = writer.write_all(lines.as_bytes());
    }
}

/// RAII handle for a live JSONL record stream.
///
/// While attached, every record entering the global collector is also
/// written to the wrapped writer as one JSONL line, flushed at
/// outermost-span exit rather than at `Session::finish`. At most one
/// stream is attached at a time; attaching replaces (and flushes) any
/// previous writer. Dropping the handle detaches and flushes.
pub struct StreamingJsonl {
    detached: bool,
}

impl StreamingJsonl {
    /// Attach `writer` as the live record stream.
    #[must_use]
    pub fn attach(writer: Box<dyn Write + Send>) -> StreamingJsonl {
        let mut guard = crate::lock(&STREAM);
        if let Some(mut old) = guard.replace(writer) {
            let _ = old.flush();
        }
        STREAM_ACTIVE.store(true, Ordering::Relaxed);
        StreamingJsonl { detached: false }
    }

    /// Detach and flush the stream explicitly (equivalent to dropping).
    pub fn detach(mut self) {
        self.detach_inner();
    }

    fn detach_inner(&mut self) {
        if self.detached {
            return;
        }
        self.detached = true;
        STREAM_ACTIVE.store(false, Ordering::Relaxed);
        if let Some(mut writer) = crate::lock(&STREAM).take() {
            let _ = writer.flush();
        }
    }
}

impl Drop for StreamingJsonl {
    fn drop(&mut self) {
        self.detach_inner();
    }
}

/// The JSONL record lines of `trace` — `Trace::to_jsonl` minus the
/// trailing metric/pool lines. What a [`StreamingJsonl`] attached for the
/// whole collection window would have received, in order.
#[must_use]
pub fn record_lines(trace: &Trace) -> String {
    let mut out = String::new();
    for record in &trace.records {
        record_jsonl_line(record, &mut out);
    }
    out
}
