//! Matrix multiplication and convolution kernels operating on raw [`Tensor`]s.
//!
//! These are the hot loops of the crate. They are written cache-friendly
//! (ikj loop order for GEMM, im2col lowering for convolution) but make no
//! attempt at SIMD intrinsics; the A3C-S reproduction works on deliberately
//! small tensors.
//!
//! # Determinism under parallelism
//!
//! Above [`PAR_MIN_MACS`] multiply–accumulates, the GEMM kernels fan output
//! rows across the [`threadpool::current`] pool. Each output row is computed
//! entirely by one lane with the exact per-element accumulation order of the
//! sequential loop, and rows are disjoint slices of the output buffer, so the
//! result is bit-identical for every thread count (`A3CS_THREADS=1` included).
//! No kernel skips `a == 0.0` entries: `0 × NaN = NaN` and `0 × ∞ = NaN` must
//! propagate like IEEE-754 says they do.

use crate::tensor::Tensor;

/// Minimum multiply–accumulate count before a GEMM fans rows out across the
/// thread pool. Below this, fork-join overhead beats the win on the small
/// tensors this workspace uses.
pub const PAR_MIN_MACS: usize = 16 * 1024;

/// Wrap a buffer that the caller sized as exactly `m * n` elements.
fn tensor2(data: Vec<f32>, m: usize, n: usize) -> Tensor {
    match Tensor::from_vec(data, &[m, n]) {
        Ok(t) => t,
        // Callers allocate `vec![0.0; m * n]`, so the length always matches
        // and the element count already fit in memory.
        Err(e) => unreachable!("buffer sized by construction for [{m}, {n}]: {e:?}"),
    }
}

/// Run `fill(row, row_slice)` for every row of `out`, fanning rows across
/// the pool when the kernel is worth `macs` multiply–accumulates.
fn fill_rows(out: &mut [f32], rows: usize, row_len: usize, macs: usize, fill: impl Fn(usize, &mut [f32]) + Sync) {
    if rows == 0 || row_len == 0 {
        return;
    }
    // Observe-only cost attribution; one relaxed load when telemetry is off.
    if telemetry::enabled() {
        telemetry::GEMM_CALLS.add(1);
        telemetry::GEMM_MACS.add(macs as u64);
        telemetry::GEMM_MACS_HIST.record(macs as u64);
    }
    if rows >= 2 && macs >= PAR_MIN_MACS {
        threadpool::current().parallel_fill_rows(out, rows, row_len, fill);
    } else {
        for (i, orow) in out.chunks_mut(row_len).enumerate() {
            fill(i, orow);
        }
    }
}

/// `A[m,k] @ B[k,n] -> [m,n]`.
///
/// # Panics
///
/// Panics unless both inputs are rank 2 with matching inner dimension.
#[must_use]
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    fill_rows(&mut out, m, n, m * k * n, |i, orow| {
        let arow = &ad[i * k..(i + 1) * k];
        for (p, &av) in arow.iter().enumerate() {
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    });
    tensor2(out, m, n)
}

/// `A^T[k,m] @ B[k,n] -> [m,n]` without materialising the transpose.
///
/// # Panics
///
/// Panics unless both inputs are rank 2 with matching leading dimension.
#[must_use]
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_at_b lhs");
    let (k2, n) = dims2(b, "matmul_at_b rhs");
    assert_eq!(k, k2, "matmul_at_b leading dims differ: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    // Row-major over the output: lane-disjoint rows, and each output element
    // still accumulates over `p` in ascending order.
    fill_rows(&mut out, m, n, m * k * n, |i, orow| {
        for p in 0..k {
            let av = ad[p * m + i];
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    });
    tensor2(out, m, n)
}

/// `A[m,k] @ B^T[n,k] -> [m,n]` without materialising the transpose.
///
/// # Panics
///
/// Panics unless both inputs are rank 2 with matching trailing dimension.
#[must_use]
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_a_bt lhs");
    let (n, k2) = dims2(b, "matmul_a_bt rhs");
    assert_eq!(k, k2, "matmul_a_bt trailing dims differ: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    fill_rows(&mut out, m, n, m * k * n, |i, orow| {
        let arow = &ad[i * k..(i + 1) * k];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
    });
    tensor2(out, m, n)
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    let s = t.shape();
    assert_eq!(s.len(), 2, "{what} must be rank 2, got {s:?}");
    (s[0], s[1])
}

/// Static geometry of a 2-D convolution (shared by forward and backward).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub padding: usize,
    /// Input spatial height.
    pub in_h: usize,
    /// Input spatial width.
    pub in_w: usize,
}

impl Conv2dGeometry {
    /// Output spatial height.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    #[must_use]
    pub fn out_h(&self) -> usize {
        out_dim(self.in_h, self.kernel, self.stride, self.padding)
    }

    /// Output spatial width.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    #[must_use]
    pub fn out_w(&self) -> usize {
        out_dim(self.in_w, self.kernel, self.stride, self.padding)
    }

    /// Number of rows of the lowered (im2col) matrix: `Ci * k * k`.
    #[must_use]
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Number of columns of the lowered (im2col) matrix: `Ho * Wo`.
    #[must_use]
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Multiply–accumulate operations for one input image.
    #[must_use]
    pub fn macs_per_image(&self) -> u64 {
        self.out_channels as u64 * self.col_rows() as u64 * self.col_cols() as u64
    }
}

fn out_dim(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    let padded = input + 2 * padding;
    assert!(
        padded >= kernel && stride > 0,
        "kernel {kernel} with stride {stride} does not fit input {input} (+2*{padding} pad)"
    );
    (padded - kernel) / stride + 1
}

/// Lower one image `[Ci, H, W]` (as a flat slice) to the im2col matrix
/// `[Ci*k*k, Ho*Wo]` for `geom`.
///
/// # Panics
///
/// Panics if `image` does not hold exactly `Ci*H*W` elements.
#[must_use]
pub fn im2col(image: &[f32], geom: &Conv2dGeometry) -> Tensor {
    let (ci, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    assert_eq!(image.len(), ci * h * w, "im2col image size mismatch");
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let k = geom.kernel;
    let cols = oh * ow;
    let mut out = vec![0.0f32; geom.col_rows() * cols];
    for c in 0..ci {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let base = row * cols;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[base + oy * ow + ox] = image[(c * h + iy) * w + ix as usize];
                    }
                }
            }
        }
    }
    tensor2(out, geom.col_rows(), cols)
}

/// Inverse of [`im2col`]: scatter-add a `[Ci*k*k, Ho*Wo]` matrix back into
/// an image buffer `[Ci, H, W]` (used by the convolution backward pass).
///
/// # Panics
///
/// Panics if `col` or `image` have sizes inconsistent with `geom`.
pub fn col2im(col: &Tensor, geom: &Conv2dGeometry, image: &mut [f32]) {
    let (ci, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    assert_eq!(image.len(), ci * h * w, "col2im image size mismatch");
    let (oh, ow) = (geom.out_h(), geom.out_w());
    assert_eq!(
        col.shape(),
        &[geom.col_rows(), oh * ow],
        "col2im column matrix shape mismatch"
    );
    let k = geom.kernel;
    let cols = oh * ow;
    let cd = col.data();
    for c in 0..ci {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let base = row * cols;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        image[(c * h + iy) * w + ix as usize] += cd[base + oy * ow + ox];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: Vec<f32>, shape: &[usize]) -> Tensor {
        Tensor::from_vec(data, shape).unwrap()
    }

    #[test]
    fn matmul_small_known() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::randn(&[5, 5], 1.0, 1);
        let mut eye = Tensor::zeros(&[5, 5]);
        for i in 0..5 {
            eye.set(&[i, i], 1.0);
        }
        assert!(matmul(&a, &eye).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&eye, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn matmul_propagates_nan_through_zero_entries() {
        // 0 × NaN must yield NaN per IEEE-754; a zero-skip fast path used to
        // silently drop it.
        let a = t(vec![0.0, 0.0], &[1, 2]);
        let b = t(vec![f32::NAN, f32::INFINITY, 1.0, 2.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert!(c.data()[0].is_nan(), "0*NaN row must stay NaN");
        assert!(c.data()[1].is_nan(), "0*inf must stay NaN");

        let at = t(vec![0.0, 0.0], &[2, 1]);
        let cat = matmul_at_b(&at, &b);
        assert!(cat.data()[0].is_nan() && cat.data()[1].is_nan());

        let bt = t(vec![f32::NAN, f32::INFINITY], &[1, 2]);
        let cbt = matmul_a_bt(&a, &bt);
        assert!(cbt.data()[0].is_nan());
    }

    #[test]
    fn gemm_kernels_bit_identical_across_thread_counts() {
        // Big enough to clear PAR_MIN_MACS so the 4-thread run really forks.
        let a = Tensor::randn(&[40, 33], 1.0, 21);
        let b = Tensor::randn(&[33, 37], 1.0, 22);
        let at = Tensor::randn(&[33, 40], 1.0, 23);
        let bt = Tensor::randn(&[37, 33], 1.0, 24);
        assert!(40 * 33 * 37 >= PAR_MIN_MACS);
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        let seq = threadpool::with_threads(1, || {
            (matmul(&a, &b), matmul_at_b(&at, &b), matmul_a_bt(&a, &bt))
        });
        for threads in [2usize, 4] {
            let par = threadpool::with_threads(threads, || {
                (matmul(&a, &b), matmul_at_b(&at, &b), matmul_a_bt(&a, &bt))
            });
            assert_eq!(bits(&seq.0), bits(&par.0), "matmul threads={threads}");
            assert_eq!(bits(&seq.1), bits(&par.1), "matmul_at_b threads={threads}");
            assert_eq!(bits(&seq.2), bits(&par.2), "matmul_a_bt threads={threads}");
        }
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = Tensor::randn(&[4, 6], 1.0, 2);
        let b = Tensor::randn(&[4, 3], 1.0, 3);
        let c = Tensor::randn(&[5, 6], 1.0, 4);
        assert!(matmul_at_b(&a, &b).max_abs_diff(&matmul(&a.transpose(), &b)) < 1e-5);
        assert!(matmul_a_bt(&a, &c).max_abs_diff(&matmul(&a, &c.transpose())) < 1e-5);
    }

    #[test]
    fn geometry_output_dims() {
        let g = Conv2dGeometry {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            stride: 2,
            padding: 1,
            in_h: 8,
            in_w: 8,
        };
        assert_eq!((g.out_h(), g.out_w()), (4, 4));
        assert_eq!(g.col_rows(), 27);
        assert_eq!(g.col_cols(), 16);
        assert_eq!(g.macs_per_image(), 8 * 27 * 16);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no padding: im2col is just a reshape.
        let g = Conv2dGeometry {
            in_channels: 2,
            out_channels: 1,
            kernel: 1,
            stride: 1,
            padding: 0,
            in_h: 2,
            in_w: 2,
        };
        let img: Vec<f32> = (0..8).map(|x| x as f32).collect();
        let col = im2col(&img, &g);
        assert_eq!(col.shape(), &[2, 4]);
        assert_eq!(col.data(), img.as_slice());
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let g = Conv2dGeometry {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_h: 2,
            in_w: 2,
        };
        let img = vec![1.0, 2.0, 3.0, 4.0];
        let col = im2col(&img, &g);
        assert_eq!(col.shape(), &[9, 4]);
        // Top-left kernel tap at output (0,0) reads the padded corner => 0.
        assert_eq!(col.at(&[0, 0]), 0.0);
        // Centre tap reproduces the image.
        assert_eq!(col.at(&[4, 0]), 1.0);
        assert_eq!(col.at(&[4, 3]), 4.0);
    }

    #[test]
    fn conv_via_im2col_matches_naive() {
        let g = Conv2dGeometry {
            in_channels: 2,
            out_channels: 3,
            kernel: 3,
            stride: 2,
            padding: 1,
            in_h: 5,
            in_w: 5,
        };
        let img = Tensor::randn(&[2 * 5 * 5], 1.0, 9);
        let w = Tensor::randn(&[3, g.col_rows()], 1.0, 10);
        let col = im2col(img.data(), &g);
        let out = matmul(&w, &col); // [Co, Ho*Wo]

        // naive direct convolution
        let (oh, ow) = (g.out_h(), g.out_w());
        for co in 0..3 {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ci in 0..2 {
                        for ky in 0..3 {
                            for kx in 0..3 {
                                let iy = (oy * 2 + ky) as isize - 1;
                                let ix = (ox * 2 + kx) as isize - 1;
                                if iy < 0 || ix < 0 || iy >= 5 || ix >= 5 {
                                    continue;
                                }
                                let iv = img.data()[(ci * 5 + iy as usize) * 5 + ix as usize];
                                let wv = w.at(&[co, (ci * 3 + ky) * 3 + kx]);
                                acc += iv * wv;
                            }
                        }
                    }
                    let got = out.at(&[co, oy * ow + ox]);
                    assert!((got - acc).abs() < 1e-4, "mismatch at {co},{oy},{ox}");
                }
            }
        }
    }

    #[test]
    fn col2im_roundtrip_counts_overlaps() {
        // With kernel 1 / stride 1 / no padding col2im must be the exact
        // inverse scatter of im2col.
        let g = Conv2dGeometry {
            in_channels: 2,
            out_channels: 1,
            kernel: 1,
            stride: 1,
            padding: 0,
            in_h: 3,
            in_w: 3,
        };
        let img: Vec<f32> = (0..18).map(|x| x as f32).collect();
        let col = im2col(&img, &g);
        let mut back = vec![0.0f32; 18];
        col2im(&col, &g, &mut back);
        assert_eq!(back, img);
    }

    #[test]
    fn col2im_accumulates_overlapping_windows() {
        // kernel 2, stride 1 on a 3-wide row: centre pixel is visited twice.
        let g = Conv2dGeometry {
            in_channels: 1,
            out_channels: 1,
            kernel: 2,
            stride: 1,
            padding: 0,
            in_h: 2,
            in_w: 3,
        };
        let ones = Tensor::ones(&[g.col_rows(), g.col_cols()]);
        let mut img = vec![0.0f32; 6];
        col2im(&ones, &g, &mut img);
        // Visit counts: corners 1, edge-centres 2 (2x3 input, 2x2 kernel -> 1x2 outputs).
        assert_eq!(img, vec![1.0, 2.0, 1.0, 1.0, 2.0, 1.0]);
    }
}
