//! The end-to-end A2C training loop with the paper's hyper-parameters.

use crate::a2c::{a2c_losses, A2cConfig, LossStats};
use crate::agent::ActorCritic;
use crate::distill::DistillConfig;
use crate::eval::{evaluate, EvalProtocol};
use crate::optim::{clip_grad_norm, LrSchedule, Optimizer, RmsProp};
use crate::rollout::{EnvFactory, RolloutRunner};
use a3cs_envs::wrappers::{ClipReward, EpisodeLimit};
use a3cs_envs::Environment;
use a3cs_tensor::Tape;

/// Training-loop configuration. Defaults follow the paper's settings
/// (RMSProp at `1e-3` decaying linearly to `1e-4`, `γ = 0.99`, rollout
/// length 5, sign-clipped training rewards, 30-episode evaluations),
/// scaled to the reproduction's step budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Parallel environments (synchronous A2C lanes).
    pub n_envs: usize,
    /// Rollout length `L` (paper: 5).
    pub rollout_len: usize,
    /// Total environment steps of training.
    pub total_steps: u64,
    /// Initial learning rate (paper: 1e-3).
    pub initial_lr: f32,
    /// Final learning rate after linear decay (paper: 1e-4).
    pub final_lr: f32,
    /// Fraction of training at constant LR before decay (paper: 1/3).
    pub constant_lr_fraction: f32,
    /// A2C objective settings (γ, value/entropy weights).
    pub a2c: A2cConfig,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
    /// Sign-clip rewards during training (standard Atari practice).
    pub clip_rewards: bool,
    /// Cap on training-episode length.
    pub episode_cap: usize,
    /// Evaluate every this many environment steps.
    pub eval_every: u64,
    /// Episodes per evaluation (paper: 30).
    pub eval_episodes: usize,
    /// Null-op start maximum for evaluations.
    pub eval_noop_max: usize,
    /// Step cap per evaluation episode.
    pub eval_max_steps: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            n_envs: 4,
            rollout_len: 5,
            total_steps: 20_000,
            initial_lr: 1e-3,
            final_lr: 1e-4,
            constant_lr_fraction: 1.0 / 3.0,
            a2c: A2cConfig::default(),
            max_grad_norm: 1.0,
            clip_rewards: true,
            episode_cap: 400,
            eval_every: 2_000,
            eval_episodes: 30,
            eval_noop_max: 8,
            eval_max_steps: 400,
        }
    }
}

/// Score trajectory of one training run: `(env_steps, mean_score)` points
/// plus summary statistics. This is the raw material of the paper's
/// Fig. 1 / Fig. 2 curves and Table I/II cells.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainingCurve {
    /// `(environment steps, evaluation score)` samples in step order.
    pub points: Vec<(u64, f32)>,
    /// Mean training loss diagnostics over the run.
    pub final_stats: LossStats,
}

impl TrainingCurve {
    /// Highest evaluation score seen (the paper's Table I metric).
    #[must_use]
    pub fn best_score(&self) -> f32 {
        self.points
            .iter()
            .map(|&(_, s)| s)
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Final evaluation score.
    #[must_use]
    pub fn final_score(&self) -> f32 {
        self.points.last().map_or(f32::NEG_INFINITY, |&(_, s)| s)
    }
}

/// Drives A2C training of an [`ActorCritic`] on one game.
pub struct Trainer {
    config: TrainerConfig,
    seed: u64,
}

impl Trainer {
    /// Create a trainer.
    #[must_use]
    pub fn new(config: TrainerConfig, seed: u64) -> Self {
        Trainer { config, seed }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Train `agent` on environments from `factory`. When
    /// `distillation = Some((config, teacher))`, the corresponding
    /// distillation terms are added to the objective (Eq. 12).
    ///
    /// Returns the evaluation-score curve.
    pub fn train(
        &mut self,
        agent: &ActorCritic,
        factory: &EnvFactory<'_>,
        distillation: Option<(&DistillConfig, &ActorCritic)>,
    ) -> TrainingCurve {
        let cfg = self.config;
        let schedule = LrSchedule {
            initial_lr: cfg.initial_lr,
            final_lr: cfg.final_lr,
            constant_steps: (cfg.total_steps as f32 * cfg.constant_lr_fraction) as u64,
            total_steps: cfg.total_steps,
        };
        let mut optimizer = RmsProp::new(cfg.initial_lr);
        let params = agent.params();

        // Training environments: clipped rewards, capped episodes.
        let clip = cfg.clip_rewards;
        let cap = cfg.episode_cap;
        let train_factory = move |seed: u64| -> Box<dyn Environment> {
            let env = factory(seed);
            if clip {
                Box::new(EpisodeLimit::new(ClipReward::new(env), cap))
            } else {
                Box::new(EpisodeLimit::new(env, cap))
            }
        };
        let mut runner = RolloutRunner::new(&train_factory, cfg.n_envs, self.seed);

        let (distill_cfg, teacher) = match distillation {
            Some((d, t)) => (*d, Some(t)),
            None => (DistillConfig::default(), None),
        };

        let mut curve = TrainingCurve::default();
        let mut steps: u64 = 0;
        let mut next_eval = cfg.eval_every.min(cfg.total_steps);
        let mut last_stats = LossStats::default();

        while steps < cfg.total_steps {
            let rollout = runner.collect(agent, cfg.rollout_len);
            steps += rollout.transitions() as u64;

            let tape = Tape::new();
            agent.zero_grad();
            let (loss, stats) =
                a2c_losses(&tape, agent, &rollout, &cfg.a2c, &distill_cfg, teacher);
            loss.backward();
            let _ = clip_grad_norm(&params, cfg.max_grad_norm);
            optimizer.set_lr(schedule.at(steps));
            optimizer.step(&params);
            last_stats = stats;

            if steps >= next_eval {
                let protocol = EvalProtocol {
                    episodes: cfg.eval_episodes,
                    noop_max: cfg.eval_noop_max,
                    max_steps: cfg.eval_max_steps,
                    seed: self.seed ^ steps,
                    greedy: false,
                };
                let score = evaluate(agent, factory, &protocol);
                curve.points.push((steps, score));
                next_eval += cfg.eval_every;
            }
        }
        if curve.points.is_empty() {
            let protocol = EvalProtocol {
                episodes: cfg.eval_episodes,
                noop_max: cfg.eval_noop_max,
                max_steps: cfg.eval_max_steps,
                seed: self.seed,
                greedy: false,
            };
            curve.points.push((steps, evaluate(agent, factory, &protocol)));
        }
        curve.final_stats = last_stats;
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_envs::{Atlantis, Environment};
    use a3cs_nn::vanilla;

    fn agent(planes: usize, actions: usize, seed: u64) -> ActorCritic {
        let backbone = vanilla(planes, 12, 12, 16, seed);
        ActorCritic::new(Box::new(backbone), 16, (planes, 12, 12), actions, seed)
    }

    fn atlantis(seed: u64) -> Box<dyn Environment> {
        Box::new(Atlantis::new(seed))
    }

    #[test]
    fn short_training_run_completes() {
        let a = agent(3, 4, 1);
        let cfg = TrainerConfig {
            total_steps: 400,
            eval_every: 200,
            eval_episodes: 2,
            eval_max_steps: 60,
            ..TrainerConfig::default()
        };
        let curve = Trainer::new(cfg, 3).train(&a, &atlantis, None);
        assert_eq!(curve.points.len(), 2);
        assert!(curve.best_score() >= curve.points[0].1.min(curve.points[1].1));
        assert!(curve.final_stats.total.is_finite());
    }

    #[test]
    fn training_improves_on_easy_game() {
        // Atlantis is deliberately easy; a few thousand steps should beat
        // the untrained policy's score.
        let a = agent(3, 4, 7);
        let protocol = EvalProtocol {
            episodes: 6,
            max_steps: 150,
            ..EvalProtocol::default()
        };
        let before = evaluate(&a, &atlantis, &protocol);
        let cfg = TrainerConfig {
            total_steps: 6_000,
            eval_every: 6_000,
            eval_episodes: 6,
            eval_max_steps: 150,
            ..TrainerConfig::default()
        };
        let _ = Trainer::new(cfg, 17).train(&a, &atlantis, None);
        let after = evaluate(&a, &atlantis, &protocol);
        assert!(
            after > before,
            "training should improve Atlantis score ({before} -> {after})"
        );
    }

    #[test]
    fn distilled_training_runs() {
        let teacher = agent(3, 4, 21);
        let student = agent(3, 4, 22);
        let cfg = TrainerConfig {
            total_steps: 300,
            eval_every: 300,
            eval_episodes: 2,
            eval_max_steps: 50,
            ..TrainerConfig::default()
        };
        let curve = Trainer::new(cfg, 5).train(
            &student,
            &atlantis,
            Some((&DistillConfig::ac_distillation(), &teacher)),
        );
        assert!(curve.final_stats.actor_distill >= 0.0);
    }
}
