//! Pong: two paddles and a bouncing ball.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::games::clamp;
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;
const PADDLE_HALF: isize = 1;
const PLAYER_COL: isize = GRID as isize - 1;
const OPP_COL: isize = 0;
const WIN_SCORE: i32 = 5;

/// Pong stand-in: the agent controls the right paddle against a scripted
/// opponent that tracks the ball imperfectly. `+1` when the opponent
/// misses, `-1` when the agent misses; first to five points ends the
/// episode, so returns lie in `[-5, 5]`.
///
/// Actions: `0` no-op, `1` up, `2` down.
#[derive(Debug, Clone)]
pub struct Pong {
    rng: StdRng,
    player: isize,
    opponent: isize,
    ball_r: isize,
    ball_c: isize,
    vel_r: isize,
    vel_c: isize,
    player_score: i32,
    opponent_score: i32,
    done: bool,
}

impl Pong {
    /// Create a seeded Pong game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Pong {
            rng: StdRng::seed_from_u64(seed),
            player: GRID as isize / 2,
            opponent: GRID as isize / 2,
            ball_r: 0,
            ball_c: 0,
            vel_r: 1,
            vel_c: 1,
            player_score: 0,
            opponent_score: 0,
            done: true,
        }
    }

    fn serve(&mut self, toward_player: bool) {
        self.ball_r = self.rng.gen_range(3..GRID as isize - 3);
        self.ball_c = GRID as isize / 2;
        self.vel_r = if self.rng.gen_bool(0.5) { 1 } else { -1 };
        self.vel_c = if toward_player { 1 } else { -1 };
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(3, GRID, GRID);
        for d in -PADDLE_HALF..=PADDLE_HALF {
            canvas.paint(0, self.player + d, PLAYER_COL, 1.0);
            canvas.paint(1, self.opponent + d, OPP_COL, 1.0);
        }
        canvas.paint(2, self.ball_r, self.ball_c, 1.0);
        canvas.into_observation()
    }
}

impl Environment for Pong {
    fn name(&self) -> &str {
        "Pong"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (3, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        3
    }

    fn reset(&mut self) -> Vec<f32> {
        self.player = GRID as isize / 2;
        self.opponent = GRID as isize / 2;
        self.player_score = 0;
        self.opponent_score = 0;
        self.done = false;
        let toward_player = self.rng.gen_bool(0.5);
        self.serve(toward_player);
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        let lim = (PADDLE_HALF, GRID as isize - 1 - PADDLE_HALF);
        match action {
            1 => self.player = clamp(self.player - 1, lim.0, lim.1),
            2 => self.player = clamp(self.player + 1, lim.0, lim.1),
            _ => {}
        }

        // Scripted opponent: track the ball with 80% reliability.
        if self.rng.gen_bool(0.8) {
            let delta = (self.ball_r - self.opponent).signum();
            self.opponent = clamp(self.opponent + delta, lim.0, lim.1);
        }

        // Ball motion with top/bottom bounces.
        let mut nr = self.ball_r + self.vel_r;
        let nc = self.ball_c + self.vel_c;
        if nr < 0 || nr >= GRID as isize {
            self.vel_r = -self.vel_r;
            nr = self.ball_r + self.vel_r;
        }

        let mut reward = 0.0f32;
        if nc >= PLAYER_COL {
            if (nr - self.player).abs() <= PADDLE_HALF {
                self.vel_c = -1;
                self.ball_r = nr;
                self.ball_c = PLAYER_COL - 1;
            } else {
                reward -= 1.0;
                self.opponent_score += 1;
                self.serve(false);
            }
        } else if nc <= OPP_COL {
            if (nr - self.opponent).abs() <= PADDLE_HALF {
                self.vel_c = 1;
                self.ball_r = nr;
                self.ball_c = OPP_COL + 1;
            } else {
                reward += 1.0;
                self.player_score += 1;
                self.serve(true);
            }
        } else {
            self.ball_r = nr;
            self.ball_c = nc;
        }

        if self.player_score >= WIN_SCORE || self.opponent_score >= WIN_SCORE {
            self.done = true;
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("Pong");
        w.rng(&self.rng);
        w.isize(self.player);
        w.isize(self.opponent);
        w.isize(self.ball_r);
        w.isize(self.ball_c);
        w.isize(self.vel_r);
        w.isize(self.vel_c);
        w.int(i64::from(self.player_score));
        w.int(i64::from(self.opponent_score));
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "Pong")?;
        self.rng = r.rng()?;
        self.player = r.isize()?;
        self.opponent = r.isize()?;
        self.ball_r = r.isize()?;
        self.ball_c = r.isize()?;
        self.vel_r = r.isize()?;
        self.vel_c = r.isize()?;
        self.player_score = r.i32()?;
        self.opponent_score = r.i32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(Pong::new(11), Pong::new(11), 400);
    }

    #[test]
    fn random_play_is_bounded_per_episode() {
        let mut env = Pong::new(1);
        let _ = env.reset();
        let mut episode_total = 0.0f32;
        loop {
            let out = env.step(0);
            episode_total += out.reward;
            if out.done {
                break;
            }
        }
        assert!((-(WIN_SCORE as f32)..=WIN_SCORE as f32).contains(&episode_total));
    }

    #[test]
    fn tracking_policy_beats_idle_policy() {
        let score = |track: bool, seed: u64| {
            let mut env = Pong::new(seed);
            let mut obs = env.reset();
            let mut total = 0.0;
            for _ in 0..600 {
                let action = if track {
                    let ball_r = obs[2 * GRID * GRID..]
                        .iter()
                        .position(|&v| v > 0.0)
                        .map_or(GRID / 2, |i| i / GRID);
                    match (ball_r as isize).cmp(&env.player) {
                        std::cmp::Ordering::Less => 1,
                        std::cmp::Ordering::Greater => 2,
                        std::cmp::Ordering::Equal => 0,
                    }
                } else {
                    0
                };
                let out = env.step(action);
                total += out.reward;
                obs = if out.done { env.reset() } else { out.observation };
            }
            total
        };
        let tracked: f32 = (0..3).map(|s| score(true, s)).sum();
        let idle: f32 = (0..3).map(|s| score(false, s)).sum();
        assert!(
            tracked > idle,
            "tracking ({tracked}) should beat idling ({idle})"
        );
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = Pong::new(9);
        let _ = random_rollout(&mut env, 800, 3);
    }
}
