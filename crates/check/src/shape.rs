//! Static shape inference over layer descriptors and A3C-S architectures.
//!
//! Propagates `[C, H, W]` symbolically — no tensor is ever allocated —
//! through a [`LayerDesc`] sequence, a derived architecture (cell plan +
//! one [`OpChoice`] per cell), or every candidate operator of a supernet.
//! Mismatches surface as `A3CS-E0xx` diagnostics instead of a `panic!`
//! deep inside a rollout.

use crate::diag::{codes, Diagnostic, Report};
use a3cs_nn::{ConvDims, FeatureShape, LayerDesc, LayerOp};
use a3cs_nas::{OpChoice, SupernetConfig, ALL_OPS};

/// Output side length of a convolution, or `None` when the kernel
/// exceeds the padded input (the unsigned formula would underflow).
fn conv_out(side: usize, kernel: usize, stride: usize, padding: usize) -> Option<usize> {
    let padded = side + 2 * padding;
    if kernel == 0 || stride == 0 || padded < kernel {
        return None;
    }
    Some((padded - kernel) / stride + 1)
}

fn check_conv_dims(
    report: &mut Report,
    name: &str,
    d: &ConvDims,
    depthwise: bool,
    shape: FeatureShape,
) -> Option<FeatureShape> {
    let FeatureShape::Image {
        channels,
        height,
        width,
    } = shape
    else {
        report.push(Diagnostic::error(
            codes::SHAPE_NOT_IMAGE,
            format!("conv `{name}` applied to a flat feature vector"),
        ));
        return None;
    };
    if d.kernel == 0 || d.stride == 0 || d.in_ch == 0 || d.out_ch == 0 {
        report.push(Diagnostic::error(
            codes::SHAPE_ZERO_DIM,
            format!(
                "conv `{name}` has a zero structural parameter \
                 (in {}, out {}, k {}, s {})",
                d.in_ch, d.out_ch, d.kernel, d.stride
            ),
        ));
        return None;
    }
    if channels != d.in_ch {
        report.push(Diagnostic::error(
            codes::SHAPE_INPUT_MISMATCH,
            format!(
                "conv `{name}` expects {} input channels, got {channels}",
                d.in_ch
            ),
        ));
    }
    if depthwise && d.in_ch != d.out_ch {
        report.push(Diagnostic::error(
            codes::SHAPE_INPUT_MISMATCH,
            format!(
                "depthwise conv `{name}` must preserve channels \
                 ({} in vs {} out)",
                d.in_ch, d.out_ch
            ),
        ));
    }
    if (height, width) != (d.in_h, d.in_w) {
        report.push(Diagnostic::error(
            codes::SHAPE_INPUT_MISMATCH,
            format!(
                "conv `{name}` declares a {}x{} input but receives {height}x{width}",
                d.in_h, d.in_w
            ),
        ));
    }
    let out_h = conv_out(d.in_h, d.kernel, d.stride, d.padding);
    let out_w = conv_out(d.in_w, d.kernel, d.stride, d.padding);
    let (Some(out_h), Some(out_w)) = (out_h, out_w) else {
        report.push(Diagnostic::error(
            codes::SHAPE_KERNEL_TOO_LARGE,
            format!(
                "conv `{name}`: kernel {} exceeds padded input \
                 {}x{} (+{} padding)",
                d.kernel, d.in_h, d.in_w, d.padding
            ),
        ));
        return None;
    };
    Some(FeatureShape::image(d.out_ch, out_h, out_w))
}

/// Check a [`LayerDesc`] sequence against `input`, propagating the shape
/// layer by layer.
///
/// Rules: convolutions require an image input whose `[C, H, W]` match the
/// layer's declared dims; fully connected layers accept a flat input of
/// `in_features`, or an image input via an implicit global-average-pool
/// (`channels == in_features`) or flatten (`elements == in_features`) —
/// mirroring how element-wise glue is folded out of descriptors.
#[must_use]
pub fn check_layers(layers: &[LayerDesc], input: FeatureShape) -> Report {
    let mut report = Report::new();
    if input.elements() == 0 {
        report.push(Diagnostic::error(
            codes::SHAPE_ZERO_DIM,
            format!("network input {input:?} has a zero dimension"),
        ));
        return report;
    }
    let mut shape = input;
    for layer in layers {
        let next = match layer.op {
            LayerOp::Conv(d) => check_conv_dims(&mut report, &layer.name, &d, false, shape),
            LayerOp::DepthwiseConv(d) => {
                check_conv_dims(&mut report, &layer.name, &d, true, shape)
            }
            LayerOp::Fc {
                in_features,
                out_features,
            } => {
                if in_features == 0 || out_features == 0 {
                    report.push(Diagnostic::error(
                        codes::SHAPE_ZERO_DIM,
                        format!("fc `{}` has zero features", layer.name),
                    ));
                    None
                } else {
                    let accepted = match shape {
                        FeatureShape::Flat { features } => features == in_features,
                        FeatureShape::Image { channels, .. } => {
                            channels == in_features || shape.elements() == in_features
                        }
                    };
                    if !accepted {
                        report.push(Diagnostic::error(
                            codes::SHAPE_FC_MISMATCH,
                            format!(
                                "fc `{}` expects {in_features} input features, \
                                 got {shape:?}",
                                layer.name
                            ),
                        ));
                    }
                    Some(FeatureShape::Flat {
                        features: out_features,
                    })
                }
            }
        };
        match next {
            // Unrecoverable: the output shape is undefined, stop here.
            None => return report,
            Some(s) => {
                if s.elements() == 0 {
                    report.push(Diagnostic::error(
                        codes::SHAPE_ZERO_DIM,
                        format!("layer `{}` produces an empty {s:?}", layer.name),
                    ));
                    return report;
                }
                shape = s;
            }
        }
    }
    report
}

/// Structural validation shared by [`check_arch`] and [`check_supernet`]:
/// the cell-plan invariants and the head/stem parameters.
fn check_structure(config: &SupernetConfig) -> Report {
    let mut report = Report::new();
    if config.num_cells == 0 || !config.num_cells.is_multiple_of(3) {
        report.push(Diagnostic::error(
            codes::ARCH_BAD_STRUCTURE,
            format!(
                "num_cells must be a positive multiple of 3, got {}",
                config.num_cells
            ),
        ));
    }
    if !(1..=ALL_OPS.len()).contains(&config.top_k) {
        report.push(Diagnostic::error(
            codes::ARCH_BAD_STRUCTURE,
            format!("top_k must be within 1..={}, got {}", ALL_OPS.len(), config.top_k),
        ));
    }
    for (what, value) in [
        ("in_planes", config.in_planes),
        ("height", config.height),
        ("width", config.width),
        ("base_width", config.base_width),
        ("feat_dim", config.feat_dim),
    ] {
        if value == 0 {
            report.push(Diagnostic::error(
                codes::SHAPE_ZERO_DIM,
                format!("supernet {what} is zero"),
            ));
        }
    }
    report
}

/// Symbolic layer descriptors of one candidate operator at `shape`,
/// mirroring `a3cs_nas::build_op` / the modules' `describe` exactly.
fn op_layer_descs(
    choice: OpChoice,
    name: &str,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    shape: FeatureShape,
) -> Vec<LayerDesc> {
    let FeatureShape::Image {
        height: h,
        width: w,
        ..
    } = shape
    else {
        return Vec::new();
    };
    let conv = |n: &str, ic: usize, oc: usize, k: usize, s: usize, p: usize, ih, iw| LayerDesc {
        name: n.to_string(),
        op: LayerOp::Conv(ConvDims {
            in_ch: ic,
            out_ch: oc,
            kernel: k,
            stride: s,
            padding: p,
            in_h: ih,
            in_w: iw,
        }),
    };
    match choice {
        OpChoice::Conv { kernel } => {
            vec![conv(
                &format!("{name}.conv{kernel}"),
                in_ch,
                out_ch,
                kernel,
                stride,
                kernel / 2,
                h,
                w,
            )]
        }
        OpChoice::InvertedResidual { kernel, expansion } => {
            let hidden = in_ch * expansion;
            let mut descs = Vec::new();
            if expansion != 1 {
                descs.push(conv(&format!("{name}.expand"), in_ch, hidden, 1, 1, 0, h, w));
            }
            let (dh, dw_) = (
                conv_out(h, kernel, stride, kernel / 2).unwrap_or(0),
                conv_out(w, kernel, stride, kernel / 2).unwrap_or(0),
            );
            descs.push(LayerDesc {
                name: format!("{name}.dw"),
                op: LayerOp::DepthwiseConv(ConvDims {
                    in_ch: hidden,
                    out_ch: hidden,
                    kernel,
                    stride,
                    padding: kernel / 2,
                    in_h: h,
                    in_w: w,
                }),
            });
            descs.push(conv(&format!("{name}.project"), hidden, out_ch, 1, 1, 0, dh, dw_));
            descs
        }
        OpChoice::Skip => {
            if in_ch == out_ch && stride == 1 {
                Vec::new()
            } else {
                vec![conv(&format!("{name}.skip_proj"), in_ch, out_ch, 1, stride, 0, h, w)]
            }
        }
    }
}

/// Symbolic layer descriptors of the architecture `choices` derives from
/// `config` — the stem, one operator per cell, and the feature head —
/// without instantiating a single weight.
///
/// Returns `Err` with the structural report when the configuration or the
/// choice arity is invalid (shapes cannot even be proposed).
///
/// # Errors
///
/// The invalid-structure [`Report`] (codes `A3CS-E004`/`E006`/`E007`).
pub fn arch_layer_descs(
    config: &SupernetConfig,
    choices: &[OpChoice],
) -> Result<Vec<LayerDesc>, Report> {
    let mut report = check_structure(config);
    if report.is_clean() && choices.len() != config.num_cells {
        report.push(Diagnostic::error(
            codes::ARCH_CHOICE_ARITY,
            format!(
                "need exactly one operator choice per cell: \
                 {} cells, {} choices",
                config.num_cells,
                choices.len()
            ),
        ));
    }
    if !report.is_clean() {
        return Err(report);
    }
    let mut descs = vec![LayerDesc {
        name: "stem".to_string(),
        op: LayerOp::Conv(ConvDims {
            in_ch: config.in_planes,
            out_ch: config.base_width,
            kernel: 3,
            stride: 2,
            padding: 1,
            in_h: config.height,
            in_w: config.width,
        }),
    }];
    let mut shape = descs[0].output_shape();
    for (ci, (&choice, &(in_ch, out_ch, stride))) in
        choices.iter().zip(config.cell_plan().iter()).enumerate()
    {
        let cell = op_layer_descs(choice, &format!("c{ci}.{choice}"), in_ch, out_ch, stride, shape);
        if let Some(last) = cell.last() {
            shape = last.output_shape();
        }
        descs.extend(cell);
    }
    // GlobalAvgPool folds Image{channels} -> Flat{channels}; the fc head
    // consumes head_width features.
    descs.push(LayerDesc {
        name: "head.fc".to_string(),
        op: LayerOp::Fc {
            in_features: config.head_width(),
            out_features: config.feat_dim,
        },
    });
    Ok(descs)
}

/// Statically verify the architecture `choices` derives from `config`:
/// structure, choice arity, then full shape propagation.
#[must_use]
pub fn check_arch(config: &SupernetConfig, choices: &[OpChoice]) -> Report {
    match arch_layer_descs(config, choices) {
        Err(report) => report,
        Ok(descs) => check_layers(
            &descs,
            FeatureShape::image(config.in_planes, config.height, config.width),
        ),
    }
}

/// Statically verify a supernet configuration: structure, then shape
/// propagation through *every* candidate operator of *every* cell (all
/// `9^num_cells` derivable architectures share these per-cell shapes, so
/// this covers each of them without enumeration).
#[must_use]
pub fn check_supernet(config: &SupernetConfig) -> Report {
    let mut report = check_structure(config);
    if !report.is_clean() {
        return report;
    }
    let input = FeatureShape::image(config.in_planes, config.height, config.width);
    for &probe in &ALL_OPS {
        let uniform = vec![probe; config.num_cells];
        match arch_layer_descs(config, &uniform) {
            Err(r) => report.merge(r),
            Ok(descs) => report.merge(check_layers(&descs, input)),
        }
        if !report.is_clean() {
            // One bad operator family is enough to reject; avoid
            // repeating the same mismatch nine times.
            return report;
        }
    }
    report
}

/// Depth (compute-layer count) of the deepest architecture derivable from
/// `config`: stem + three layers per cell (expanded inverted residual) +
/// the fc head. Used to size DAS assignment knobs.
#[must_use]
pub fn max_arch_depth(config: &SupernetConfig) -> usize {
    3 * config.num_cells + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_desc(in_ch: usize, out_ch: usize, k: usize, s: usize, hw: usize) -> LayerDesc {
        LayerDesc {
            name: "t".into(),
            op: LayerOp::Conv(ConvDims {
                in_ch,
                out_ch,
                kernel: k,
                stride: s,
                padding: k / 2,
                in_h: hw,
                in_w: hw,
            }),
        }
    }

    #[test]
    fn valid_chain_is_clean() {
        let layers = vec![conv_desc(3, 8, 3, 2, 12), conv_desc(8, 16, 3, 1, 6)];
        let report = check_layers(&layers, FeatureShape::image(3, 12, 12));
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn channel_mismatch_is_e002() {
        let layers = vec![conv_desc(3, 8, 3, 2, 12), conv_desc(16, 16, 3, 1, 6)];
        let report = check_layers(&layers, FeatureShape::image(3, 12, 12));
        assert!(!report.is_clean());
        assert!(report.has_code(codes::SHAPE_INPUT_MISMATCH), "{report}");
    }

    #[test]
    fn oversized_kernel_is_e003() {
        let mut layer = conv_desc(3, 8, 7, 1, 2);
        if let LayerOp::Conv(d) = &mut layer.op {
            d.padding = 0;
        }
        let report = check_layers(&[layer], FeatureShape::image(3, 2, 2));
        assert!(report.has_code(codes::SHAPE_KERNEL_TOO_LARGE), "{report}");
    }

    #[test]
    fn zero_input_is_e004() {
        let report = check_layers(&[conv_desc(3, 8, 3, 1, 8)], FeatureShape::image(3, 0, 8));
        assert!(report.has_code(codes::SHAPE_ZERO_DIM), "{report}");
    }

    #[test]
    fn fc_mismatch_is_e005_and_gap_fold_is_accepted() {
        let fc = |in_features| LayerDesc {
            name: "fc".into(),
            op: LayerOp::Fc {
                in_features,
                out_features: 10,
            },
        };
        // channels == in_features: implicit global-average-pool, clean.
        let ok = check_layers(
            &[conv_desc(3, 32, 3, 1, 4), fc(32)],
            FeatureShape::image(3, 4, 4),
        );
        assert!(ok.is_clean(), "{ok}");
        // elements == in_features: implicit flatten, clean.
        let flat = check_layers(
            &[conv_desc(3, 32, 3, 1, 4), fc(32 * 16)],
            FeatureShape::image(3, 4, 4),
        );
        assert!(flat.is_clean(), "{flat}");
        let bad = check_layers(
            &[conv_desc(3, 32, 3, 1, 4), fc(33)],
            FeatureShape::image(3, 4, 4),
        );
        assert!(bad.has_code(codes::SHAPE_FC_MISMATCH), "{bad}");
    }

    #[test]
    fn flat_input_to_conv_is_e001() {
        let report = check_layers(
            &[conv_desc(3, 8, 3, 1, 8)],
            FeatureShape::Flat { features: 192 },
        );
        assert!(report.has_code(codes::SHAPE_NOT_IMAGE), "{report}");
    }

    #[test]
    fn tiny_and_paper_supernets_are_clean() {
        for config in [
            SupernetConfig::tiny(3, 12, 12),
            SupernetConfig::paper(4, 12, 12),
        ] {
            let report = check_supernet(&config);
            assert!(report.is_clean(), "{report}");
        }
    }

    #[test]
    fn bad_cell_count_is_e006() {
        let mut config = SupernetConfig::tiny(3, 12, 12);
        config.num_cells = 5;
        let report = check_supernet(&config);
        assert!(report.has_code(codes::ARCH_BAD_STRUCTURE), "{report}");
    }

    #[test]
    fn choice_arity_is_e007() {
        let config = SupernetConfig::tiny(3, 12, 12);
        let report = check_arch(&config, &[OpChoice::Skip]);
        assert!(report.has_code(codes::ARCH_CHOICE_ARITY), "{report}");
    }

    #[test]
    fn arch_descs_match_the_real_derived_backbone() {
        use a3cs_nas::derive_backbone;
        let config = SupernetConfig::tiny(3, 12, 12);
        for &op in &ALL_OPS {
            let choices = vec![op; config.num_cells];
            let symbolic = arch_layer_descs(&config, &choices).expect("valid arch");
            let real = derive_backbone(&config, &choices, 7).layer_descs();
            assert_eq!(symbolic.len(), real.len(), "{op}");
            for (s, r) in symbolic.iter().zip(real.iter()) {
                assert_eq!(s.op, r.op, "{op}");
            }
        }
    }

    #[test]
    fn max_depth_bounds_every_derivable_arch() {
        let config = SupernetConfig::tiny(3, 12, 12);
        for &op in &ALL_OPS {
            let descs =
                arch_layer_descs(&config, &vec![op; config.num_cells]).expect("valid");
            assert!(descs.len() <= max_arch_depth(&config));
        }
    }
}
