//! Live observability plane for the co-search fleet (DESIGN.md §16).
//!
//! Everything built so far — the telemetry spine (PR 4), the supervision
//! layer (PR 6) and the fleet supervisor (PR 8) — is *post-hoc*: state is
//! visible only after a `Trace` is drained or a [`FleetReport`] returned.
//! This crate makes the same signals observable **live**, from outside
//! the process, without perturbing the bit-identical execution guarantee:
//!
//! - [`rollup`]: tick-boundary aggregation into [`ObsSnapshot`]s — per-
//!   phase latency stats from span records, per-session health rollups
//!   (restarts, checkpoint bytes/lag, fault/quarantine/stall counts) from
//!   [`FleetReport`]s, p50/p95/p99 interpolated from the 34-bucket
//!   power-of-two telemetry histograms, all remembered in fixed-size
//!   [`Ring`] windows.
//! - [`expo`]: deterministic wire rendering — Prometheus text format
//!   (`a3cs_*` namespace, HELP/TYPE lines, fixed family order, pinned by
//!   a golden test) and the `/healthz` JSON body.
//! - [`server`]: a zero-dependency `std::net::TcpListener` HTTP responder
//!   serving `/metrics`, `/healthz` and `/fleet`. The [`ObsPublisher`]
//!   (driven by [`Fleet::attach_observer`] or
//!   [`CoSearch::run_guarded_observed`]) prerenders all three bodies at
//!   each tick boundary; the server thread only clones strings, so the
//!   observed run is bit-identical to an unobserved one.
//!
//! ```no_run
//! use a3cs_fleet::{Fleet, FleetConfig};
//! use a3cs_obs::ObsServer;
//!
//! let server = ObsServer::bind_ephemeral().expect("bind");
//! println!("curl http://{}/metrics", server.addr());
//! let mut fleet = Fleet::new(FleetConfig::default());
//! // ... submit sessions ...
//! fleet.attach_observer(Box::new(server.publisher(64)));
//! let report = fleet.run_to_completion();
//! server.shutdown();
//! # let _ = report;
//! ```
//!
//! [`FleetReport`]: a3cs_fleet::FleetReport
//! [`Fleet::attach_observer`]: a3cs_fleet::Fleet::attach_observer
//! [`CoSearch::run_guarded_observed`]: a3cs_core::CoSearch::run_guarded_observed

#![deny(missing_docs)]

pub mod expo;
pub mod ring;
pub mod rollup;
pub mod server;

pub use expo::{prom_name, render_health, render_prometheus};
pub use ring::Ring;
pub use rollup::{
    phase_stats, session_phase_stats, Aggregator, ObsSnapshot, PhaseStats, SessionRollup,
};
pub use server::{solo_report, ObsPublisher, ObsServer};
