//! Table II reproduction: the AC-distillation ablation. For each game,
//! train the Vanilla and ResNet-14 students under (1) no distillation,
//! (2) policy-only distillation and (3) AC-distillation, from a ResNet-20
//! teacher (the paper's setup, Section V-C).
//!
//! Paper claims to reproduce: distillation helps; AC-distillation is the
//! best of the three on most tasks.
//!
//! ```sh
//! A3CS_SCALE=short cargo run --release -p a3cs-bench --bin table2_distillation
//! ```
//!
//! Ablation flags: pass `--beta2-only` or `--beta3-only` to zero the other
//! distillation coefficient inside the AC column (design-choice ablation).

use a3cs_bench::cli::{has_switch, positional};
use a3cs_bench::paper_data::TABLE2;
use a3cs_bench::report::{fmt, or_exit, print_table, save_json, status};
use a3cs_bench::scale::Scale;
use a3cs_bench::setup::{train_backbone, train_teacher};
use a3cs_drl::{DistillConfig, DistillMode};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    game: String,
    student: String,
    none: f32,
    policy_only: f32,
    ac: f32,
}

fn ac_config(args: &[String]) -> DistillConfig {
    let mut cfg = DistillConfig::ac_distillation();
    if has_switch(args, "--beta2-only") {
        cfg.beta3 = 0.0;
    }
    if has_switch(args, "--beta3-only") {
        cfg.beta2 = 0.0;
        cfg.mode = DistillMode::ActorCritic;
    }
    cfg
}

fn main() {
    let scale = or_exit(Scale::try_from_env());
    let args: Vec<String> = std::env::args().skip(1).collect();
    let games: Vec<&'static str> = TABLE2
        .iter()
        .map(|(g, _, _)| *g)
        .filter(|g| {
            let wanted = positional(&args);
            wanted.is_empty() || wanted.iter().any(|f| f == g)
        })
        .collect();
    let ac = ac_config(&args);
    status(format!(
        "Table II: distillation ablation on {games:?} (scale: {}, β2={}, β3={})\n",
        scale.name, ac.beta2, ac.beta3
    ));

    let mut rows = Vec::new();
    let mut dumps = Vec::new();
    for game in games {
        let teacher = or_exit(train_teacher(game, &scale, 9000));
        for student in ["Vanilla", "ResNet-14"] {
            let (_, none) = or_exit(train_backbone(game, student, &scale, None, 50));
            let policy = DistillConfig::policy_only();
            let (_, pol) =
                or_exit(train_backbone(game, student, &scale, Some((&policy, &teacher)), 50));
            let (_, acd) =
                or_exit(train_backbone(game, student, &scale, Some((&ac, &teacher)), 50));
            status(format!(
                "{game:<14} {student:<10} none={:.1} policy={:.1} ac={:.1}",
                none.best_score(),
                pol.best_score(),
                acd.best_score()
            ));
            rows.push(vec![
                game.to_owned(),
                student.to_owned(),
                fmt(f64::from(none.best_score())),
                fmt(f64::from(pol.best_score())),
                fmt(f64::from(acd.best_score())),
            ]);
            dumps.push(Row {
                game: game.to_owned(),
                student: student.to_owned(),
                none: none.best_score(),
                policy_only: pol.best_score(),
                ac: acd.best_score(),
            });
        }
    }

    status("\nmeasured (best evaluation score):\n");
    print_table(
        &["game", "student", "no distill", "policy only", "AC-distill"],
        &rows,
    );

    status("\npaper reference (ALE):\n");
    let mut paper_rows = Vec::new();
    for (g, v, r) in TABLE2 {
        paper_rows.push(vec![
            (*g).to_owned(),
            "Vanilla".to_owned(),
            fmt(v[0]),
            fmt(v[1]),
            fmt(v[2]),
        ]);
        paper_rows.push(vec![
            (*g).to_owned(),
            "ResNet-14".to_owned(),
            fmt(r[0]),
            fmt(r[1]),
            fmt(r[2]),
        ]);
    }
    print_table(
        &["game", "student", "no distill", "policy only", "AC-distill"],
        &paper_rows,
    );

    save_json("table2_distillation", &dumps);
}
