//! Negative fixture: randomness derived from the run seed never fires
//! A3CS-L304.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn roll(seed: u64) -> u8 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen_range(0..6)
}
