//! Structured errors for supernet/architecture construction.

use std::fmt;

/// Why a supernet configuration or derivation request is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NasError {
    /// `num_cells` is not a positive multiple of 3.
    InvalidCellCount {
        /// The offending cell count.
        num_cells: usize,
    },
    /// An operator-choice vector does not match the cell count.
    ChoiceArityMismatch {
        /// Cells in the plan.
        expected: usize,
        /// Choices provided.
        actual: usize,
    },
}

impl fmt::Display for NasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NasError::InvalidCellCount { num_cells } => write!(
                f,
                "num_cells must be a positive multiple of 3 (3 groups), got {num_cells}"
            ),
            NasError::ChoiceArityMismatch { expected, actual } => write!(
                f,
                "need exactly one operator choice per cell: {expected} cells, {actual} choices"
            ),
        }
    }
}

impl std::error::Error for NasError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_the_legacy_substrings() {
        let cell = NasError::InvalidCellCount { num_cells: 5 };
        assert!(cell
            .to_string()
            .contains("num_cells must be a positive multiple of 3 (3 groups)"));
        let arity = NasError::ChoiceArityMismatch {
            expected: 6,
            actual: 1,
        };
        assert!(arity.to_string().contains("one operator choice per cell"));
    }
}
