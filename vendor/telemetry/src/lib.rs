//! Zero-dependency observability for the A3C-S workspace: hierarchical
//! wall-clock **spans**, atomic **metrics** (counters / gauges / fixed-bucket
//! histograms), per-worker **pool stats**, and pluggable **sinks** (in-memory
//! [`TelemetrySummary`], JSONL event stream, Chrome-trace/Perfetto export).
//!
//! Design contract (see DESIGN.md §11):
//!
//! - **Observe-only.** Nothing recorded here may feed back into computation.
//!   Timing, counters and the event stream are strictly outputs; checkpoints
//!   never capture them, so a run resumes bit-identically whether telemetry
//!   was on or off.
//! - **Cheap when off.** Recording is gated on one process-global
//!   `AtomicBool`; with telemetry disabled every probe costs ~one relaxed
//!   atomic load and touches no clock, no lock and no allocation.
//! - **Thread-aware.** The current span is thread-local; the thread pool
//!   re-parents queued tasks onto the span that forked them (via
//!   [`current_span_id`] + [`with_parent_span`]), so work done by pool
//!   workers attributes to the phase that requested it.
//! - **Lock-free hot path.** While a span is open on a thread, its records
//!   buffer thread-locally and flush to the global collector only when the
//!   outermost span (or the worker's adopted region) closes — recording
//!   inside a supervised phase never contends on the collector mutex.
//!
//! Telemetry is process-global state. The intended lifecycle is one
//! [`Session`] per run: `Session::start()` resets and enables collection,
//! `Session::finish()` disables it and drains the collected [`Trace`], which
//! can then be exported through any [`Sink`].

mod metrics;
mod stream;
mod summary;
mod trace;

pub use metrics::{
    all_counters, all_gauges, all_histograms, metrics_snapshot, quantile_from_counts, Counter,
    CounterSample, Gauge, GaugeSample,
    Histogram, HistogramSample, MetricsSnapshot, CHECKPOINT_BYTES, CHECKPOINT_BYTES_HIST,
    CHECKPOINT_BYTES_WRITTEN, CHECKPOINT_COMPACTIONS, CHECKPOINT_COMPRESSION_RATIO,
    CHECKPOINT_DELTA_BYTES, CHECKPOINT_DELTA_FRAMES, CHECKPOINT_RESTORES,
    CHECKPOINT_SCRUB_QUARANTINED, CHECKPOINT_SCRUB_RUNS, CONV_MACS, ENV_STEPS, EVAL_EPISODES,
    EVAL_STEPS, GEMM_CALLS, GEMM_MACS, GEMM_MACS_HIST, LOSS_DISTILL_ACTOR, LOSS_DISTILL_CRITIC,
    LOSS_TOTAL, MEMO_CHUNK_HITS, MEMO_EVALS_SAVED, MEMO_EVICTIONS, MEMO_HITS, MEMO_MISSES,
    POOL_TASKS, ROLLBACK_COUNT, HISTOGRAM_BUCKETS,
};
pub use stream::{record_lines, StreamingJsonl};
pub use summary::{PhaseStat, TelemetrySummary};
pub use trace::{
    ChromeTraceSink, InstantRecord, JsonlSink, MemorySink, Payload, Record, Sink, SpanRecord,
    Trace,
};

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Process-global enable flag; every probe gates on one relaxed load of it.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Monotonic span-id source (0 is reserved / never issued).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Dense per-process thread tags, assigned on a thread's first record.
static NEXT_THREAD_TAG: AtomicU64 = AtomicU64::new(0);
/// Closed spans and instant events, in completion order.
static COLLECTOR: Mutex<Vec<Record>> = Mutex::new(Vec::new());
/// Collection generation, bumped by [`reset`]. Thread-local buffers stamped
/// with an older generation are stale (their session is over) and are
/// discarded on next use instead of leaking into the new session.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Records buffered on one thread while a span is open there.
struct LocalBuf {
    generation: u64,
    records: Vec<Record>,
}

thread_local! {
    /// Innermost open span on this thread (what new spans parent to).
    static CURRENT_SPAN: Cell<Option<u64>> = const { Cell::new(None) };
    /// Fleet session id every record on this thread is tagged with.
    static CURRENT_SESSION: Cell<Option<u64>> = const { Cell::new(None) };
    /// Supervised-retry attempt every record on this thread is tagged with.
    static CURRENT_RETRY: Cell<Option<u32>> = const { Cell::new(None) };
    /// Dense thread tag, lazily assigned (u64::MAX = unassigned).
    static THREAD_TAG: Cell<u64> = const { Cell::new(u64::MAX) };
    /// Per-thread record buffer: while a span is open on this thread,
    /// records accumulate here (no global lock on the hot path) and flush
    /// to [`COLLECTOR`] when the outermost span closes.
    static LOCAL_BUF: RefCell<LocalBuf> = const {
        RefCell::new(LocalBuf { generation: 0, records: Vec::new() })
    };
}

/// Acquire a mutex, recovering from poisoning (records are append-only, so a
/// panicking recorder never leaves a broken invariant behind).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Is telemetry collection currently enabled? One relaxed atomic load.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable collection without resetting previously collected data.
pub fn enable() {
    // Pin the clock epoch before the first record so timestamps are
    // monotonic from here on.
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disable collection. Already-collected data stays until [`drain`]/[`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clear all collected records and zero every metric and pool slot.
/// Thread-local buffers elsewhere become stale (their generation no longer
/// matches) and are discarded on next use.
pub fn reset() {
    GENERATION.fetch_add(1, Ordering::Relaxed);
    LOCAL_BUF.with(|buf| buf.borrow_mut().records.clear());
    lock(&COLLECTOR).clear();
    metrics::reset_all();
    reset_pool();
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide telemetry epoch.
#[must_use]
pub fn now_ns() -> u64 {
    let nanos = epoch().elapsed().as_nanos();
    u64::try_from(nanos).unwrap_or(u64::MAX)
}

/// Dense tag identifying the calling thread in trace records.
#[must_use]
pub fn thread_tag() -> u64 {
    THREAD_TAG.with(|t| {
        let v = t.get();
        if v != u64::MAX {
            return v;
        }
        let v = NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// Route a record: buffered per-thread while a span is open here (flushed
/// at outermost span exit), straight to the global collector otherwise.
pub(crate) fn push_record(record: Record) {
    if current_span_id().is_some() {
        buffer_record(record);
    } else {
        let mut collector = lock(&COLLECTOR);
        stream::publish(std::slice::from_ref(&record));
        collector.push(record);
    }
}

/// Append to this thread's buffer, discarding stale records from a
/// previous collection generation first.
fn buffer_record(record: Record) {
    let generation = GENERATION.load(Ordering::Relaxed);
    LOCAL_BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        if buf.generation != generation {
            buf.records.clear();
            buf.generation = generation;
        }
        buf.records.push(record);
    });
}

/// Move this thread's buffered records into the global collector (in
/// order). Stale buffers from a previous generation are dropped instead.
fn flush_local() {
    let generation = GENERATION.load(Ordering::Relaxed);
    let records = LOCAL_BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        if buf.generation != generation {
            buf.records.clear();
            buf.generation = generation;
            return Vec::new();
        }
        std::mem::take(&mut buf.records)
    });
    if !records.is_empty() {
        let mut collector = lock(&COLLECTOR);
        stream::publish(&records);
        collector.extend(records);
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII guard for an open span; the span record is committed on drop.
///
/// Not `Send`: a guard must be dropped on the thread that opened it (it
/// restores that thread's current-span slot).
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    _not_send: PhantomData<*const ()>,
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    payload: Payload,
    begin_ns: u64,
    prev: Option<u64>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let end_ns = now_ns();
        CURRENT_SPAN.with(|c| c.set(active.prev));
        buffer_record(Record::Span(SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            tid: thread_tag(),
            begin_ns: active.begin_ns,
            end_ns,
            payload: active.payload,
        }));
        // Outermost span on this thread: publish everything it buffered.
        if active.prev.is_none() {
            flush_local();
        }
    }
}

/// Payload for a new record: the explicit argument plus the ambient
/// session/retry scope of the calling thread.
fn ambient_payload(arg: Option<u64>) -> Payload {
    Payload { arg, session: current_session(), retry: current_retry() }
}

fn open_span(name: &'static str, arg: Option<u64>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None, _not_send: PhantomData };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT_SPAN.with(|c| c.replace(Some(id)));
    SpanGuard {
        active: Some(ActiveSpan {
            id,
            parent: prev,
            name,
            payload: ambient_payload(arg),
            begin_ns: now_ns(),
            prev,
        }),
        _not_send: PhantomData,
    }
}

/// Open a span named `name`, parented to the innermost open span on this
/// thread. Returns a no-op guard when telemetry is disabled.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    open_span(name, None)
}

/// Like [`span`], with an attached integer argument (e.g. iteration index).
#[must_use]
pub fn span_with(name: &'static str, arg: u64) -> SpanGuard {
    open_span(name, Some(arg))
}

/// `span!("name")` / `span!("name", arg)` — sugar for [`span`]/[`span_with`].
/// Bind the result: `let _guard = telemetry::span!("rollout");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $arg:expr) => {
        $crate::span_with($name, $arg)
    };
}

/// Id of the innermost open span on this thread, if any.
#[must_use]
pub fn current_span_id() -> Option<u64> {
    CURRENT_SPAN.with(Cell::get)
}

/// Fleet session id the calling thread's records are currently tagged with.
#[must_use]
pub fn current_session() -> Option<u64> {
    CURRENT_SESSION.with(Cell::get)
}

/// Supervised-retry attempt the calling thread's records are currently
/// tagged with.
#[must_use]
pub fn current_retry() -> Option<u32> {
    CURRENT_RETRY.with(Cell::get)
}

/// The ambient record-tagging state of one thread: the span new records
/// parent to, plus the session/retry tags they carry. Capture it with
/// [`current_scope`] before handing work to another thread and reinstate it
/// there with [`with_scope`], so pool workers attribute their records to
/// the forking phase *and* its fleet session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Scope {
    /// Span new records parent to.
    pub parent: Option<u64>,
    /// Fleet session id records are tagged with.
    pub session: Option<u64>,
    /// Supervised-retry attempt records are tagged with.
    pub retry: Option<u32>,
}

impl Scope {
    /// Does reinstating this scope change anything on a fresh thread?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_none() && self.session.is_none() && self.retry.is_none()
    }
}

/// The calling thread's current tagging scope.
#[must_use]
pub fn current_scope() -> Scope {
    Scope { parent: current_span_id(), session: current_session(), retry: current_retry() }
}

/// Run `f` with the thread's tagging scope replaced by `scope`, restoring
/// the previous scope afterwards, including on unwind. When the previous
/// scope had no open span, the adopted region's buffered records are
/// published on exit (a panicking task loses no records).
pub fn with_scope<R>(scope: Scope, f: impl FnOnce() -> R) -> R {
    struct Restore(Scope);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            CURRENT_SPAN.with(|c| c.set(prev.parent));
            CURRENT_SESSION.with(|c| c.set(prev.session));
            CURRENT_RETRY.with(|c| c.set(prev.retry));
            // A pool worker's adopted region ends here: publish whatever it
            // buffered (runs on unwind too, so a panicking task loses no
            // records).
            if prev.parent.is_none() {
                flush_local();
            }
        }
    }
    let prev = current_scope();
    CURRENT_SPAN.with(|c| c.set(scope.parent));
    CURRENT_SESSION.with(|c| c.set(scope.session));
    CURRENT_RETRY.with(|c| c.set(scope.retry));
    let _restore = Restore(prev);
    f()
}

/// Run `f` with this thread's current span set to `parent` (typically
/// captured on another thread via [`current_span_id`] before handing work to
/// a pool), leaving the session/retry tags unchanged. Restores the previous
/// current span afterwards, including on unwind.
pub fn with_parent_span<R>(parent: Option<u64>, f: impl FnOnce() -> R) -> R {
    with_scope(Scope { parent, session: current_session(), retry: current_retry() }, f)
}

/// Run `f` with every record the calling thread produces tagged with the
/// given fleet session id. Restores the previous tag afterwards, including
/// on unwind.
pub fn with_session<R>(session: Option<u64>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<u64>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            CURRENT_SESSION.with(|c| c.set(prev));
        }
    }
    let prev = CURRENT_SESSION.with(|c| c.replace(session));
    let _restore = Restore(prev);
    f()
}

/// Run `f` with every record the calling thread produces tagged with the
/// given supervised-retry attempt. Restores the previous tag afterwards,
/// including on unwind.
pub fn with_retry<R>(retry: Option<u32>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<u32>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            CURRENT_RETRY.with(|c| c.set(prev));
        }
    }
    let prev = CURRENT_RETRY.with(|c| c.replace(retry));
    let _restore = Restore(prev);
    f()
}

/// Record an instant event (a point in time with a free-form detail string),
/// e.g. a robustness event mirrored from the co-search loop. No-op (and no
/// allocation) when telemetry is disabled.
pub fn instant(name: &'static str, detail: &str) {
    if !enabled() {
        return;
    }
    push_record(Record::Instant(InstantRecord {
        name,
        detail: detail.to_string(),
        tid: thread_tag(),
        at_ns: now_ns(),
        payload: ambient_payload(None),
    }));
}

// ---------------------------------------------------------------------------
// Pool worker stats
// ---------------------------------------------------------------------------

/// Number of tracked pool lanes (lane 0 is the forking caller; lanes 1.. are
/// pool workers). Work on lanes beyond this folds into the last slot.
pub const MAX_POOL_LANES: usize = 64;

struct PoolSlot {
    busy_ns: AtomicU64,
    tasks: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const POOL_SLOT_INIT: PoolSlot = PoolSlot { busy_ns: AtomicU64::new(0), tasks: AtomicU64::new(0) };
static POOL: [PoolSlot; MAX_POOL_LANES] = [POOL_SLOT_INIT; MAX_POOL_LANES];

/// Busy time and task count attributed to one pool execution lane.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolWorkerStats {
    /// Execution lane: 0 = the thread that forked the region, 1.. = workers.
    pub lane: usize,
    /// Total wall-clock time spent executing tasks on this lane.
    pub busy_ns: u64,
    /// Number of tasks this lane executed.
    pub tasks: u64,
}

/// Attribute one executed task (`busy_ns` of wall time) to `lane`.
/// No-op when telemetry is disabled.
pub fn record_pool_task(lane: usize, busy_ns: u64) {
    if !enabled() {
        return;
    }
    let slot = &POOL[lane.min(MAX_POOL_LANES - 1)];
    slot.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
    slot.tasks.fetch_add(1, Ordering::Relaxed);
    POOL_TASKS.add(1);
}

/// Per-lane pool stats for every lane that executed at least one task.
#[must_use]
pub fn pool_snapshot() -> Vec<PoolWorkerStats> {
    POOL.iter()
        .enumerate()
        .filter_map(|(lane, slot)| {
            let tasks = slot.tasks.load(Ordering::Relaxed);
            if tasks == 0 {
                return None;
            }
            Some(PoolWorkerStats { lane, busy_ns: slot.busy_ns.load(Ordering::Relaxed), tasks })
        })
        .collect()
}

fn reset_pool() {
    for slot in &POOL {
        slot.busy_ns.store(0, Ordering::Relaxed);
        slot.tasks.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Collection lifecycle
// ---------------------------------------------------------------------------

/// Non-destructive snapshot of everything collected so far. Open spans are
/// not included (they commit on guard drop).
#[must_use]
pub fn snapshot() -> Trace {
    flush_local();
    Trace {
        records: lock(&COLLECTOR).clone(),
        metrics: metrics::snapshot_all(),
        pool: pool_snapshot(),
    }
}

/// Take everything collected so far and reset the collector, metrics and
/// pool slots to zero.
#[must_use]
pub fn drain() -> Trace {
    flush_local();
    let records = std::mem::take(&mut *lock(&COLLECTOR));
    let trace = Trace { records, metrics: metrics::snapshot_all(), pool: pool_snapshot() };
    metrics::reset_all();
    reset_pool();
    trace
}

/// RAII handle for one telemetry collection window.
///
/// Telemetry state is process-global; run at most one session at a time
/// (concurrent sessions would interleave their records).
pub struct Session {
    finished: bool,
}

impl Session {
    /// Reset all collected state and enable collection.
    #[must_use]
    pub fn start() -> Session {
        reset();
        enable();
        Session { finished: false }
    }

    /// Disable collection and return everything recorded by this session.
    #[must_use]
    pub fn finish(mut self) -> Trace {
        self.finished = true;
        disable();
        drain()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if !self.finished {
            disable();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Telemetry state is process-global; serialize tests that touch it.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        match GATE.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let _gate = serial();
        reset();
        disable();
        {
            let _s = span!("never");
            instant("no", "event");
            GEMM_MACS.add(10);
            record_pool_task(1, 5);
        }
        let trace = drain();
        assert!(trace.records.is_empty());
        assert_eq!(GEMM_MACS.get(), 0);
        assert!(trace.pool.is_empty());
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let _gate = serial();
        let session = Session::start();
        {
            let _outer = span!("outer", 7);
            let _inner = span!("inner");
        }
        let trace = session.finish();
        let spans: Vec<&SpanRecord> = trace
            .records
            .iter()
            .filter_map(|r| match r {
                Record::Span(s) => Some(s),
                Record::Instant(_) => None,
            })
            .collect();
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].parent, None);
        assert_eq!(spans[1].payload.arg, Some(7));
        assert!(spans[0].begin_ns >= spans[1].begin_ns);
        assert!(spans[0].end_ns <= spans[1].end_ns);
    }

    #[test]
    fn with_parent_span_reparents_and_restores() {
        let _gate = serial();
        let session = Session::start();
        let parent_id;
        {
            let _outer = span!("outer");
            parent_id = current_span_id();
            assert!(parent_id.is_some());
        }
        assert_eq!(current_span_id(), None);
        with_parent_span(parent_id, || {
            let _child = span!("adopted");
            assert_eq!(current_span_id().is_some(), true);
        });
        assert_eq!(current_span_id(), None);
        let trace = session.finish();
        let adopted = trace
            .records
            .iter()
            .find_map(|r| match r {
                Record::Span(s) if s.name == "adopted" => Some(s),
                _ => None,
            })
            .expect("adopted span recorded");
        assert_eq!(adopted.parent, parent_id);
    }

    #[test]
    fn session_finish_drains_and_disables() {
        let _gate = serial();
        let session = Session::start();
        ENV_STEPS.add(3);
        instant("note", "hello");
        let trace = session.finish();
        assert!(!enabled());
        assert_eq!(trace.metrics.counter("env.steps"), 3);
        assert_eq!(trace.records.len(), 1);
        // Collector is empty after the drain.
        assert!(drain().records.is_empty());
        assert_eq!(ENV_STEPS.get(), 0);
    }

    #[test]
    fn records_buffer_until_the_outermost_span_closes() {
        let _gate = serial();
        let session = Session::start();
        {
            let _outer = span!("outer");
            instant("inside", "buffered");
            {
                let _inner = span!("inner");
            }
            // Everything so far is thread-local: the collector is empty.
            assert!(lock(&COLLECTOR).is_empty());
        }
        // Outermost span closed: the buffer flushed in completion order.
        assert_eq!(lock(&COLLECTOR).len(), 3);
        let trace = session.finish();
        let names: Vec<&str> = trace
            .records
            .iter()
            .map(|r| match r {
                Record::Span(s) => s.name,
                Record::Instant(i) => i.name,
            })
            .collect();
        assert_eq!(names, vec!["inside", "inner", "outer"]);
    }

    #[test]
    fn stale_buffers_are_discarded_across_sessions() {
        let _gate = serial();
        let session = Session::start();
        let guard = span!("left-open");
        instant("stale", "from the old session");
        drop(session);
        // A new session must not inherit the old session's buffered
        // records.
        let session = Session::start();
        drop(guard);
        let trace = session.finish();
        assert!(
            trace.records.iter().all(|r| !matches!(r, Record::Instant(i) if i.name == "stale")),
            "stale buffered records leaked into the new session"
        );
    }

    #[test]
    fn session_and_retry_scopes_tag_records_and_restore() {
        let _gate = serial();
        let session = Session::start();
        with_session(Some(3), || {
            assert_eq!(current_session(), Some(3));
            let _outer = span!("scoped", 11);
            instant("tagged", "inside session 3");
            with_retry(Some(2), || {
                let _inner = span!("retried");
            });
            assert_eq!(current_retry(), None);
        });
        assert_eq!(current_session(), None);
        instant("untagged", "outside any scope");
        let trace = session.finish();
        let span_of = |name: &str| {
            trace
                .spans()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("span {name} recorded"))
                .clone()
        };
        assert_eq!(span_of("scoped").payload, Payload { arg: Some(11), session: Some(3), retry: None });
        assert_eq!(span_of("retried").payload, Payload { arg: None, session: Some(3), retry: Some(2) });
        let instant_of = |name: &str| {
            trace
                .instants()
                .find(|i| i.name == name)
                .unwrap_or_else(|| panic!("instant {name} recorded"))
                .clone()
        };
        assert_eq!(instant_of("tagged").payload.session, Some(3));
        assert_eq!(instant_of("untagged").payload, Payload::default());
    }

    #[test]
    fn with_scope_reinstates_all_three_tags() {
        let _gate = serial();
        let session = Session::start();
        let scope;
        {
            let _outer = span!("forking");
            scope = with_session(Some(5), current_scope);
            assert_eq!(scope.session, Some(5));
            assert!(scope.parent.is_some());
        }
        with_scope(scope, || {
            assert_eq!(current_span_id(), scope.parent);
            assert_eq!(current_session(), Some(5));
            let _child = span!("adopted");
        });
        assert!(current_scope().is_empty());
        let trace = session.finish();
        let adopted = trace.spans().find(|s| s.name == "adopted").expect("adopted recorded");
        assert_eq!(adopted.parent, scope.parent);
        assert_eq!(adopted.payload.session, Some(5));
    }

    /// `Write` sink backed by shared memory, for stream assertions.
    struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            lock(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streaming_jsonl_flushes_at_outermost_span_exit() {
        let _gate = serial();
        let bytes = std::sync::Arc::new(Mutex::new(Vec::new()));
        let session = Session::start();
        let stream = StreamingJsonl::attach(Box::new(SharedBuf(bytes.clone())));
        {
            let _outer = span!("outer", 1);
            instant("buffered", "waiting for span exit");
            // Buffered: nothing reaches the stream while the span is open.
            assert!(lock(&bytes).is_empty());
        }
        // Outermost span closed: both records streamed immediately, well
        // before Session::finish.
        let streamed_early = String::from_utf8(lock(&bytes).clone()).expect("utf8");
        assert_eq!(streamed_early.lines().count(), 2);
        instant("direct", "no span open: streams immediately");
        stream.detach();
        instant("after-detach", "not streamed");
        let trace = session.finish();
        let streamed = String::from_utf8(lock(&bytes).clone()).expect("utf8");
        // Streamed lines are a byte-identical prefix of the drained
        // trace's record lines (minus the post-detach record).
        let all_lines = record_lines(&trace);
        assert!(all_lines.starts_with(&streamed), "streamed:\n{streamed}\nall:\n{all_lines}");
        assert_eq!(streamed.lines().count(), 3);
        assert!(streamed.contains("\"direct\""));
        assert!(!streamed.contains("after-detach"));
    }

    #[test]
    fn pool_stats_attribute_to_lanes() {
        let _gate = serial();
        let session = Session::start();
        record_pool_task(0, 100);
        record_pool_task(2, 50);
        record_pool_task(2, 25);
        let trace = session.finish();
        assert_eq!(
            trace.pool,
            vec![
                PoolWorkerStats { lane: 0, busy_ns: 100, tasks: 1 },
                PoolWorkerStats { lane: 2, busy_ns: 75, tasks: 2 },
            ]
        );
        assert_eq!(trace.metrics.counter("pool.tasks"), 3);
    }
}
