//! Fig. 1 reproduction: test-score evolution during training for the five
//! hand-designed backbones (Vanilla, ResNet-14/20/38/74) on four games.
//!
//! Paper claim to reproduce (Section V-B): larger networks generally reach
//! higher scores within the same budget, but each task has an optimal
//! size — the largest network (ResNet-74) trains poorly within the budget.
//!
//! ```sh
//! A3CS_SCALE=short cargo run --release -p a3cs-bench --bin fig1_training_curves
//! ```

use a3cs_bench::paper_data::CURVE_GAMES;
use a3cs_bench::report::{fmt, or_exit, print_table, save_json, status};
use a3cs_bench::scale::Scale;
use a3cs_bench::setup::{train_backbone, BACKBONES};
use serde::Serialize;

#[derive(Serialize)]
struct CurveDump {
    game: &'static str,
    backbone: String,
    points: Vec<(u64, f32)>,
}

fn main() {
    let scale = or_exit(Scale::try_from_env());
    status(format!(
        "Fig. 1: training curves of {} backbones on {:?} (scale: {})\n",
        BACKBONES.len(),
        CURVE_GAMES,
        scale.name
    ));

    let mut dumps = Vec::new();
    let mut rows = Vec::new();
    for &game in CURVE_GAMES {
        for kind in BACKBONES {
            let (_, curve) = or_exit(train_backbone(game, kind, &scale, None, 1234));
            status(format!(
                "{game:<14} {kind:<10} curve: {}",
                curve
                    .points
                    .iter()
                    .map(|(s, v)| format!("{s}:{v:.0}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
            rows.push(vec![
                game.to_owned(),
                kind.to_owned(),
                fmt(f64::from(curve.best_score())),
                fmt(f64::from(curve.final_score())),
            ]);
            dumps.push(CurveDump {
                game,
                backbone: kind.to_owned(),
                points: curve.points,
            });
        }
        status("");
    }

    status("summary (best / final evaluation scores):\n");
    print_table(&["game", "backbone", "best", "final"], &rows);
    save_json("fig1_training_curves", &dumps);
}
