//! Experiment scale profiles, selected via the `A3CS_SCALE` env var.

/// Step/episode budgets for one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Human name of the profile.
    pub name: &'static str,
    /// Environment steps for training an agent.
    pub train_steps: u64,
    /// Environment steps for a co-search.
    pub search_steps: u64,
    /// Environment steps for training a teacher.
    pub teacher_steps: u64,
    /// Evaluation points along a training curve.
    pub curve_points: u64,
    /// Episodes per evaluation (paper: 30).
    pub eval_episodes: usize,
    /// Step cap per evaluation episode.
    pub eval_max_steps: usize,
    /// DAS iterations for the final accelerator refinement.
    pub das_iters: usize,
}

/// CI-speed profile: everything tiny, only exercises the machinery.
pub const SMOKE: Scale = Scale {
    name: "smoke",
    train_steps: 400,
    search_steps: 400,
    teacher_steps: 400,
    curve_points: 2,
    eval_episodes: 2,
    eval_max_steps: 60,
    das_iters: 120,
};

/// Default profile: minutes per experiment, trends visible.
pub const SHORT: Scale = Scale {
    name: "short",
    train_steps: 4_000,
    search_steps: 4_000,
    teacher_steps: 12_000,
    curve_points: 6,
    eval_episodes: 8,
    eval_max_steps: 150,
    das_iters: 500,
};

/// Report-quality profile (tens of minutes for the big tables).
pub const FULL: Scale = Scale {
    name: "full",
    train_steps: 30_000,
    search_steps: 20_000,
    teacher_steps: 60_000,
    curve_points: 12,
    eval_episodes: 30,
    eval_max_steps: 400,
    das_iters: 2_000,
};

/// An `A3CS_SCALE` value naming no known profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScale(pub String);

impl std::fmt::Display for UnknownScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown A3CS_SCALE {:?}; use smoke|short|full", self.0)
    }
}

impl std::error::Error for UnknownScale {}

impl Scale {
    /// Resolve the profile from `A3CS_SCALE` (default: `short`).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownScale`] on an unrecognised profile name so typos
    /// fail loudly at the call site instead of silently running the
    /// default budget.
    pub fn try_from_env() -> Result<Scale, UnknownScale> {
        match std::env::var("A3CS_SCALE").as_deref() {
            Ok("smoke") => Ok(SMOKE),
            Ok("full") => Ok(FULL),
            Ok("short") | Err(_) => Ok(SHORT),
            Ok(other) => Err(UnknownScale(other.to_string())),
        }
    }

    /// Evaluation cadence producing `curve_points` points over
    /// `total_steps`.
    #[must_use]
    pub fn eval_every(&self, total_steps: u64) -> u64 {
        (total_steps / self.curve_points.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered() {
        assert!(SMOKE.train_steps < SHORT.train_steps);
        assert!(SHORT.train_steps < FULL.train_steps);
    }

    #[test]
    fn eval_every_divides_curve() {
        assert_eq!(SHORT.eval_every(6_000), 1_000);
        assert!(SMOKE.eval_every(1) >= 1);
    }
}
