//! Optimisers (RMSProp, Adam), gradient clipping and the paper's
//! learning-rate schedule.

use a3cs_nn::Param;
use a3cs_tensor::Tensor;

/// A first-order optimiser over a fixed parameter list.
pub trait Optimizer {
    /// Apply one update using each parameter's accumulated gradient, then
    /// zero the gradients.
    fn step(&mut self, params: &[Param]);

    /// Override the learning rate (used by schedules).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Export the optimiser's complete mutable state — moment buffers,
    /// parameter identity keys, and algorithm scalars — so a checkpoint
    /// can resume optimisation bit-exactly.
    fn export_state(&self) -> OptimizerState;

    /// Restore state captured by [`Optimizer::export_state`] on the same
    /// algorithm.
    ///
    /// # Errors
    ///
    /// [`OptimStateError`] when the state was produced by a different
    /// algorithm or its buffers are internally inconsistent; nothing is
    /// modified in that case.
    fn import_state(&mut self, state: &OptimizerState) -> Result<(), OptimStateError>;
}

/// Serialisable snapshot of an optimiser's mutable state.
///
/// The layout is algorithm-agnostic: `slots` holds one buffer per
/// parameter per moment (RMSProp: one slot, the squared-gradient average;
/// Adam: two slots, `m` then `v`) and `scalars` holds algorithm counters
/// (Adam: the running `β1^t`, `β2^t` bias-correction powers).
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerState {
    /// Producing algorithm (`"rmsprop"` or `"adam"`).
    pub kind: String,
    /// Learning rate at capture time.
    pub lr: f32,
    /// `(name, shape)` identity of each tracked parameter, in step order.
    pub keys: Vec<(String, Vec<usize>)>,
    /// `slots[s][i]`: flat data of moment slot `s` for parameter `i`.
    pub slots: Vec<Vec<Vec<f32>>>,
    /// Algorithm scalars (Adam: `[β1^t, β2^t]`; RMSProp: empty).
    pub scalars: Vec<f64>,
}

/// Why an [`OptimizerState`] could not be imported.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimStateError {
    /// The state was produced by a different algorithm.
    KindMismatch {
        /// Algorithm of the importing optimiser.
        expected: &'static str,
        /// Algorithm recorded in the state.
        found: String,
    },
    /// The state's buffers are internally inconsistent (wrong slot or
    /// scalar count, or a buffer that does not match its key's shape).
    Malformed {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl std::fmt::Display for OptimStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimStateError::KindMismatch { expected, found } => {
                write!(f, "optimizer state is for {found:?}, expected {expected:?}")
            }
            OptimStateError::Malformed { detail } => {
                write!(f, "malformed optimizer state: {detail}")
            }
        }
    }
}

impl std::error::Error for OptimStateError {}

/// Validate the cross-buffer invariants shared by both algorithms and
/// rebuild `(keys, per-slot tensors)` from a state.
fn decode_state(
    state: &OptimizerState,
    expected_kind: &'static str,
    expected_slots: usize,
    expected_scalars: usize,
) -> Result<(Vec<ParamKey>, Vec<Vec<Tensor>>), OptimStateError> {
    if state.kind != expected_kind {
        return Err(OptimStateError::KindMismatch {
            expected: expected_kind,
            found: state.kind.clone(),
        });
    }
    if state.slots.len() != expected_slots {
        return Err(OptimStateError::Malformed {
            detail: format!(
                "{} slots, {expected_kind} has {expected_slots}",
                state.slots.len()
            ),
        });
    }
    if state.scalars.len() != expected_scalars {
        return Err(OptimStateError::Malformed {
            detail: format!(
                "{} scalars, {expected_kind} has {expected_scalars}",
                state.scalars.len()
            ),
        });
    }
    let keys: Vec<ParamKey> = state
        .keys
        .iter()
        .map(|(name, shape)| ParamKey {
            name: name.clone(),
            shape: shape.clone(),
        })
        .collect();
    let mut slots = Vec::with_capacity(expected_slots);
    for (si, slot) in state.slots.iter().enumerate() {
        if slot.len() != keys.len() {
            return Err(OptimStateError::Malformed {
                detail: format!(
                    "slot {si} has {} buffers for {} keys",
                    slot.len(),
                    keys.len()
                ),
            });
        }
        let mut tensors = Vec::with_capacity(slot.len());
        for (key, data) in keys.iter().zip(slot) {
            let t = Tensor::from_vec(data.clone(), &key.shape).map_err(|e| {
                OptimStateError::Malformed {
                    detail: format!("buffer for {:?}: {e}", key.name),
                }
            })?;
            tensors.push(t);
        }
        slots.push(tensors);
    }
    Ok((keys, slots))
}

fn encode_keys(keys: &[ParamKey]) -> Vec<(String, Vec<usize>)> {
    keys.iter()
        .map(|k| (k.name.clone(), k.shape.clone()))
        .collect()
}

fn encode_slot(slot: &[Tensor]) -> Vec<Vec<f32>> {
    slot.iter().map(|t| t.data().to_vec()).collect()
}

/// Identity of the parameter an optimiser state slot was created for.
///
/// Moment buffers are only meaningful for the exact parameter they
/// accumulated over, so state is keyed to `(name, shape)` and rebuilt from
/// scratch whenever the parameter list stops matching — a same-length list
/// of different parameters must not silently reuse stale moments.
#[derive(PartialEq, Eq)]
struct ParamKey {
    name: String,
    shape: Vec<usize>,
}

impl ParamKey {
    fn of(p: &Param) -> Self {
        ParamKey {
            name: p.name().to_string(),
            shape: p.shape(),
        }
    }

    fn matches(&self, p: &Param) -> bool {
        self.name == p.name() && self.shape == p.shape()
    }
}

fn keys_match(keys: &[ParamKey], params: &[Param]) -> bool {
    keys.len() == params.len() && keys.iter().zip(params).all(|(k, p)| k.matches(p))
}

/// RMSProp as used for DRL training in the paper (following DQN/A3C
/// practice): squared-gradient moving average, no momentum.
pub struct RmsProp {
    lr: f32,
    alpha: f32,
    eps: f32,
    keys: Vec<ParamKey>,
    square_avg: Vec<Tensor>,
}

impl RmsProp {
    /// Create RMSProp with the paper's defaults (`alpha = 0.99`,
    /// `eps = 1e-5`).
    #[must_use]
    pub fn new(lr: f32) -> Self {
        RmsProp {
            lr,
            alpha: 0.99,
            eps: 1e-5,
            keys: Vec::new(),
            square_avg: Vec::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, params: &[Param]) {
        if !keys_match(&self.keys, params) {
            self.keys = params.iter().map(ParamKey::of).collect();
            self.square_avg = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        }
        let (lr, alpha, eps) = (self.lr, self.alpha, self.eps);
        for (p, s) in params.iter().zip(self.square_avg.iter_mut()) {
            let g = p.grad();
            let gd = g.data();
            if gd.iter().all(|&gi| gi == 0.0) {
                // A tensor the step never touched (e.g. a supernet op off
                // the sampled path) keeps its weights *and* its slot
                // bit-frozen — decaying `square_avg` at g = 0 would dirty
                // every slot word and sink delta-checkpoint sparsity for
                // zero optimisation benefit. The grad stays all-zero, so
                // skipping `zero_grad` is also a no-op.
                continue;
            }
            let sd = s.data_mut();
            // One vectorised pass per tensor: update the moving average and
            // apply the delta element-by-element in a single traversal.
            p.update(|t| {
                for ((tv, si), &gi) in t.data_mut().iter_mut().zip(sd.iter_mut()).zip(gd) {
                    let s_new = alpha * *si + (1.0 - alpha) * gi * gi;
                    *si = s_new;
                    *tv -= lr * gi / (s_new.sqrt() + eps);
                }
            });
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            kind: "rmsprop".to_string(),
            lr: self.lr,
            keys: encode_keys(&self.keys),
            slots: vec![encode_slot(&self.square_avg)],
            scalars: Vec::new(),
        }
    }

    fn import_state(&mut self, state: &OptimizerState) -> Result<(), OptimStateError> {
        let (keys, mut slots) = decode_state(state, "rmsprop", 1, 0)?;
        self.lr = state.lr;
        self.keys = keys;
        self.square_avg = match slots.pop() {
            Some(s) => s,
            None => unreachable!("decode_state guarantees one slot"),
        };
        Ok(())
    }
}

/// Adam, used for the architecture parameters `α` (paper: fixed learning
/// rate `1e-3`, `β1 = 0.9`).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// `β1^t` and `β2^t`, maintained incrementally in `f64` so bias
    /// correction stays exact on arbitrarily long runs (the previous
    /// `powi(step_count as i32)` wrapped once `step_count` exceeded `i32`).
    beta1_pow: f64,
    beta2_pow: f64,
    keys: Vec<ParamKey>,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Create Adam with `β = (0.9, 0.999)`, `eps = 1e-8`.
    #[must_use]
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            beta1_pow: 1.0,
            beta2_pow: 1.0,
            keys: Vec::new(),
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &[Param]) {
        if !keys_match(&self.keys, params) {
            // A different parameter list is a different optimisation
            // problem: reset the moments and the bias-correction clock.
            self.keys = params.iter().map(ParamKey::of).collect();
            self.m = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
            self.v = self.m.clone();
            self.beta1_pow = 1.0;
            self.beta2_pow = 1.0;
        }
        self.beta1_pow *= f64::from(self.beta1);
        self.beta2_pow *= f64::from(self.beta2);
        let bc1 = (1.0 - self.beta1_pow) as f32;
        let bc2 = (1.0 - self.beta2_pow) as f32;
        let (lr, beta1, beta2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        for ((p, m), v) in params.iter().zip(self.m.iter_mut()).zip(self.v.iter_mut()) {
            let g = p.grad();
            let gd = g.data();
            if gd.iter().all(|&gi| gi == 0.0) {
                // Lazy update: tensors with an all-zero grad keep weights,
                // m and v bit-frozen (instead of decaying m and nudging the
                // weights by stale momentum), so delta checkpoints stay
                // sparse. The bias-correction clock above still advances
                // once per step, identically for every tensor.
                continue;
            }
            let md = m.data_mut();
            let vd = v.data_mut();
            // One vectorised pass per tensor over (value, m, v, grad).
            p.update(|t| {
                for (((tv, mi), vi), &gi) in
                    t.data_mut().iter_mut().zip(md.iter_mut()).zip(vd.iter_mut()).zip(gd)
                {
                    let m_new = beta1 * *mi + (1.0 - beta1) * gi;
                    let v_new = beta2 * *vi + (1.0 - beta2) * gi * gi;
                    *mi = m_new;
                    *vi = v_new;
                    let mhat = m_new / bc1;
                    let vhat = v_new / bc2;
                    *tv -= lr * mhat / (vhat.sqrt() + eps);
                }
            });
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            kind: "adam".to_string(),
            lr: self.lr,
            keys: encode_keys(&self.keys),
            slots: vec![encode_slot(&self.m), encode_slot(&self.v)],
            scalars: vec![self.beta1_pow, self.beta2_pow],
        }
    }

    fn import_state(&mut self, state: &OptimizerState) -> Result<(), OptimStateError> {
        let (keys, mut slots) = decode_state(state, "adam", 2, 2)?;
        self.lr = state.lr;
        self.keys = keys;
        self.v = match slots.pop() {
            Some(v) => v,
            None => unreachable!("decode_state guarantees two slots"),
        };
        self.m = match slots.pop() {
            Some(m) => m,
            None => unreachable!("decode_state guarantees two slots"),
        };
        self.beta1_pow = state.scalars[0];
        self.beta2_pow = state.scalars[1];
        Ok(())
    }
}

/// Rescale accumulated gradients so their global L2 norm is at most
/// `max_norm`. Returns the pre-clip norm.
pub fn clip_grad_norm(params: &[Param], max_norm: f32) -> f32 {
    let total: f32 = params.iter().map(|p| p.grad().sq_norm()).sum();
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            p.set_grad(p.grad().scale(scale));
        }
    }
    norm
}

/// The paper's learning-rate schedule: constant for the first
/// `constant_steps`, then linear decay to `final_lr` at `total_steps`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrSchedule {
    /// Initial learning rate (paper: `1e-3`).
    pub initial_lr: f32,
    /// Final learning rate (paper: `1e-4`).
    pub final_lr: f32,
    /// Steps during which the LR stays at `initial_lr` (paper: first third).
    pub constant_steps: u64,
    /// Total training steps.
    pub total_steps: u64,
}

impl LrSchedule {
    /// Learning rate at `step`.
    #[must_use]
    pub fn at(&self, step: u64) -> f32 {
        if step <= self.constant_steps || self.total_steps <= self.constant_steps {
            return self.initial_lr;
        }
        let span = (self.total_steps - self.constant_steps) as f32;
        let progress = ((step - self.constant_steps) as f32 / span).min(1.0);
        self.initial_lr + (self.final_lr - self.initial_lr) * progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_tensor::Tape;

    fn quadratic_step(opt: &mut dyn Optimizer, p: &Param) {
        // loss = (p - 3)^2, minimised at p = 3.
        let tape = Tape::new();
        let v = p.bind(&tape);
        v.add_scalar(-3.0).square().sum().backward();
        opt.step(std::slice::from_ref(p));
    }

    #[test]
    fn rmsprop_minimises_quadratic() {
        let p = Param::new("p", Tensor::scalar(0.0));
        let mut opt = RmsProp::new(0.1);
        for _ in 0..200 {
            quadratic_step(&mut opt, &p);
        }
        assert!((p.value().item() - 3.0).abs() < 0.1, "got {}", p.value().item());
    }

    #[test]
    fn adam_minimises_quadratic() {
        let p = Param::new("p", Tensor::scalar(10.0));
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            quadratic_step(&mut opt, &p);
        }
        assert!((p.value().item() - 3.0).abs() < 0.1, "got {}", p.value().item());
    }

    #[test]
    fn optimizer_step_zeroes_gradients() {
        let p = Param::new("p", Tensor::scalar(1.0));
        let mut opt = RmsProp::new(0.01);
        quadratic_step(&mut opt, &p);
        assert_eq!(p.grad().item(), 0.0);
    }

    /// One quadratic step on `p`, returning how much the value moved.
    fn one_step_delta(opt: &mut dyn Optimizer, p: &Param) -> f32 {
        let before = p.value().item();
        quadratic_step(opt, p);
        p.value().item() - before
    }

    #[test]
    fn rmsprop_resets_state_for_different_same_length_param_list() {
        // Warm up state on parameter "a", then step a *different* parameter
        // of the same length: the step must match a fresh optimiser exactly
        // (stale moment buffers used to be silently reused).
        let mut warm = RmsProp::new(0.1);
        let a = Param::new("a", Tensor::scalar(50.0));
        for _ in 0..5 {
            quadratic_step(&mut warm, &a);
        }
        let b = Param::new("b", Tensor::scalar(0.0));
        let warm_delta = one_step_delta(&mut warm, &b);

        let mut fresh = RmsProp::new(0.1);
        let b2 = Param::new("b", Tensor::scalar(0.0));
        let fresh_delta = one_step_delta(&mut fresh, &b2);
        assert_eq!(warm_delta, fresh_delta);
    }

    #[test]
    fn adam_resets_state_for_different_same_length_param_list() {
        let mut warm = Adam::new(0.2);
        let a = Param::new("a", Tensor::scalar(50.0));
        for _ in 0..5 {
            quadratic_step(&mut warm, &a);
        }
        let b = Param::new("b", Tensor::scalar(0.0));
        let warm_delta = one_step_delta(&mut warm, &b);

        let mut fresh = Adam::new(0.2);
        let b2 = Param::new("b", Tensor::scalar(0.0));
        let fresh_delta = one_step_delta(&mut fresh, &b2);
        assert_eq!(warm_delta, fresh_delta);
    }

    #[test]
    fn optimizer_state_persists_for_matching_param_list() {
        // Same (name, shape) list across steps must keep its moments: the
        // second step of RMSProp on a constant gradient differs from the
        // first only if square_avg persisted.
        let p = Param::new("p", Tensor::scalar(0.0));
        let mut opt = RmsProp::new(0.1);
        let d1 = {
            let before = p.value().item();
            let tape = Tape::new();
            p.bind(&tape).sum().backward(); // grad = 1
            opt.step(std::slice::from_ref(&p));
            p.value().item() - before
        };
        let d2 = {
            let before = p.value().item();
            let tape = Tape::new();
            p.bind(&tape).sum().backward(); // grad = 1 again
            opt.step(std::slice::from_ref(&p));
            p.value().item() - before
        };
        assert_ne!(d1, d2, "state must persist across matching steps");
    }

    #[test]
    fn zero_grad_tensors_stay_bit_frozen() {
        // A param whose gradient is all-zero for a step must keep its value
        // *and* its optimiser slots bit-identical — this is what makes
        // delta checkpoints sparse when the supernet's off-path ops sit a
        // step out. "touched" gets real gradients both steps; "idle" only
        // on the first.
        for mk in [
            (|lr| Box::new(RmsProp::new(lr)) as Box<dyn Optimizer>) as fn(f32) -> _,
            |lr| Box::new(Adam::new(lr)) as Box<dyn Optimizer>,
        ] {
            let mut opt = mk(0.1);
            let touched = Param::new("touched", Tensor::scalar(0.0));
            let idle = Param::new("idle", Tensor::scalar(5.0));
            let params = [touched.clone(), idle.clone()];
            {
                let tape = Tape::new();
                let t = touched.bind(&tape);
                let i = idle.bind(&tape);
                t.add(&i).square().sum().backward();
                opt.step(&params);
            }
            let idle_value = idle.value().item().to_bits();
            let idle_slots = opt.export_state().slots.clone();
            {
                let tape = Tape::new();
                touched.bind(&tape).square().sum().backward(); // idle: g = 0
                opt.step(&params);
            }
            assert_eq!(idle.value().item().to_bits(), idle_value);
            // Slot vectors are (key, tensor) aligned with `params`: every
            // word belonging to "idle" must be unchanged.
            for (before, after) in idle_slots.iter().zip(opt.export_state().slots.iter()) {
                assert_eq!(before[1], after[1], "idle slot must stay bit-frozen");
            }
        }
    }

    #[test]
    fn clip_grad_norm_bounds_large_gradients() {
        let p = Param::new("p", Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap());
        let tape = Tape::new();
        let v = p.bind(&tape);
        v.scale(100.0).sum().backward(); // grad = [100, 100]
        let pre = clip_grad_norm(&[p.clone()], 1.0);
        assert!(pre > 100.0);
        assert!((p.grad().sq_norm().sqrt() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients() {
        let p = Param::new("p", Tensor::scalar(0.0));
        let tape = Tape::new();
        p.bind(&tape).scale(0.5).sum().backward();
        let pre = clip_grad_norm(&[p.clone()], 10.0);
        assert!((pre - 0.5).abs() < 1e-6);
        assert!((p.grad().item() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn rmsprop_state_round_trip_is_bit_exact() {
        // Warm up, export, keep stepping; a fresh optimiser that imports the
        // exported state must produce the identical trajectory.
        let p = Param::new("p", Tensor::scalar(0.0));
        let mut opt = RmsProp::new(0.1);
        for _ in 0..7 {
            quadratic_step(&mut opt, &p);
        }
        let state = opt.export_state();

        let p2 = Param::new("p", p.value().clone());
        let mut resumed = RmsProp::new(0.5); // wrong lr, fixed by import
        resumed.import_state(&state).unwrap();
        for _ in 0..7 {
            quadratic_step(&mut opt, &p);
            quadratic_step(&mut resumed, &p2);
        }
        assert_eq!(p.value().item().to_bits(), p2.value().item().to_bits());
    }

    #[test]
    fn adam_state_round_trip_is_bit_exact() {
        let p = Param::new("p", Tensor::scalar(10.0));
        let mut opt = Adam::new(0.2);
        for _ in 0..7 {
            quadratic_step(&mut opt, &p);
        }
        let state = opt.export_state();
        assert_eq!(state.scalars.len(), 2, "adam exports bias-correction powers");

        let p2 = Param::new("p", p.value().clone());
        let mut resumed = Adam::new(0.9);
        resumed.import_state(&state).unwrap();
        for _ in 0..7 {
            quadratic_step(&mut opt, &p);
            quadratic_step(&mut resumed, &p2);
        }
        assert_eq!(p.value().item().to_bits(), p2.value().item().to_bits());
    }

    #[test]
    fn import_rejects_wrong_kind_and_malformed_state() {
        let p = Param::new("p", Tensor::scalar(0.0));
        let mut rms = RmsProp::new(0.1);
        quadratic_step(&mut rms, &p);
        let state = rms.export_state();

        let mut adam = Adam::new(0.1);
        assert!(matches!(
            adam.import_state(&state),
            Err(OptimStateError::KindMismatch { .. })
        ));

        let mut truncated = state.clone();
        truncated.slots[0].clear();
        let mut fresh = RmsProp::new(0.1);
        assert!(matches!(
            fresh.import_state(&truncated),
            Err(OptimStateError::Malformed { .. })
        ));

        let mut bad_shape = state.clone();
        bad_shape.slots[0][0].push(0.0);
        assert!(matches!(
            fresh.import_state(&bad_shape),
            Err(OptimStateError::Malformed { .. })
        ));
    }

    #[test]
    fn lr_schedule_constant_then_linear() {
        let sched = LrSchedule {
            initial_lr: 1e-3,
            final_lr: 1e-4,
            constant_steps: 100,
            total_steps: 200,
        };
        assert_eq!(sched.at(0), 1e-3);
        assert_eq!(sched.at(100), 1e-3);
        let mid = sched.at(150);
        assert!(mid < 1e-3 && mid > 1e-4);
        assert!((sched.at(200) - 1e-4).abs() < 1e-9);
        assert!((sched.at(10_000) - 1e-4).abs() < 1e-9);
    }
}
