//! The game roster: twenty-one grid-world MDPs named after the Atari titles
//! they stand in for.

mod alien;
mod assault;
mod asteroids;
mod asterix;
mod atlantis;
mod battle_zone;
mod beam_rider;
mod bowling;
mod boxing;
mod breakout;
mod centipede;
mod chopper_command;
mod crazy_climber;
mod demon_attack;
mod pong;
mod qbert;
mod seaquest;
mod tennis;
mod time_pilot;
mod space_invaders;
mod wizard_of_wor;

pub use alien::Alien;
pub use assault::Assault;
pub use asteroids::Asteroids;
pub use asterix::Asterix;
pub use atlantis::Atlantis;
pub use battle_zone::BattleZone;
pub use beam_rider::BeamRider;
pub use bowling::Bowling;
pub use boxing::Boxing;
pub use breakout::Breakout;
pub use centipede::Centipede;
pub use chopper_command::ChopperCommand;
pub use crazy_climber::CrazyClimber;
pub use demon_attack::DemonAttack;
pub use pong::Pong;
pub use qbert::Qbert;
pub use seaquest::Seaquest;
pub use tennis::Tennis;
pub use time_pilot::TimePilot;
pub use space_invaders::SpaceInvaders;
pub use wizard_of_wor::WizardOfWor;

pub(crate) fn clamp(v: isize, lo: isize, hi: isize) -> isize {
    v.max(lo).min(hi)
}

#[cfg(test)]
pub(crate) mod testkit {
    //! Shared smoke-test helpers for game implementations.

    use crate::env::Environment;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Run `steps` random actions, asserting observation invariants hold
    /// throughout. Returns total accumulated reward.
    pub fn random_rollout(env: &mut dyn Environment, steps: usize, seed: u64) -> f32 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut obs = env.reset();
        let mut total = 0.0;
        for _ in 0..steps {
            assert_eq!(obs.len(), env.observation_len(), "obs length mismatch");
            assert!(
                obs.iter().all(|v| (0.0..=1.0).contains(v)),
                "observation values must lie in [0, 1]"
            );
            let action = rng.gen_range(0..env.action_count());
            let out = env.step(action);
            assert!(out.reward.is_finite());
            total += out.reward;
            obs = if out.done { env.reset() } else { out.observation };
        }
        total
    }

    /// Two environments with the same seed must produce identical
    /// trajectories under the same action sequence.
    pub fn assert_deterministic<E: Environment>(mut a: E, mut b: E, steps: usize) {
        let mut rng = StdRng::seed_from_u64(99);
        let (mut oa, mut ob) = (a.reset(), b.reset());
        assert_eq!(oa, ob, "initial observations differ");
        for _ in 0..steps {
            let action = rng.gen_range(0..a.action_count());
            let sa = a.step(action);
            let sb = b.step(action);
            assert_eq!(sa, sb, "trajectories diverged");
            if sa.done {
                oa = a.reset();
                ob = b.reset();
                assert_eq!(oa, ob);
            } else {
                oa = sa.observation;
                ob = sb.observation;
            }
            let _ = (&oa, &ob);
        }
    }
}
