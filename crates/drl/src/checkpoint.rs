//! Parameter checkpointing: persist and restore agent weights as JSON,
//! plus the durable-write machinery shared by all checkpoint producers —
//! atomic writes, a checksummed envelope format, and a rotating on-disk
//! store with corruption fallback.
//!
//! The harnesses use [`Checkpoint`] to train a teacher once and reuse it
//! across experiments, mirroring how the paper pretrains one ResNet-20
//! teacher per task. The co-search loop's fault-tolerance layer builds its
//! resumable search checkpoints on [`write_atomic`], [`seal_envelope`] /
//! [`unseal_envelope`] and [`CheckpointStore`].

use crate::agent::ActorCritic;
use a3cs_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// A serialisable snapshot of one agent's parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    entries: Vec<ParamEntry>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ParamEntry {
    name: String,
    shape: Vec<usize>,
    data: Vec<f32>,
}

/// Error loading or applying a checkpoint.
#[derive(Debug)]
pub enum LoadCheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a valid checkpoint.
    Parse(serde_json::Error),
    /// The checkpoint does not match the agent's parameter list.
    Mismatch(String),
}

impl fmt::Display for LoadCheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadCheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            LoadCheckpointError::Parse(e) => write!(f, "checkpoint parse error: {e}"),
            LoadCheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl Error for LoadCheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadCheckpointError::Io(e) => Some(e),
            LoadCheckpointError::Parse(e) => Some(e),
            LoadCheckpointError::Mismatch(_) => None,
        }
    }
}

impl From<std::io::Error> for LoadCheckpointError {
    fn from(e: std::io::Error) -> Self {
        LoadCheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for LoadCheckpointError {
    fn from(e: serde_json::Error) -> Self {
        LoadCheckpointError::Parse(e)
    }
}

/// Error saving a checkpoint.
#[derive(Debug)]
pub enum SaveCheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The checkpoint could not be serialised.
    Serialize(serde_json::Error),
}

impl fmt::Display for SaveCheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaveCheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            SaveCheckpointError::Serialize(e) => {
                write!(f, "checkpoint serialise error: {e}")
            }
        }
    }
}

impl Error for SaveCheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SaveCheckpointError::Io(e) => Some(e),
            SaveCheckpointError::Serialize(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for SaveCheckpointError {
    fn from(e: std::io::Error) -> Self {
        SaveCheckpointError::Io(e)
    }
}

/// Write `contents` to `path` atomically: write a sibling `*.tmp` file and
/// rename it into place, so readers never observe a half-written file even
/// if the process dies mid-write.
///
/// # Errors
///
/// Returns any filesystem error encountered; the temporary file is removed
/// on failure when possible.
pub fn write_atomic(path: &Path, contents: &str) -> Result<(), std::io::Error> {
    write_atomic_bytes(path, contents.as_bytes())
}

/// [`write_atomic`] for binary contents.
///
/// # Errors
///
/// Returns any filesystem error encountered; the temporary file is removed
/// on failure when possible.
pub fn write_atomic_bytes(path: &Path, contents: &[u8]) -> Result<(), std::io::Error> {
    let mut tmp_name = path
        .file_name()
        .map_or_else(|| std::ffi::OsString::from("checkpoint"), ToOwned::to_owned);
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    fs::write(&tmp, contents)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

/// FNV-1a 64-bit hash — the integrity checksum used by the checkpoint
/// envelope. Not cryptographic; it detects truncation and bit corruption.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Magic/version prefix of the checkpoint envelope header line.
const ENVELOPE_MAGIC: &str = "A3CS-CKPT v2";

/// Wrap `payload` in the checkpoint envelope: a single header line
/// `A3CS-CKPT v2 fnv1a=<16 hex digits>` followed by the payload verbatim.
/// [`unseal_envelope`] verifies the checksum over the payload bytes.
#[must_use]
pub fn seal_envelope(payload: &str) -> String {
    format!(
        "{ENVELOPE_MAGIC} fnv1a={:016x}\n{payload}",
        fnv1a64(payload.as_bytes())
    )
}

/// [`seal_envelope`] for binary payloads: the same ASCII header line
/// followed by the payload bytes verbatim.
#[must_use]
pub fn seal_envelope_bytes(payload: &[u8]) -> Vec<u8> {
    let mut sealed = format!("{ENVELOPE_MAGIC} fnv1a={:016x}\n", fnv1a64(payload)).into_bytes();
    sealed.extend_from_slice(payload);
    sealed
}

/// Why an envelope failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// The header line is missing, has the wrong magic/version, or carries
    /// an unparsable checksum.
    Malformed {
        /// Description of what was wrong with the header.
        detail: String,
    },
    /// The payload bytes do not hash to the checksum in the header —
    /// the file was truncated or corrupted.
    Checksum {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the payload actually present.
        computed: u64,
    },
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeError::Malformed { detail } => {
                write!(f, "malformed checkpoint envelope: {detail}")
            }
            EnvelopeError::Checksum { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: header says {stored:016x}, \
                 payload hashes to {computed:016x} (truncated or corrupted)"
            ),
        }
    }
}

impl Error for EnvelopeError {}

/// Verify and strip the envelope added by [`seal_envelope`], returning the
/// payload.
///
/// # Errors
///
/// [`EnvelopeError`] when the header is malformed or the checksum does not
/// match the payload.
pub fn unseal_envelope(text: &str) -> Result<&str, EnvelopeError> {
    let payload = unseal_envelope_bytes(text.as_bytes())?;
    // The header split happens at an ASCII newline, so the payload is a
    // char-boundary suffix of the UTF-8 input.
    std::str::from_utf8(payload).map_err(|_| EnvelopeError::Malformed {
        detail: "payload is not UTF-8".to_string(),
    })
}

/// [`unseal_envelope`] for binary payloads.
///
/// # Errors
///
/// [`EnvelopeError`] when the header is malformed or the checksum does not
/// match the payload.
pub fn unseal_envelope_bytes(bytes: &[u8]) -> Result<&[u8], EnvelopeError> {
    let Some(newline) = bytes.iter().position(|&b| b == b'\n') else {
        return Err(EnvelopeError::Malformed {
            detail: "no header line".to_string(),
        });
    };
    let (header_bytes, payload) = (&bytes[..newline], &bytes[newline + 1..]);
    let Ok(header) = std::str::from_utf8(header_bytes) else {
        return Err(EnvelopeError::Malformed {
            detail: "header line is not UTF-8".to_string(),
        });
    };
    let Some(rest) = header.strip_prefix(ENVELOPE_MAGIC) else {
        return Err(EnvelopeError::Malformed {
            detail: format!("header {header:?} does not start with {ENVELOPE_MAGIC:?}"),
        });
    };
    let Some(hex) = rest.trim().strip_prefix("fnv1a=") else {
        return Err(EnvelopeError::Malformed {
            detail: format!("header {header:?} lacks a fnv1a= checksum"),
        });
    };
    let Ok(stored) = u64::from_str_radix(hex, 16) else {
        return Err(EnvelopeError::Malformed {
            detail: format!("unparsable checksum {hex:?}"),
        });
    };
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(EnvelopeError::Checksum { stored, computed });
    }
    Ok(payload)
}

/// A rotating directory of sealed checkpoints: `ckpt-<iteration>.json`
/// files written atomically, pruned to the most recent `keep`, and read
/// back newest-first with automatic fallback past corrupt or truncated
/// files.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

/// Outcome of [`CheckpointStore::recover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// `(iteration, payload)` of the newest checkpoint that verified, if
    /// any did. Payloads are opaque bytes — the producer decides the
    /// format (JSON or a binary frame).
    pub checkpoint: Option<(u64, Vec<u8>)>,
    /// One human-readable diagnostic per file that was skipped (unreadable,
    /// malformed, or failed its checksum), newest first.
    pub skipped: Vec<String>,
}

impl CheckpointStore {
    /// A store rooted at `dir`, retaining the newest `keep` checkpoints
    /// (clamped to at least 1).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> Self {
        CheckpointStore {
            dir: dir.into(),
            keep: keep.max(1),
        }
    }

    /// The directory this store writes into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the checkpoint for `iteration`.
    #[must_use]
    pub fn path_for(&self, iteration: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{iteration:012}.json"))
    }

    /// Seal `payload` and write it atomically as the checkpoint for
    /// `iteration`, then prune files beyond the newest `keep`.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error from creating the directory or writing
    /// the file. Pruning failures are ignored — stale files cost disk, not
    /// correctness.
    #[must_use = "the Result reports failure and must be checked"]
    pub fn write(&self, iteration: u64, payload: &[u8]) -> Result<PathBuf, std::io::Error> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path_for(iteration);
        write_atomic_bytes(&path, &seal_envelope_bytes(payload))?;
        let files = self.candidates();
        for (_, stale) in files.iter().skip(self.keep) {
            fs::remove_file(stale).ok();
        }
        Ok(path)
    }

    /// All checkpoint files currently in the store as `(iteration, path)`,
    /// newest first. Files whose names do not parse are ignored.
    #[must_use]
    pub fn candidates(&self) -> Vec<(u64, PathBuf)> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut files: Vec<(u64, PathBuf)> = entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let path = e.path();
                let name = path.file_name()?.to_str()?;
                let iter = name.strip_prefix("ckpt-")?.strip_suffix(".json")?;
                Some((iter.parse::<u64>().ok()?, path))
            })
            .collect();
        files.sort_by(|a, b| b.0.cmp(&a.0));
        files
    }

    /// Find the newest checkpoint that reads back and passes its checksum,
    /// collecting a diagnostic for every newer file that had to be skipped.
    /// Never panics: corruption, truncation and unreadable files all
    /// degrade to fallback.
    #[must_use]
    pub fn recover(&self) -> Recovery {
        let mut skipped = Vec::new();
        for (iteration, path) in self.candidates() {
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    skipped.push(format!("{}: unreadable: {e}", path.display()));
                    continue;
                }
            };
            match unseal_envelope_bytes(&bytes) {
                Ok(payload) => {
                    return Recovery {
                        checkpoint: Some((iteration, payload.to_vec())),
                        skipped,
                    };
                }
                Err(e) => skipped.push(format!("{}: {e}", path.display())),
            }
        }
        Recovery {
            checkpoint: None,
            skipped,
        }
    }
}

impl Checkpoint {
    /// Capture the current parameter values of `agent`.
    #[must_use]
    pub fn capture(agent: &ActorCritic) -> Self {
        let entries = agent
            .params()
            .iter()
            .map(|p| {
                let value = p.value();
                ParamEntry {
                    name: p.name().to_owned(),
                    shape: value.shape().to_vec(),
                    data: value.data().to_vec(),
                }
            })
            .collect();
        Checkpoint { entries }
    }

    /// Number of parameter tensors stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the checkpoint stores no parameters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Write the checkpoint as JSON to `path`, atomically (tmp + rename),
    /// so a crash mid-save never leaves a truncated checkpoint behind.
    ///
    /// # Errors
    ///
    /// Returns [`SaveCheckpointError`] on serialisation or filesystem
    /// failure.
    #[must_use = "the Result reports failure and must be checked"]
    pub fn save(&self, path: &Path) -> Result<(), SaveCheckpointError> {
        let json = serde_json::to_string(self).map_err(SaveCheckpointError::Serialize)?;
        write_atomic(path, &json)?;
        Ok(())
    }

    /// Read a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`LoadCheckpointError`] on IO or parse failure.
    pub fn load(path: &Path) -> Result<Self, LoadCheckpointError> {
        let json = fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }

    /// Apply the stored values to `agent` (parameter lists must match in
    /// order, name and shape).
    ///
    /// # Errors
    ///
    /// Returns [`LoadCheckpointError::Mismatch`] when the agent's
    /// architecture differs from the checkpointed one.
    #[must_use = "the Result reports failure and must be checked"]
    pub fn apply(&self, agent: &ActorCritic) -> Result<(), LoadCheckpointError> {
        let params = agent.params();
        if params.len() != self.entries.len() {
            return Err(LoadCheckpointError::Mismatch(format!(
                "agent has {} parameters, checkpoint has {}",
                params.len(),
                self.entries.len()
            )));
        }
        for (p, e) in params.iter().zip(self.entries.iter()) {
            if p.name() != e.name {
                return Err(LoadCheckpointError::Mismatch(format!(
                    "parameter {} vs checkpoint entry {}",
                    p.name(),
                    e.name
                )));
            }
            let tensor = Tensor::from_vec(e.data.clone(), &e.shape).map_err(|err| {
                LoadCheckpointError::Mismatch(format!("entry {}: {err}", e.name))
            })?;
            if tensor.shape() != p.value().shape() {
                return Err(LoadCheckpointError::Mismatch(format!(
                    "parameter {} shape {:?} vs checkpoint {:?}",
                    p.name(),
                    p.value().shape(),
                    tensor.shape()
                )));
            }
            p.set_value(tensor);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_nn::vanilla;

    fn agent(seed: u64) -> ActorCritic {
        let backbone = vanilla(3, 12, 12, 16, seed);
        ActorCritic::new(Box::new(backbone), 16, (3, 12, 12), 3, seed)
    }

    #[test]
    fn capture_apply_round_trip() {
        let a = agent(1);
        let b = agent(2);
        let obs = vec![0.4; 3 * 12 * 12];
        assert_ne!(a.policy_probs(&obs, 1), b.policy_probs(&obs, 1));
        Checkpoint::capture(&a).apply(&b).expect("compatible agents");
        assert_eq!(a.policy_probs(&obs, 1), b.policy_probs(&obs, 1));
    }

    /// A per-test, per-process scratch directory: tests used to share one
    /// fixed path and could race each other (or stale state from a killed
    /// run) when the suite ran concurrently.
    fn test_dir(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("a3cs_ckpt_{}_{test}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let a = agent(3);
        let dir = test_dir("save_load_round_trip");
        let path = dir.join("agent.json");
        let ck = Checkpoint::capture(&a);
        ck.save(&path).expect("save");
        let loaded = Checkpoint::load(&path).expect("load");
        assert_eq!(ck, loaded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_leaves_no_tmp_file_behind() {
        let dir = test_dir("save_leaves_no_tmp_file_behind");
        let path = dir.join("agent.json");
        Checkpoint::capture(&agent(6)).save(&path).expect("save");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["agent.json".to_string()], "{names:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn envelope_round_trip_and_rejection() {
        let payload = r#"{"hello": [1, 2, 3]}"#;
        let sealed = seal_envelope(payload);
        assert_eq!(unseal_envelope(&sealed).expect("round trip"), payload);

        // Flip one payload byte: checksum must catch it.
        let mut bytes = sealed.clone().into_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        let flipped = String::from_utf8(bytes).expect("ascii payload");
        assert!(matches!(
            unseal_envelope(&flipped),
            Err(EnvelopeError::Checksum { .. })
        ));

        // Truncate mid-payload: checksum must catch it.
        let truncated = &sealed[..sealed.len() - 4];
        assert!(matches!(
            unseal_envelope(truncated),
            Err(EnvelopeError::Checksum { .. })
        ));

        // Not an envelope at all.
        assert!(matches!(
            unseal_envelope("random junk\nmore junk"),
            Err(EnvelopeError::Malformed { .. })
        ));
        assert!(matches!(
            unseal_envelope("no newline at all"),
            Err(EnvelopeError::Malformed { .. })
        ));
    }

    #[test]
    fn binary_envelope_round_trips_non_utf8_payloads() {
        let payload: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        let sealed = seal_envelope_bytes(&payload);
        assert_eq!(
            unseal_envelope_bytes(&sealed).expect("round trip"),
            payload.as_slice()
        );
        // A flipped payload byte fails the checksum.
        let mut corrupt = sealed.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        assert!(matches!(
            unseal_envelope_bytes(&corrupt),
            Err(EnvelopeError::Checksum { .. })
        ));
        // The text API rejects binary payloads instead of panicking.
        let lossy = String::from_utf8_lossy(&sealed).into_owned();
        assert!(unseal_envelope(&lossy).is_err());
    }

    #[test]
    fn store_rotates_and_recovers_newest() {
        let dir = test_dir("store_rotates_and_recovers_newest");
        let store = CheckpointStore::new(&dir, 2);
        for i in [3u64, 7, 11] {
            store.write(i, format!("payload-{i}").as_bytes()).expect("write");
        }
        let files = store.candidates();
        assert_eq!(
            files.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![11, 7],
            "oldest checkpoint must be pruned"
        );
        let rec = store.recover();
        assert_eq!(rec.checkpoint, Some((11, b"payload-11".to_vec())));
        assert!(rec.skipped.is_empty(), "{:?}", rec.skipped);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_falls_back_past_corrupt_checkpoints() {
        let dir = test_dir("store_falls_back_past_corrupt_checkpoints");
        let store = CheckpointStore::new(&dir, 3);
        store.write(1, b"good-old").expect("write");
        store.write(2, b"good-new").expect("write");
        // Corrupt the newest on disk (simulating a torn write from a
        // pre-atomic producer or disk corruption).
        std::fs::write(store.path_for(2), "A3CS-CKPT v2 fnv1a=0000000000000000\nbad")
            .expect("corrupt");
        let rec = store.recover();
        assert_eq!(rec.checkpoint, Some((1, b"good-old".to_vec())));
        assert_eq!(rec.skipped.len(), 1, "{:?}", rec.skipped);
        assert!(rec.skipped[0].contains("checksum"), "{:?}", rec.skipped);

        // Truncate the survivor too: recovery degrades to None, no panic.
        let text = std::fs::read_to_string(store.path_for(1)).expect("read");
        std::fs::write(store.path_for(1), &text[..text.len() - 2]).expect("truncate");
        let rec = store.recover();
        assert_eq!(rec.checkpoint, None);
        assert_eq!(rec.skipped.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_recover_on_missing_dir_is_empty() {
        let store = CheckpointStore::new("/nonexistent/a3cs-ckpt-store", 2);
        let rec = store.recover();
        assert_eq!(rec.checkpoint, None);
        assert!(rec.skipped.is_empty());
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let a = agent(4);
        let bigger = {
            let backbone = vanilla(3, 12, 12, 32, 5);
            ActorCritic::new(Box::new(backbone), 32, (3, 12, 12), 3, 5)
        };
        let err = Checkpoint::capture(&a).apply(&bigger).unwrap_err();
        assert!(matches!(err, LoadCheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Checkpoint::load(Path::new("/nonexistent/a3cs.json")).unwrap_err();
        assert!(matches!(err, LoadCheckpointError::Io(_)));
    }
}
