//! Structural descriptors of networks, consumed by the accelerator crates.
//!
//! The accelerator performance predictor does not run tensors through a
//! network; it reasons about per-layer dimensions. Every [`crate::Module`]
//! can therefore *describe* itself as a sequence of compute layers
//! ([`LayerDesc`]). Element-wise glue (ReLU, batch-norm, residual adds) is
//! folded away, mirroring how deployment flows fold BN/activation into the
//! preceding convolution.

/// Shape of the feature tensor flowing between modules (batch excluded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureShape {
    /// A `[channels, height, width]` image tensor.
    Image {
        /// Channel count.
        channels: usize,
        /// Spatial height.
        height: usize,
        /// Spatial width.
        width: usize,
    },
    /// A flat `[features]` vector.
    Flat {
        /// Feature count.
        features: usize,
    },
}

impl FeatureShape {
    /// Convenience constructor for the image variant.
    #[must_use]
    pub fn image(channels: usize, height: usize, width: usize) -> Self {
        FeatureShape::Image {
            channels,
            height,
            width,
        }
    }

    /// Total element count.
    #[must_use]
    pub fn elements(&self) -> usize {
        match *self {
            FeatureShape::Image {
                channels,
                height,
                width,
            } => channels * height * width,
            FeatureShape::Flat { features } => features,
        }
    }
}

/// Dimensions of a (dense or depthwise) 2-D convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvDims {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both spatial dims.
    pub stride: usize,
    /// Zero padding on every border.
    pub padding: usize,
    /// Input spatial height.
    pub in_h: usize,
    /// Input spatial width.
    pub in_w: usize,
}

impl ConvDims {
    /// Output spatial height.
    #[must_use]
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output spatial width.
    #[must_use]
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1
    }
}

/// The compute operation a [`LayerDesc`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerOp {
    /// Dense convolution.
    Conv(ConvDims),
    /// Depthwise convolution (`in_ch == out_ch`, one filter per channel).
    DepthwiseConv(ConvDims),
    /// Fully connected layer.
    Fc {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
}

/// One compute layer of a described network.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerDesc {
    /// Human-readable layer name (for reports).
    pub name: String,
    /// The operation and its dimensions.
    pub op: LayerOp,
}

impl LayerDesc {
    /// Multiply–accumulate count for one input sample.
    #[must_use]
    pub fn macs(&self) -> u64 {
        match self.op {
            LayerOp::Conv(d) => {
                d.out_ch as u64
                    * d.in_ch as u64
                    * (d.kernel * d.kernel) as u64
                    * (d.out_h() * d.out_w()) as u64
            }
            LayerOp::DepthwiseConv(d) => {
                d.out_ch as u64 * (d.kernel * d.kernel) as u64 * (d.out_h() * d.out_w()) as u64
            }
            LayerOp::Fc {
                in_features,
                out_features,
            } => in_features as u64 * out_features as u64,
        }
    }

    /// Number of weights.
    #[must_use]
    pub fn weight_count(&self) -> u64 {
        match self.op {
            LayerOp::Conv(d) => (d.out_ch * d.in_ch * d.kernel * d.kernel) as u64,
            LayerOp::DepthwiseConv(d) => (d.out_ch * d.kernel * d.kernel) as u64,
            LayerOp::Fc {
                in_features,
                out_features,
            } => (in_features * out_features) as u64,
        }
    }

    /// Input activation elements for one sample.
    #[must_use]
    pub fn input_elems(&self) -> u64 {
        match self.op {
            LayerOp::Conv(d) | LayerOp::DepthwiseConv(d) => (d.in_ch * d.in_h * d.in_w) as u64,
            LayerOp::Fc { in_features, .. } => in_features as u64,
        }
    }

    /// Output activation elements for one sample.
    #[must_use]
    pub fn output_elems(&self) -> u64 {
        match self.op {
            LayerOp::Conv(d) | LayerOp::DepthwiseConv(d) => {
                (d.out_ch * d.out_h() * d.out_w()) as u64
            }
            LayerOp::Fc { out_features, .. } => out_features as u64,
        }
    }

    /// Output feature shape for shape propagation.
    #[must_use]
    pub fn output_shape(&self) -> FeatureShape {
        match self.op {
            LayerOp::Conv(d) | LayerOp::DepthwiseConv(d) => {
                FeatureShape::image(d.out_ch, d.out_h(), d.out_w())
            }
            LayerOp::Fc { out_features, .. } => FeatureShape::Flat {
                features: out_features,
            },
        }
    }
}

/// Total MACs across a slice of layer descriptors.
#[must_use]
pub fn total_macs(layers: &[LayerDesc]) -> u64 {
    layers.iter().map(LayerDesc::macs).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(in_ch: usize, out_ch: usize, kernel: usize, stride: usize, hw: usize) -> LayerDesc {
        LayerDesc {
            name: "c".into(),
            op: LayerOp::Conv(ConvDims {
                in_ch,
                out_ch,
                kernel,
                stride,
                padding: kernel / 2,
                in_h: hw,
                in_w: hw,
            }),
        }
    }

    #[test]
    fn conv_macs_formula() {
        let l = conv(3, 8, 3, 1, 8);
        // out 8x8, macs = 8*3*9*64
        assert_eq!(l.macs(), 8 * 3 * 9 * 64);
        assert_eq!(l.weight_count(), 8 * 3 * 9);
        assert_eq!(l.input_elems(), 3 * 64);
        assert_eq!(l.output_elems(), 8 * 64);
    }

    #[test]
    fn stride_halves_output() {
        let l = conv(4, 4, 3, 2, 8);
        assert_eq!(l.output_shape(), FeatureShape::image(4, 4, 4));
    }

    #[test]
    fn depthwise_macs_drop_input_channel_factor() {
        let dims = ConvDims {
            in_ch: 16,
            out_ch: 16,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_h: 6,
            in_w: 6,
        };
        let dense = LayerDesc {
            name: "d".into(),
            op: LayerOp::Conv(dims),
        };
        let dw = LayerDesc {
            name: "dw".into(),
            op: LayerOp::DepthwiseConv(dims),
        };
        assert_eq!(dense.macs(), dw.macs() * 16);
    }

    #[test]
    fn fc_shapes() {
        let l = LayerDesc {
            name: "fc".into(),
            op: LayerOp::Fc {
                in_features: 128,
                out_features: 10,
            },
        };
        assert_eq!(l.macs(), 1280);
        assert_eq!(l.output_shape(), FeatureShape::Flat { features: 10 });
    }

    #[test]
    fn feature_shape_elements() {
        assert_eq!(FeatureShape::image(3, 4, 5).elements(), 60);
        assert_eq!(FeatureShape::Flat { features: 7 }.elements(), 7);
    }

    #[test]
    fn total_macs_sums() {
        let layers = vec![conv(3, 8, 3, 1, 8), conv(8, 8, 3, 1, 8)];
        assert_eq!(total_macs(&layers), layers[0].macs() + layers[1].macs());
    }
}
