//! Breakout: paddle-and-ball brick breaking.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::games::clamp;
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;
const BRICK_ROWS: usize = 3;
const PADDLE_ROW: isize = 10;
const PADDLE_HALF: isize = 1; // paddle covers 3 cells
const LIVES: u32 = 3;

/// Breakout stand-in: a paddle at the bottom deflects a ball into three
/// rows of bricks. `+1` per brick (top rows pay more), three lives, bricks
/// refill when cleared so strong policies keep scoring.
///
/// Actions: `0` no-op, `1` left, `2` right.
#[derive(Debug, Clone)]
pub struct Breakout {
    rng: StdRng,
    paddle: isize,
    ball_r: isize,
    ball_c: isize,
    vel_r: isize,
    vel_c: isize,
    bricks: [[bool; GRID]; BRICK_ROWS],
    lives: u32,
    done: bool,
}

impl Breakout {
    /// Create a seeded Breakout game. Call [`Environment::reset`] before
    /// stepping.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Breakout {
            rng: StdRng::seed_from_u64(seed),
            paddle: GRID as isize / 2,
            ball_r: 0,
            ball_c: 0,
            vel_r: 1,
            vel_c: 1,
            bricks: [[true; GRID]; BRICK_ROWS],
            lives: LIVES,
            done: true,
        }
    }

    fn serve(&mut self) {
        self.ball_r = PADDLE_ROW - 3;
        self.ball_c = self.rng.gen_range(2..GRID as isize - 2);
        self.vel_r = -1;
        self.vel_c = if self.rng.gen_bool(0.5) { 1 } else { -1 };
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(3, GRID, GRID);
        for d in -PADDLE_HALF..=PADDLE_HALF {
            canvas.paint(0, PADDLE_ROW, self.paddle + d, 1.0);
        }
        canvas.paint(1, self.ball_r, self.ball_c, 1.0);
        for (r, row) in self.bricks.iter().enumerate() {
            for (c, &alive) in row.iter().enumerate() {
                if alive {
                    canvas.paint(2, r as isize + 1, c as isize, 1.0);
                }
            }
        }
        canvas.into_observation()
    }

    fn brick_at(&self, r: isize, c: isize) -> Option<(usize, usize)> {
        let row = r - 1;
        if (0..BRICK_ROWS as isize).contains(&row)
            && (0..GRID as isize).contains(&c)
            && self.bricks[row as usize][c as usize]
        {
            Some((row as usize, c as usize))
        } else {
            None
        }
    }

    fn bricks_remaining(&self) -> usize {
        self.bricks
            .iter()
            .flat_map(|r| r.iter())
            .filter(|&&b| b)
            .count()
    }
}

impl Environment for Breakout {
    fn name(&self) -> &str {
        "Breakout"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (3, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        3
    }

    fn reset(&mut self) -> Vec<f32> {
        self.paddle = GRID as isize / 2;
        self.bricks = [[true; GRID]; BRICK_ROWS];
        self.lives = LIVES;
        self.done = false;
        self.serve();
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        match action {
            1 => self.paddle = clamp(self.paddle - 1, PADDLE_HALF, GRID as isize - 1 - PADDLE_HALF),
            2 => self.paddle = clamp(self.paddle + 1, PADDLE_HALF, GRID as isize - 1 - PADDLE_HALF),
            _ => {}
        }

        let mut reward = 0.0f32;

        // Wall bounces (left/right/top).
        let mut nr = self.ball_r + self.vel_r;
        let mut nc = self.ball_c + self.vel_c;
        if nc < 0 || nc >= GRID as isize {
            self.vel_c = -self.vel_c;
            nc = self.ball_c + self.vel_c;
        }
        if nr < 0 {
            self.vel_r = -self.vel_r;
            nr = self.ball_r + self.vel_r;
        }

        // Brick collision.
        if let Some((br, bc)) = self.brick_at(nr, nc) {
            self.bricks[br][bc] = false;
            // Top rows are worth more, like Atari's colour tiers.
            reward += (BRICK_ROWS - br) as f32;
            self.vel_r = -self.vel_r;
            nr = self.ball_r + self.vel_r;
        }

        // Paddle bounce.
        if nr == PADDLE_ROW && (nc - self.paddle).abs() <= PADDLE_HALF && self.vel_r > 0 {
            self.vel_r = -1;
            // English: hitting with the paddle edge steers the ball.
            self.vel_c = match nc - self.paddle {
                d if d < 0 => -1,
                d if d > 0 => 1,
                _ => self.vel_c,
            };
            nr = PADDLE_ROW - 1;
        }

        self.ball_r = nr;
        self.ball_c = nc;

        // Miss: ball below the paddle row.
        if self.ball_r > PADDLE_ROW {
            self.lives -= 1;
            if self.lives == 0 {
                self.done = true;
            } else {
                self.serve();
            }
        }

        // Cleared board refills (score keeps growing for strong policies).
        if self.bricks_remaining() == 0 {
            self.bricks = [[true; GRID]; BRICK_ROWS];
            reward += 10.0;
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("Breakout");
        w.rng(&self.rng);
        w.isize(self.paddle);
        w.isize(self.ball_r);
        w.isize(self.ball_c);
        w.isize(self.vel_r);
        w.isize(self.vel_c);
        for row in &self.bricks {
            for &cell in row {
                w.bool(cell);
            }
        }
        w.u32(self.lives);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "Breakout")?;
        self.rng = r.rng()?;
        self.paddle = r.isize()?;
        self.ball_r = r.isize()?;
        self.ball_c = r.isize()?;
        self.vel_r = r.isize()?;
        self.vel_c = r.isize()?;
        for row in &mut self.bricks {
            for cell in row.iter_mut() {
                *cell = r.bool()?;
            }
        }
        self.lives = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(Breakout::new(3), Breakout::new(3), 300);
    }

    #[test]
    fn random_play_survives_and_scores_nonnegative() {
        let mut env = Breakout::new(1);
        let total = random_rollout(&mut env, 1000, 2);
        assert!(total >= 0.0);
    }

    #[test]
    fn ball_eventually_breaks_a_brick_with_tracking_policy() {
        let mut env = Breakout::new(5);
        let mut obs = env.reset();
        let mut total = 0.0;
        for _ in 0..400 {
            // Track the ball: read its column from plane 1.
            let ball = obs[GRID * GRID..2 * GRID * GRID]
                .iter()
                .position(|&v| v > 0.0)
                .map_or(GRID / 2, |i| i % GRID);
            let paddle_c = env.paddle as usize;
            let action = match ball.cmp(&paddle_c) {
                std::cmp::Ordering::Less => 1,
                std::cmp::Ordering::Greater => 2,
                std::cmp::Ordering::Equal => 0,
            };
            let out = env.step(action);
            total += out.reward;
            if out.done {
                obs = env.reset();
            } else {
                obs = out.observation;
            }
        }
        assert!(total > 0.0, "tracking policy should break bricks");
    }

    #[test]
    fn losing_all_lives_ends_episode() {
        let mut env = Breakout::new(7);
        let _ = env.reset();
        let mut done = false;
        // Hug the left wall; the ball will eventually be missed 3 times.
        for _ in 0..2000 {
            let out = env.step(1);
            if out.done {
                done = true;
                break;
            }
        }
        assert!(done, "idle-in-corner play must eventually end the episode");
    }

    #[test]
    #[should_panic(expected = "invalid action")]
    fn invalid_action_panics() {
        let mut env = Breakout::new(0);
        let _ = env.reset();
        let _ = env.step(9);
    }

    #[test]
    #[should_panic(expected = "episode is over")]
    fn stepping_after_done_panics() {
        let mut env = Breakout::new(0);
        let _ = env.reset();
        loop {
            if env.step(0).done {
                break;
            }
        }
        let _ = env.step(0);
    }
}
