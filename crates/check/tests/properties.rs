//! Property tests for the static verification pass: everything the search
//! engines actually produce must pass the checker, and every class of
//! broken input must be rejected with its stable diagnostic code.

use a3cs_accel::{
    tiny_space, CostWeights, DasConfig, DasEngine, FpgaTarget, RandomSearch, SearchSpace,
};
use a3cs_check::{
    check_accelerator, check_accelerator_structure, check_arch, check_layers, check_search_setup,
    check_supernet, codes, max_arch_depth,
};
use a3cs_nas::{SupernetConfig, ALL_OPS};
use a3cs_nn::{ConvDims, FeatureShape, LayerDesc, LayerOp};
use proptest::prelude::*;

fn conv(in_ch: usize, out_ch: usize, kernel: usize, stride: usize, hw: usize) -> LayerDesc {
    LayerDesc {
        name: "l".into(),
        op: LayerOp::Conv(ConvDims {
            in_ch,
            out_ch,
            kernel,
            stride,
            padding: kernel / 2,
            in_h: hw,
            in_w: hw,
        }),
    }
}

fn proxy_layers(n: usize) -> Vec<LayerDesc> {
    (0..n).map(|i| conv(8 + i, 8 + i + 1, 3, 1, 12)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever RandomSearch returns as its best design passes the full
    /// legality check: the engine's rejection sampling and assignment
    /// repair line up exactly with the checker's notion of legal.
    #[test]
    fn random_search_best_is_fully_legal(
        seed in 0u64..1_000,
        chunks in 1usize..4,
        layers in 1usize..7,
    ) {
        let target = FpgaTarget::zc706();
        let descs = proxy_layers(layers);
        let mut rs = RandomSearch::new(tiny_space(), chunks, CostWeights::default(), seed);
        for _ in 0..12 {
            rs.step(&descs, &target);
        }
        let (best, _) = rs.best().expect("12 steps produce a best");
        let report = check_accelerator(best, layers, &target);
        prop_assert!(report.is_clean(), "{report}");
    }

    /// DAS-decoded designs are structurally sound (contiguous assignment,
    /// no degenerate chunks) for any seed and proxy depth.
    #[test]
    fn das_best_is_structurally_sound(
        seed in 0u64..1_000,
        layers in 1usize..7,
    ) {
        let config = DasConfig {
            space: tiny_space(),
            num_chunks: 2,
            max_layers: 8,
            ..DasConfig::default()
        };
        let target = FpgaTarget::zc706();
        let descs = proxy_layers(layers);
        let mut das = DasEngine::new(config, seed);
        for _ in 0..8 {
            let _ = das.step(&descs, &target);
        }
        let best = das.best(layers);
        let report = check_accelerator_structure(&best, layers);
        prop_assert!(report.is_clean(), "{report}");
    }

    /// Every architecture derivable from the tiny supernet — any choice of
    /// the 9 operators per cell — passes symbolic shape inference.
    #[test]
    fn derivable_architectures_are_shape_clean(
        idx in prop::collection::vec(0usize..ALL_OPS.len(), 6),
    ) {
        let config = SupernetConfig::tiny(3, 12, 12);
        let choices: Vec<_> = idx.iter().map(|&i| ALL_OPS[i]).collect();
        let report = check_arch(&config, &choices);
        prop_assert!(report.is_clean(), "{choices:?}: {report}");
    }

    /// Search setups with non-degenerate knobs and enough assignment
    /// coverage always pass; shrinking max_layers below the deepest
    /// derivable net always fails with the stable code.
    #[test]
    fn setup_coverage_check_is_exact(extra in 0usize..8) {
        let config = SupernetConfig::tiny(3, 12, 12);
        let required = max_arch_depth(&config);
        let ok = check_search_setup(&tiny_space(), 2, required + extra, required);
        prop_assert!(ok.is_clean(), "{ok}");
        let short = check_search_setup(&tiny_space(), 2, required - 1, required);
        prop_assert!(short.has_code(codes::ACCEL_DEPTH_EXCEEDS_KNOBS));
    }
}

// ---- negative tests: each invalid-input class yields its stable code ----

#[test]
fn shape_mismatch_is_rejected_with_e002() {
    // 16-channel output feeding a layer that expects 8 input channels.
    let layers = vec![conv(3, 16, 3, 1, 12), conv(8, 16, 3, 1, 12)];
    let report = check_layers(&layers, FeatureShape::image(3, 12, 12));
    assert!(report.has_code(codes::SHAPE_INPUT_MISMATCH), "{report}");
}

#[test]
fn oversized_kernel_is_rejected_with_e003() {
    // 7x7 kernel with padding 3 is fine on 12x12 but a kernel larger than
    // the padded input must be flagged.
    let layers = vec![LayerDesc {
        name: "big".into(),
        op: LayerOp::Conv(ConvDims {
            in_ch: 3,
            out_ch: 8,
            kernel: 15,
            stride: 1,
            padding: 0,
            in_h: 12,
            in_w: 12,
        }),
    }];
    let report = check_layers(&layers, FeatureShape::image(3, 12, 12));
    assert!(report.has_code(codes::SHAPE_KERNEL_TOO_LARGE), "{report}");
}

#[test]
fn dsp_overflow_is_rejected_with_e101() {
    let space = SearchSpace {
        pe_rows: vec![64],
        pe_cols: vec![64],
        ..tiny_space()
    };
    let choices = vec![0; space.knob_sizes(1, 1).len()];
    let accel = space.decode(1, 1, &choices);
    let report = check_accelerator(&accel, 1, &FpgaTarget::zc706());
    assert!(report.has_code(codes::ACCEL_DSP_OVERFLOW), "{report}");
}

#[test]
fn bram_overflow_is_rejected_with_e102() {
    let space = SearchSpace {
        buffer_totals_kb: vec![4096],
        ..tiny_space()
    };
    let choices = vec![0; space.knob_sizes(1, 1).len()];
    let accel = space.decode(1, 1, &choices);
    let report = check_accelerator(&accel, 1, &FpgaTarget::zc706());
    assert!(report.has_code(codes::ACCEL_BRAM_OVERFLOW), "{report}");
}

#[test]
fn noncontiguous_assignment_is_rejected_with_e105() {
    let space = tiny_space();
    let knobs = space.chunk_knob_sizes().len();
    let mut choices = vec![0; space.knob_sizes(2, 3).len()];
    // Assignment [1, 0, 1]: layer 1 jumps back to an earlier chunk.
    choices[2 * knobs] = 1;
    choices[2 * knobs + 1] = 0;
    choices[2 * knobs + 2] = 1;
    let accel = space.decode(2, 3, &choices);
    let report = check_accelerator_structure(&accel, 3);
    assert!(
        report.has_code(codes::ACCEL_ASSIGNMENT_NONCONTIGUOUS),
        "{report}"
    );
}

#[test]
fn illegal_tiling_setup_is_rejected_with_e106() {
    let space = SearchSpace {
        tm: vec![0, 8],
        ..tiny_space()
    };
    let report = check_search_setup(&space, 2, 8, 4);
    assert!(report.has_code(codes::ACCEL_ILLEGAL_TILING), "{report}");
}

#[test]
fn broken_supernet_config_is_rejected_with_e006() {
    let mut config = SupernetConfig::tiny(3, 12, 12);
    config.num_cells = 4; // not a multiple of 3
    let report = check_supernet(&config);
    assert!(report.has_code(codes::ARCH_BAD_STRUCTURE), "{report}");
}
