//! Seaquest: submarine combat with an oxygen budget.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::games::clamp;
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;
const MAX_OXYGEN: i32 = 60;
const SURFACE_ROW: isize = 1;

#[derive(Debug, Clone, Copy)]
struct Mover {
    row: isize,
    col: isize,
    dir: isize,
}

/// Seaquest stand-in: pilot a submarine, torpedo fish (`+1`), rescue divers
/// (`+5` each when surfacing), and manage a depleting oxygen supply that
/// only refills at the surface. Running dry or touching a fish ends the
/// episode. The oxygen level is rendered as a bar in the observation.
///
/// Actions: `0` no-op, `1` up, `2` down, `3` left, `4` right, `5` fire.
#[derive(Debug, Clone)]
pub struct Seaquest {
    rng: StdRng,
    sub: (isize, isize),
    facing: isize,
    enemies: Vec<Mover>,
    divers: Vec<Mover>,
    torpedo: Option<Mover>,
    oxygen: i32,
    held_divers: u32,
    clock: u32,
    done: bool,
}

impl Seaquest {
    /// Create a seeded Seaquest game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Seaquest {
            rng: StdRng::seed_from_u64(seed),
            sub: (GRID as isize / 2, GRID as isize / 2),
            facing: 1,
            enemies: Vec::new(),
            divers: Vec::new(),
            torpedo: None,
            oxygen: MAX_OXYGEN,
            held_divers: 0,
            clock: 0,
            done: true,
        }
    }

    fn spawn_mover(&mut self, row_lo: isize, row_hi: isize) -> Mover {
        let dir = if self.rng.gen_bool(0.5) { 1 } else { -1 };
        Mover {
            row: self.rng.gen_range(row_lo..row_hi),
            col: if dir > 0 { 0 } else { GRID as isize - 1 },
            dir,
        }
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(5, GRID, GRID);
        canvas.paint(0, self.sub.0, self.sub.1, 1.0);
        for e in &self.enemies {
            canvas.paint(1, e.row, e.col, 1.0);
        }
        for d in &self.divers {
            canvas.paint(2, d.row, d.col, 1.0);
        }
        if let Some(t) = &self.torpedo {
            canvas.paint(3, t.row, t.col, 1.0);
        }
        // Oxygen bar on the top row of plane 4.
        let bar = (self.oxygen.max(0) as usize * GRID) / MAX_OXYGEN as usize;
        for c in 0..bar {
            canvas.paint(4, 0, c as isize, 1.0);
        }
        canvas.into_observation()
    }
}

impl Environment for Seaquest {
    fn name(&self) -> &str {
        "Seaquest"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (5, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        6
    }

    fn reset(&mut self) -> Vec<f32> {
        self.sub = (GRID as isize / 2, GRID as isize / 2);
        self.facing = 1;
        self.enemies.clear();
        self.divers.clear();
        self.torpedo = None;
        self.oxygen = MAX_OXYGEN;
        self.held_divers = 0;
        self.clock = 0;
        self.done = false;
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        self.clock += 1;
        match action {
            1 => self.sub.0 = clamp(self.sub.0 - 1, SURFACE_ROW, GRID as isize - 1),
            2 => self.sub.0 = clamp(self.sub.0 + 1, SURFACE_ROW, GRID as isize - 1),
            3 => {
                self.sub.1 = clamp(self.sub.1 - 1, 0, GRID as isize - 1);
                self.facing = -1;
            }
            4 => {
                self.sub.1 = clamp(self.sub.1 + 1, 0, GRID as isize - 1);
                self.facing = 1;
            }
            5 => {
                if self.torpedo.is_none() {
                    self.torpedo = Some(Mover {
                        row: self.sub.0,
                        col: self.sub.1 + self.facing,
                        dir: self.facing,
                    });
                }
            }
            _ => {}
        }

        let mut reward = 0.0f32;

        // Torpedo travel (2 cells/step) with hit detection.
        if let Some(mut t) = self.torpedo.take() {
            let mut live = true;
            for _ in 0..2 {
                t.col += t.dir;
                if !(0..GRID as isize).contains(&t.col) {
                    live = false;
                    break;
                }
                if let Some(i) = self
                    .enemies
                    .iter()
                    .position(|e| e.row == t.row && e.col == t.col)
                {
                    self.enemies.swap_remove(i);
                    reward += 1.0;
                    live = false;
                    break;
                }
            }
            if live {
                self.torpedo = Some(t);
            }
        }

        // Spawns.
        if self.clock % 4 == 0 && self.enemies.len() < 6 {
            let m = self.spawn_mover(3, GRID as isize - 1);
            self.enemies.push(m);
        }
        if self.clock % 17 == 0 && self.divers.len() < 2 {
            let m = self.spawn_mover(4, GRID as isize - 2);
            self.divers.push(m);
        }

        // Movement: enemies every step, divers every other step.
        for e in &mut self.enemies {
            e.col += e.dir;
        }
        self.enemies.retain(|e| (0..GRID as isize).contains(&e.col));
        if self.clock % 2 == 0 {
            for d in &mut self.divers {
                d.col += d.dir;
            }
            self.divers.retain(|d| (0..GRID as isize).contains(&d.col));
        }

        // Pick up divers.
        let sub = self.sub;
        let before = self.divers.len();
        self.divers.retain(|d| (d.row, d.col) != sub);
        self.held_divers += (before - self.divers.len()) as u32;

        // Oxygen economy.
        if self.sub.0 <= SURFACE_ROW {
            if self.oxygen < MAX_OXYGEN {
                self.oxygen = MAX_OXYGEN;
                reward += 5.0 * self.held_divers as f32;
                self.held_divers = 0;
            }
        } else {
            self.oxygen -= 1;
        }

        // Death conditions.
        if self.oxygen <= 0 || self.enemies.iter().any(|e| (e.row, e.col) == self.sub) {
            self.done = true;
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("Seaquest");
        w.rng(&self.rng);
        w.isize(self.sub.0);
        w.isize(self.sub.1);
        w.isize(self.facing);
        w.usize(self.enemies.len());
        for item in &self.enemies {
            w.isize(item.row);
            w.isize(item.col);
            w.isize(item.dir);
        }
        w.usize(self.divers.len());
        for item in &self.divers {
            w.isize(item.row);
            w.isize(item.col);
            w.isize(item.dir);
        }
        w.bool(self.torpedo.is_some());
        if let Some(item) = &self.torpedo {
            w.isize(item.row);
            w.isize(item.col);
            w.isize(item.dir);
        }
        w.int(i64::from(self.oxygen));
        w.u32(self.held_divers);
        w.u32(self.clock);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "Seaquest")?;
        self.rng = r.rng()?;
        self.sub = (r.isize()?, r.isize()?);
        self.facing = r.isize()?;
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(Mover { row: r.isize()?, col: r.isize()?, dir: r.isize()? });
        }
        self.enemies = items;
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(Mover { row: r.isize()?, col: r.isize()?, dir: r.isize()? });
        }
        self.divers = items;
        self.torpedo = if r.bool()? {
            Some(Mover { row: r.isize()?, col: r.isize()?, dir: r.isize()? })
        } else {
            None
        };
        self.oxygen = r.i32()?;
        self.held_divers = r.u32()?;
        self.clock = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(Seaquest::new(31), Seaquest::new(31), 300);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = Seaquest::new(1);
        let total = random_rollout(&mut env, 1000, 7);
        assert!(total >= 0.0);
    }

    #[test]
    fn oxygen_runs_out_for_idle_submarine() {
        let mut env = Seaquest::new(2);
        let _ = env.reset();
        let mut steps = 0;
        loop {
            steps += 1;
            if env.step(0).done {
                break;
            }
            assert!(steps <= MAX_OXYGEN as usize + 5);
        }
        // Dies either from oxygen or an enemy, but within the O2 budget.
        assert!(steps <= MAX_OXYGEN as usize + 5);
    }

    #[test]
    fn surfacing_refills_oxygen() {
        let mut env = Seaquest::new(3);
        let _ = env.reset();
        for _ in 0..10 {
            let _ = env.step(0);
        }
        assert!(env.oxygen < MAX_OXYGEN);
        for _ in 0..GRID {
            if env.done {
                break;
            }
            let _ = env.step(1); // swim up
        }
        if !env.done {
            assert_eq!(env.oxygen, MAX_OXYGEN);
        }
    }

    #[test]
    fn oxygen_bar_shrinks_in_observation() {
        let mut env = Seaquest::new(4);
        let obs0 = env.reset();
        let bar = |obs: &[f32]| -> f32 { obs[4 * GRID * GRID..4 * GRID * GRID + GRID].iter().sum() };
        let full = bar(&obs0);
        let mut last = obs0;
        for _ in 0..30 {
            let out = env.step(2); // stay deep
            if out.done {
                return; // killed by a fish first; bar check not applicable
            }
            last = out.observation;
        }
        assert!(bar(&last) < full);
    }
}
