//! Environment stepping throughput across the simulated game suite —
//! verifies the substrate is not the training bottleneck.

use a3cs_envs::{game_names, make_env};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_env_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("env_step");
    for name in game_names() {
        group.bench_function(name, |bench| {
            let mut env = make_env(name, 1).expect("known game");
            let actions = env.action_count();
            let _ = env.reset();
            let mut i = 0usize;
            bench.iter(|| {
                let out = env.step(i % actions);
                i += 1;
                if out.done {
                    let _ = env.reset();
                }
                black_box(out.reward);
            });
        });
    }
    group.finish();
}

fn bench_reset(c: &mut Criterion) {
    c.bench_function("env_reset_breakout", |bench| {
        let mut env = make_env("Breakout", 2).expect("known game");
        bench.iter(|| black_box(env.reset().len()));
    });
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_env_steps, bench_reset
}
criterion_main!(benches);
