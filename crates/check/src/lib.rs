//! Static verification for A3C-S: shape inference, accelerator legality
//! and the workspace lint driver.
//!
//! Everything here runs in `O(description)` — no tensor is allocated and
//! no predictor is invoked — so the co-search pipeline can gate every
//! configuration up front and the search engines can filter illegal
//! points cheaply. Findings come back as [`Diagnostic`]s with stable
//! codes ([`codes`]) collected into a [`Report`]:
//!
//! - `A3CS-E0xx` — shape-inference errors over [`a3cs_nn`] layer
//!   descriptors and [`a3cs_nas`] supernet/derived architectures
//!   ([`check_layers`], [`check_arch`], [`check_supernet`]);
//! - `A3CS-E1xx` — accelerator-legality errors against the ZC706
//!   resource model ([`check_accelerator`], [`check_search_setup`]);
//! - `A3CS-W2xx` — numerics/performance warnings (legal but hazardous).
//!
//! The [`lint`] module and the `lint` binary implement the workspace
//! code-health ratchet: the panic-site census and `#[must_use]` hygiene
//! (`A3CS-L31x`), plus the determinism catalog (`A3CS-L30x`) that
//! mechanically guards the bit-identity contract — nondeterministic
//! collection order, wall-clock reads, raw thread spawns, ambient RNGs,
//! lossy checkpoint casts and an `unsafe` ratchet. Both run on the
//! token-level scanner in [`token`], so comments, string literals and
//! `#[cfg(test)]` regions can never produce findings.
//!
//! # Example
//!
//! ```
//! use a3cs_check::{check_accelerator, codes};
//! use a3cs_accel::{FpgaTarget, SearchSpace};
//!
//! let space = SearchSpace::default();
//! let n = space.knob_sizes(2, 4).len();
//! let accel = space.decode(2, 4, &vec![0; n]);
//! let report = check_accelerator(&accel, 4, &FpgaTarget::zc706());
//! assert!(report.is_clean(), "{report}");
//! ```

#![deny(missing_docs)]

mod accel;
mod diag;
mod lint;
mod shape;
pub mod token;

pub use accel::{check_accelerator, check_accelerator_structure, check_search_setup};
pub use diag::{codes, Diagnostic, Report, Severity};
pub use lint::{
    compare, count_hits, format_allowlist, hits_to_report, parse_allowlist, scan_source,
    LintCategory, LintCounts, LintHit, LintOutcome, ALL_CATEGORIES,
};
pub use shape::{arch_layer_descs, check_arch, check_layers, check_supernet, max_arch_depth};
