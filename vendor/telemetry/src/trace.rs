//! Collected trace data and its sinks: JSONL structured events, Chrome
//! trace (`chrome://tracing` / Perfetto) export, and the in-memory
//! [`TelemetrySummary`] aggregator. JSON is emitted by hand — the crate is
//! dependency-free by design.

use crate::metrics::{Histogram, MetricsSnapshot};
use crate::summary::{PhaseStat, TelemetrySummary};
use crate::PoolWorkerStats;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Typed payload attached to every span and instant record. Replaces the
/// historical single `u64` argument: records now carry the argument plus
/// the ambient fleet-session id and supervised-retry attempt captured at
/// record time (see `with_session` / `with_retry`). Fields that are `None`
/// are omitted from every serialization, so traces recorded outside any
/// session/retry scope serialize exactly as they did before the payload
/// existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Payload {
    /// Optional integer argument (e.g. iteration index).
    pub arg: Option<u64>,
    /// Fleet session the record was produced under, if any.
    pub session: Option<u64>,
    /// Supervised retry attempt the record was produced under (1 = first
    /// retry after the initial attempt failed), if any.
    pub retry: Option<u32>,
}

impl Payload {
    /// Payload carrying only an integer argument.
    #[must_use]
    pub fn with_arg(arg: u64) -> Payload {
        Payload { arg: Some(arg), session: None, retry: None }
    }
}

/// A closed span: a named interval on one thread, with optional parent and
/// a typed [`Payload`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique span id (never 0).
    pub id: u64,
    /// Id of the span this one was opened under, if any.
    pub parent: Option<u64>,
    /// Static span name (e.g. `"rollout"`).
    pub name: &'static str,
    /// Dense tag of the thread the span ran on.
    pub tid: u64,
    /// Open timestamp, nanoseconds since the telemetry epoch.
    pub begin_ns: u64,
    /// Close timestamp, nanoseconds since the telemetry epoch.
    pub end_ns: u64,
    /// Typed payload (argument, session id, retry attempt).
    pub payload: Payload,
}

/// A point-in-time event with a free-form detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstantRecord {
    /// Static event name (e.g. `"rolled_back"`).
    pub name: &'static str,
    /// Free-form detail payload.
    pub detail: String,
    /// Dense tag of the thread the event fired on.
    pub tid: u64,
    /// Timestamp, nanoseconds since the telemetry epoch.
    pub at_ns: u64,
    /// Typed payload (session id, retry attempt; `arg` unused for events).
    pub payload: Payload,
}

/// One collected record, in completion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A closed span.
    Span(SpanRecord),
    /// An instant event.
    Instant(InstantRecord),
}

/// Everything one collection window produced: records in completion order,
/// metric values, and per-lane pool stats.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Closed spans and instant events, in completion order.
    pub records: Vec<Record>,
    /// Metric values at drain/snapshot time.
    pub metrics: MetricsSnapshot,
    /// Per-lane pool busy time and task counts.
    pub pool: Vec<PoolWorkerStats>,
}

impl Trace {
    /// True when nothing at all was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
            && self.metrics.counters.is_empty()
            && self.metrics.gauges.is_empty()
            && self.metrics.histograms.is_empty()
            && self.pool.is_empty()
    }

    /// Spans only, in completion order.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.records.iter().filter_map(|r| match r {
            Record::Span(s) => Some(s),
            Record::Instant(_) => None,
        })
    }

    /// Instant events only, in completion order.
    pub fn instants(&self) -> impl Iterator<Item = &InstantRecord> {
        self.records.iter().filter_map(|r| match r {
            Record::Instant(i) => Some(i),
            Record::Span(_) => None,
        })
    }

    /// A copy with every timestamp replaced by its rank among all distinct
    /// timestamps (0, 1, 2, …), span ids renumbered in appearance order
    /// (from 1), and thread tags renumbered in appearance order (from 0).
    /// Parents that refer to spans absent from this trace (still open at
    /// drain time) become `None`. This makes traces from real runs
    /// comparable against golden fixtures.
    #[must_use]
    pub fn normalized(&self) -> Trace {
        let mut stamps: Vec<u64> = Vec::new();
        for r in &self.records {
            match r {
                Record::Span(s) => stamps.extend([s.begin_ns, s.end_ns]),
                Record::Instant(i) => stamps.push(i.at_ns),
            }
        }
        stamps.sort_unstable();
        stamps.dedup();
        let stamp_of = |ns: u64| -> u64 {
            match stamps.binary_search(&ns) {
                Ok(rank) => rank as u64,
                Err(_) => 0,
            }
        };

        let mut id_map: BTreeMap<u64, u64> = BTreeMap::new();
        let mut tid_map: BTreeMap<u64, u64> = BTreeMap::new();
        let map_tid = |tid: u64, tid_map: &mut BTreeMap<u64, u64>| -> u64 {
            let next = tid_map.len() as u64;
            *tid_map.entry(tid).or_insert(next)
        };
        for r in &self.records {
            if let Record::Span(s) = r {
                let next = id_map.len() as u64 + 1;
                id_map.entry(s.id).or_insert(next);
            }
        }

        let records = self
            .records
            .iter()
            .map(|r| match r {
                Record::Span(s) => Record::Span(SpanRecord {
                    id: id_map.get(&s.id).copied().unwrap_or(0),
                    parent: s.parent.and_then(|p| id_map.get(&p).copied()),
                    name: s.name,
                    tid: map_tid(s.tid, &mut tid_map),
                    begin_ns: stamp_of(s.begin_ns),
                    end_ns: stamp_of(s.end_ns),
                    payload: s.payload,
                }),
                Record::Instant(i) => Record::Instant(InstantRecord {
                    name: i.name,
                    detail: i.detail.clone(),
                    tid: map_tid(i.tid, &mut tid_map),
                    at_ns: stamp_of(i.at_ns),
                    payload: i.payload,
                }),
            })
            .collect();
        Trace { records, metrics: self.metrics.clone(), pool: self.pool.clone() }
    }

    /// A copy keeping only the records whose payload session id equals
    /// `session` (`None` matches records produced outside any session
    /// scope — so filtering a solo, un-scoped trace by `None` is the
    /// identity on records). Metrics and pool stats are process-global and
    /// are carried over unchanged.
    #[must_use]
    pub fn for_session(&self, session: Option<u64>) -> Trace {
        let records = self
            .records
            .iter()
            .filter(|r| {
                let payload = match r {
                    Record::Span(s) => &s.payload,
                    Record::Instant(i) => &i.payload,
                };
                payload.session == session
            })
            .cloned()
            .collect();
        Trace { records, metrics: self.metrics.clone(), pool: self.pool.clone() }
    }

    /// Serialize as JSONL: one JSON object per line — every record in
    /// completion order, then counters, gauges, histograms and pool lanes.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            record_jsonl_line(r, &mut out);
        }
        for c in &self.metrics.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            json_string(c.name, &mut out);
            let _ = writeln!(out, ",\"value\":{}}}", c.value);
        }
        for g in &self.metrics.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            json_string(g.name, &mut out);
            let _ = writeln!(out, ",\"value\":{}}}", json_f64(g.value));
        }
        for h in &self.metrics.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            json_string(h.name, &mut out);
            let _ = write!(out, ",\"count\":{},\"buckets\":[", h.total());
            let mut first = true;
            for (idx, &n) in h.counts.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"lt\":{},\"n\":{}}}",
                    json_opt_u64(Histogram::bucket_upper_bound(idx)),
                    n
                );
            }
            out.push_str("]}\n");
        }
        for w in &self.pool {
            let _ = writeln!(
                out,
                "{{\"type\":\"pool_worker\",\"lane\":{},\"busy_ns\":{},\"tasks\":{}}}",
                w.lane, w.busy_ns, w.tasks
            );
        }
        out
    }

    /// Serialize as a Chrome trace (the JSON object format understood by
    /// `chrome://tracing` and <https://ui.perfetto.dev>): spans become
    /// complete (`"ph":"X"`) events, instant records become thread-scoped
    /// instant (`"ph":"i"`) events. Timestamps are microseconds.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for r in &self.records {
            if !first {
                out.push(',');
            }
            first = false;
            match r {
                Record::Span(s) => {
                    out.push_str("\n{\"name\":");
                    json_string(s.name, &mut out);
                    let _ = write!(
                        out,
                        ",\"cat\":\"a3cs\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"id\":{}",
                        micros(s.begin_ns),
                        micros(s.end_ns.saturating_sub(s.begin_ns)),
                        s.tid,
                        s.id
                    );
                    if let Some(parent) = s.parent {
                        let _ = write!(out, ",\"parent\":{parent}");
                    }
                    if let Some(arg) = s.payload.arg {
                        let _ = write!(out, ",\"arg\":{arg}");
                    }
                    if let Some(session) = s.payload.session {
                        let _ = write!(out, ",\"session\":{session}");
                    }
                    if let Some(retry) = s.payload.retry {
                        let _ = write!(out, ",\"retry\":{retry}");
                    }
                    out.push_str("}}");
                }
                Record::Instant(i) => {
                    out.push_str("\n{\"name\":");
                    json_string(i.name, &mut out);
                    let _ = write!(
                        out,
                        ",\"cat\":\"a3cs\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"detail\":",
                        micros(i.at_ns),
                        i.tid
                    );
                    json_string(&i.detail, &mut out);
                    if let Some(session) = i.payload.session {
                        let _ = write!(out, ",\"session\":{session}");
                    }
                    if let Some(retry) = i.payload.retry {
                        let _ = write!(out, ",\"retry\":{retry}");
                    }
                    out.push_str("}}");
                }
            }
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Write the JSONL serialization to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors from the write.
    pub fn write_jsonl(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Write the Chrome-trace serialization to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors from the write.
    pub fn write_chrome_trace(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_chrome_trace())
    }

    /// Aggregate into a [`TelemetrySummary`]: per-phase call counts and
    /// total durations (spans grouped by name), counters, gauges, instant
    /// event counts and pool lane stats.
    #[must_use]
    pub fn summary(&self) -> TelemetrySummary {
        let mut phases: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        let mut begin = u64::MAX;
        let mut end = 0u64;
        for s in self.spans() {
            let slot = phases.entry(s.name).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += s.end_ns.saturating_sub(s.begin_ns);
            begin = begin.min(s.begin_ns);
            end = end.max(s.end_ns);
        }
        let mut events: BTreeMap<&'static str, u64> = BTreeMap::new();
        for i in self.instants() {
            *events.entry(i.name).or_insert(0) += 1;
        }
        TelemetrySummary {
            wall_ns: end.saturating_sub(if begin == u64::MAX { end } else { begin }),
            phases: phases
                .into_iter()
                .map(|(name, (calls, total_ns))| PhaseStat {
                    name: name.to_string(),
                    calls,
                    total_ns,
                })
                .collect(),
            counters: self
                .metrics
                .counters
                .iter()
                .map(|c| (c.name.to_string(), c.value))
                .collect(),
            gauges: self.metrics.gauges.iter().map(|g| (g.name.to_string(), g.value)).collect(),
            events: events.into_iter().map(|(name, n)| (name.to_string(), n)).collect(),
            pool: self.pool.clone(),
        }
    }
}

/// Append the JSONL line for one record (with trailing newline). Shared by
/// [`Trace::to_jsonl`] and the live streaming sink so a streamed line is
/// byte-identical to the line the buffered trace would emit for the same
/// record. Payload session/retry fields are emitted only when present,
/// keeping session-free traces byte-identical to the pre-payload format.
pub(crate) fn record_jsonl_line(r: &Record, out: &mut String) {
    match r {
        Record::Span(s) => {
            let _ = write!(
                out,
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":",
                s.id,
                json_opt_u64(s.parent)
            );
            json_string(s.name, out);
            let _ = write!(
                out,
                ",\"tid\":{},\"begin_ns\":{},\"end_ns\":{},\"arg\":{}",
                s.tid,
                s.begin_ns,
                s.end_ns,
                json_opt_u64(s.payload.arg)
            );
            payload_jsonl_suffix(&s.payload, out);
            out.push_str("}\n");
        }
        Record::Instant(i) => {
            out.push_str("{\"type\":\"event\",\"name\":");
            json_string(i.name, out);
            out.push_str(",\"detail\":");
            json_string(&i.detail, out);
            let _ = write!(out, ",\"tid\":{},\"at_ns\":{}", i.tid, i.at_ns);
            payload_jsonl_suffix(&i.payload, out);
            out.push_str("}\n");
        }
    }
}

fn payload_jsonl_suffix(payload: &Payload, out: &mut String) {
    if let Some(session) = payload.session {
        let _ = write!(out, ",\"session\":{session}");
    }
    if let Some(retry) = payload.retry {
        let _ = write!(out, ",\"retry\":{retry}");
    }
}

fn micros(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on f64 never prints an exponent for the magnitudes we emit,
        // and always round-trips; ensure it still parses as a JSON number.
        s
    } else {
        "null".to_string()
    }
}

fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// A place a finished [`Trace`] can be exported to.
pub trait Sink {
    /// Consume one trace.
    ///
    /// # Errors
    /// Propagates I/O errors from the underlying writer, if any.
    fn consume(&mut self, trace: &Trace) -> io::Result<()>;
}

/// Sink writing the JSONL event stream to a file.
pub struct JsonlSink {
    path: PathBuf,
}

impl JsonlSink {
    /// Sink writing to `path` (truncates on each consume).
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> JsonlSink {
        JsonlSink { path: path.into() }
    }
}

impl Sink for JsonlSink {
    fn consume(&mut self, trace: &Trace) -> io::Result<()> {
        trace.write_jsonl(&self.path)
    }
}

/// Sink writing a Chrome trace to a file.
pub struct ChromeTraceSink {
    path: PathBuf,
}

impl ChromeTraceSink {
    /// Sink writing to `path` (truncates on each consume).
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> ChromeTraceSink {
        ChromeTraceSink { path: path.into() }
    }
}

impl Sink for ChromeTraceSink {
    fn consume(&mut self, trace: &Trace) -> io::Result<()> {
        trace.write_chrome_trace(&self.path)
    }
}

/// Sink keeping the aggregated [`TelemetrySummary`] in memory.
#[derive(Default)]
pub struct MemorySink {
    /// Summary of the most recently consumed trace.
    pub summary: Option<TelemetrySummary>,
}

impl MemorySink {
    /// An empty in-memory sink.
    #[must_use]
    pub fn new() -> MemorySink {
        MemorySink::default()
    }
}

impl Sink for MemorySink {
    fn consume(&mut self, trace: &Trace) -> io::Result<()> {
        self.summary = Some(trace.summary());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CounterSample, GaugeSample, HistogramSample, HISTOGRAM_BUCKETS};

    fn sample_trace() -> Trace {
        let mut hist_counts = vec![0u64; HISTOGRAM_BUCKETS];
        hist_counts[0] = 1;
        hist_counts[2] = 2;
        hist_counts[HISTOGRAM_BUCKETS - 1] = 1;
        Trace {
            records: vec![
                Record::Span(SpanRecord {
                    id: 41,
                    parent: None,
                    name: "iteration",
                    tid: 7,
                    begin_ns: 1000,
                    end_ns: 5000,
                    payload: Payload::with_arg(3),
                }),
                Record::Instant(InstantRecord {
                    name: "rolled_back",
                    detail: "iteration 3 \"bad\"".to_string(),
                    tid: 9,
                    at_ns: 2500,
                    payload: Payload::default(),
                }),
                Record::Span(SpanRecord {
                    id: 44,
                    parent: Some(41),
                    name: "rollout",
                    tid: 9,
                    begin_ns: 1500,
                    end_ns: 4000,
                    payload: Payload::default(),
                }),
            ],
            metrics: MetricsSnapshot {
                counters: vec![CounterSample { name: "env.steps", value: 128 }],
                gauges: vec![GaugeSample { name: "loss.total", value: 1.5 }],
                histograms: vec![HistogramSample { name: "gemm.macs.per_call", counts: hist_counts }],
            },
            pool: vec![PoolWorkerStats { lane: 0, busy_ns: 900, tasks: 2 }],
        }
    }

    #[test]
    fn normalization_is_stable_and_dense() {
        let n = sample_trace().normalized();
        let spans: Vec<&SpanRecord> = n.spans().collect();
        assert_eq!(spans[0].id, 1);
        assert_eq!(spans[1].id, 2);
        assert_eq!(spans[1].parent, Some(1));
        assert_eq!(spans[0].tid, 0);
        assert_eq!(spans[1].tid, 1);
        // Timestamps 1000 < 1500 < 2500 < 4000 < 5000 → ranks 0..5.
        assert_eq!((spans[0].begin_ns, spans[0].end_ns), (0, 4));
        assert_eq!((spans[1].begin_ns, spans[1].end_ns), (1, 3));
        let inst: Vec<&InstantRecord> = n.instants().collect();
        assert_eq!(inst[0].at_ns, 2);
        assert_eq!(inst[0].tid, 1);
        // Normalization is idempotent.
        assert_eq!(n.normalized(), n);
    }

    #[test]
    fn jsonl_golden() {
        let got = sample_trace().normalized().to_jsonl();
        let want = concat!(
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"iteration\",\"tid\":0,\"begin_ns\":0,\"end_ns\":4,\"arg\":3}\n",
            "{\"type\":\"event\",\"name\":\"rolled_back\",\"detail\":\"iteration 3 \\\"bad\\\"\",\"tid\":1,\"at_ns\":2}\n",
            "{\"type\":\"span\",\"id\":2,\"parent\":1,\"name\":\"rollout\",\"tid\":1,\"begin_ns\":1,\"end_ns\":3,\"arg\":null}\n",
            "{\"type\":\"counter\",\"name\":\"env.steps\",\"value\":128}\n",
            "{\"type\":\"gauge\",\"name\":\"loss.total\",\"value\":1.5}\n",
            "{\"type\":\"histogram\",\"name\":\"gemm.macs.per_call\",\"count\":4,\"buckets\":[{\"lt\":1,\"n\":1},{\"lt\":4,\"n\":2},{\"lt\":null,\"n\":1}]}\n",
            "{\"type\":\"pool_worker\",\"lane\":0,\"busy_ns\":900,\"tasks\":2}\n",
        );
        assert_eq!(got, want);
    }

    #[test]
    fn chrome_trace_golden() {
        let got = sample_trace().normalized().to_chrome_trace();
        let want = concat!(
            "{\"traceEvents\":[\n",
            "{\"name\":\"iteration\",\"cat\":\"a3cs\",\"ph\":\"X\",\"ts\":0.000,\"dur\":0.004,\"pid\":1,\"tid\":0,\"args\":{\"id\":1,\"arg\":3}},\n",
            "{\"name\":\"rolled_back\",\"cat\":\"a3cs\",\"ph\":\"i\",\"s\":\"t\",\"ts\":0.002,\"pid\":1,\"tid\":1,\"args\":{\"detail\":\"iteration 3 \\\"bad\\\"\"}},\n",
            "{\"name\":\"rollout\",\"cat\":\"a3cs\",\"ph\":\"X\",\"ts\":0.001,\"dur\":0.002,\"pid\":1,\"tid\":1,\"args\":{\"id\":2,\"parent\":1}}\n",
            "],\"displayTimeUnit\":\"ms\"}\n",
        );
        assert_eq!(got, want);
    }

    #[test]
    fn payload_fields_serialize_only_when_present() {
        let trace = Trace {
            records: vec![
                Record::Span(SpanRecord {
                    id: 1,
                    parent: None,
                    name: "iteration",
                    tid: 0,
                    begin_ns: 0,
                    end_ns: 2,
                    payload: Payload { arg: Some(4), session: Some(2), retry: Some(1) },
                }),
                Record::Instant(InstantRecord {
                    name: "phase-failed",
                    detail: "boom".to_string(),
                    tid: 0,
                    at_ns: 1,
                    payload: Payload { arg: None, session: Some(2), retry: None },
                }),
            ],
            metrics: MetricsSnapshot::default(),
            pool: Vec::new(),
        };
        let want = concat!(
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"iteration\",\"tid\":0,\"begin_ns\":0,\"end_ns\":2,\"arg\":4,\"session\":2,\"retry\":1}\n",
            "{\"type\":\"event\",\"name\":\"phase-failed\",\"detail\":\"boom\",\"tid\":0,\"at_ns\":1,\"session\":2}\n",
        );
        assert_eq!(trace.to_jsonl(), want);
        let chrome = trace.to_chrome_trace();
        assert!(chrome.contains("\"session\":2,\"retry\":1"), "{chrome}");
    }

    #[test]
    fn for_session_filters_records_and_keeps_metrics() {
        let mut trace = sample_trace();
        if let Record::Span(s) = &mut trace.records[0] {
            s.payload.session = Some(9);
        }
        let mine = trace.for_session(Some(9));
        assert_eq!(mine.records.len(), 1);
        assert_eq!(mine.spans().next().map(|s| s.name), Some("iteration"));
        assert_eq!(mine.metrics, trace.metrics);
        let unscoped = trace.for_session(None);
        assert_eq!(unscoped.records.len(), 2);
        // A trace with no session scoping filters to itself under `None`.
        assert_eq!(sample_trace().for_session(None), sample_trace());
    }

    #[test]
    fn summary_aggregates_phases_and_events() {
        let s = sample_trace().summary();
        assert_eq!(s.wall_ns, 4000);
        assert_eq!(s.phases.len(), 2);
        let iter = s.phase("iteration").expect("iteration phase");
        assert_eq!((iter.calls, iter.total_ns), (1, 4000));
        let rollout = s.phase("rollout").expect("rollout phase");
        assert_eq!((rollout.calls, rollout.total_ns), (1, 2500));
        assert_eq!(s.counter("env.steps"), 128);
        assert_eq!(s.event_count("rolled_back"), 1);
        assert_eq!(s.pool.len(), 1);
        assert!(!s.is_empty());
        assert!(TelemetrySummary::default().is_empty());
    }

    #[test]
    fn memory_sink_captures_summary() {
        let mut sink = MemorySink::new();
        sink.consume(&sample_trace()).expect("in-memory sink cannot fail");
        let summary = sink.summary.expect("summary captured");
        assert_eq!(summary.counter("env.steps"), 128);
    }
}
