//! Fleet supervisor: multi-session co-search orchestration with
//! per-session fault domains (DESIGN.md §15).
//!
//! A [`Fleet`] runs N concurrent [`CoSearch`] sessions sharded over one
//! bounded worker budget. Sessions are *cooperatively* interleaved on the
//! submitting thread — a `CoSearch` is intentionally not `Send` — one
//! [`GuardedRun::step`] per scheduler tick, while the data-parallel work
//! inside each step fans out over the shared [`ThreadPool`]. Because
//! every session's trajectory depends only on its own config and seed
//! (never on the interleaving or the lane count), a fleet session is
//! bit-identical to the same search run solo.
//!
//! Fault domains are per session:
//!
//! - a [`SearchError`] (scheduled abort, supervised retry exhaustion) or a
//!   contained panic marks only that session; siblings proceed untouched;
//! - a faulted session restarts from its last good checkpoint (PR 3's
//!   fingerprint-verified store, namespaced per session) after a
//!   deterministic exponential backoff measured in scheduler ticks,
//!   bounded by [`FleetConfig::max_session_restarts`];
//! - restart exhaustion is a typed terminal state
//!   ([`SessionState::Failed`]), never a panic, and never poisons the
//!   scheduler;
//! - fleet-level backpressure: accumulated faults step a
//!   [`DegradationLadder`] down, shrinking the shared pool budget.
//!
//! Every fleet lifecycle action is recorded as a `session-*`
//! [`RobustnessEventKind`] and tagged (via `telemetry::with_session`) with
//! the session id, so traces and logs split cleanly per fault domain.

#![deny(missing_docs)]

use a3cs_check::Report;
use a3cs_core::{
    preflight, CheckpointFormat, CoSearch, CoSearchConfig, CoSearchResult, DegradationLadder,
    DurabilityConfig, FaultPlan, GuardedRun, RobustnessEventKind, RobustnessLog, SearchError,
    StepOutcome,
};
use a3cs_drl::EnvFactory;
use a3cs_envs::Environment;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use threadpool::ThreadPool;

mod json;
pub use json::FLEET_REPORT_SCHEMA;

/// SplitMix64: the scheduler's only source of (seeded, deterministic)
/// mixing — no ambient RNG anywhere in the fleet.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Best-effort description of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&'static str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Stable identifier of a submitted session (its submission index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// A session id from its submission index. Ids minted this way only
    /// match a fleet's own sessions when the index does; the constructor
    /// exists so external mirrors (solo-run observability snapshots,
    /// report deserializers) can build [`SessionReport`]s.
    #[must_use]
    pub const fn new(index: u64) -> SessionId {
        SessionId(index)
    }

    /// The submission index (also the telemetry `session` tag).
    #[must_use]
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{:04}", self.0)
    }
}

/// Why a session reached [`SessionState::Failed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionFailure {
    /// The guarded run surfaced a typed error (scheduled abort, supervised
    /// retry exhaustion).
    Search(SearchError),
    /// The session panicked outside any supervised phase; the panic was
    /// contained at the fleet boundary.
    Panicked(String),
    /// The search could not be (re)constructed.
    Rejected(String),
}

impl fmt::Display for SessionFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionFailure::Search(e) => write!(f, "{e}"),
            SessionFailure::Panicked(msg) => write!(f, "panicked: {msg}"),
            SessionFailure::Rejected(msg) => write!(f, "rejected: {msg}"),
        }
    }
}

/// Lifecycle state of a fleet session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionState {
    /// Admitted, not yet started.
    Queued,
    /// Holds a live [`GuardedRun`]; advances one step per scheduled tick.
    Running,
    /// Faulted with restart budget left; re-admitted (rebuilding the
    /// search, auto-resuming from its checkpoint store) once the fleet
    /// tick counter reaches `until_tick`.
    Backoff {
        /// First tick at which the session may run again.
        until_tick: u64,
    },
    /// Completed; the [`CoSearchResult`] is in the session's report.
    Done,
    /// Terminal failure: fault with no restart budget left (or an
    /// unreconstructable search). Siblings are unaffected.
    Failed(SessionFailure),
    /// Cancelled via [`Fleet::cancel`]. The checkpoint store is left
    /// intact, so [`Fleet::resume`] (or a later fleet) can pick the
    /// session back up from its last persisted iteration.
    Cancelled,
}

impl SessionState {
    /// `true` for states the scheduler never picks again.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            SessionState::Done | SessionState::Failed(_) | SessionState::Cancelled
        )
    }

    /// Stable lowercase label used by the JSON schema and the metrics
    /// exposition (`queued`, `running`, `backoff`, `done`, `failed`,
    /// `cancelled`). These strings are part of the wire format — never
    /// rename one.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SessionState::Queued => "queued",
            SessionState::Running => "running",
            SessionState::Backoff { .. } => "backoff",
            SessionState::Done => "done",
            SessionState::Failed(_) => "failed",
            SessionState::Cancelled => "cancelled",
        }
    }
}

/// Fleet-wide orchestration knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Lane count of the shared worker pool every session's data-parallel
    /// work runs on (results are bit-identical at any value ≥ 1).
    pub worker_budget: usize,
    /// Restarts a faulted session may spend before it goes
    /// [`SessionState::Failed`]. `0` makes every fault terminal.
    pub max_session_restarts: u32,
    /// Backoff before restart `k` is `base << (k-1)` ticks, capped below.
    pub backoff_base_ticks: u64,
    /// Upper bound on any single backoff delay, in ticks.
    pub backoff_cap_ticks: u64,
    /// Fleet-level [`DegradationLadder`] threshold: every this many
    /// session faults, the shared pool budget halves. `0` disables.
    pub ladder_fault_threshold: u32,
    /// Seeds the scheduler's round-robin phase (and nothing else — the
    /// schedule never influences any session's trajectory).
    pub scheduler_seed: u64,
    /// When set, sessions without an explicit checkpoint dir get a
    /// namespaced store at `<root>/session-<id>`, enabling restart and
    /// resume.
    pub checkpoint_root: Option<PathBuf>,
    /// Checkpoint encoding applied to every fleet session
    /// ([`CheckpointFormat::Binary`] by default — the compact codec).
    pub checkpoint_format: CheckpointFormat,
    /// Drop a session's injected-fault plan when restarting it, so a
    /// deterministic once-per-run fault does not re-fire on every attempt.
    pub clear_fault_plan_on_restart: bool,
    /// Checkpoint durability knobs applied to every fleet session. Delta
    /// frames are **on** by default here (unlike solo runs): a fleet
    /// checkpoints many sessions against one disk, so the incremental
    /// format's byte savings compound, and resumes scrub the store first.
    pub durability: DurabilityConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            worker_budget: 2,
            max_session_restarts: 1,
            backoff_base_ticks: 1,
            backoff_cap_ticks: 8,
            ladder_fault_threshold: 4,
            scheduler_seed: 0,
            checkpoint_root: None,
            checkpoint_format: CheckpointFormat::Binary,
            clear_fault_plan_on_restart: true,
            durability: DurabilityConfig {
                delta: true,
                ..DurabilityConfig::default()
            },
        }
    }
}

/// Snapshot of one session's progress, from [`Fleet::poll`].
#[derive(Debug, Clone)]
pub struct SessionStatus {
    /// Current lifecycle state.
    pub state: SessionState,
    /// Env steps consumed by the live run (0 when none is open).
    pub steps: u64,
    /// Outer-loop iteration of the live run (0 when none is open).
    pub iteration: u64,
    /// Restarts spent so far.
    pub restarts: u32,
    /// Checkpoint bytes persisted across all of this session's attempts.
    pub checkpoint_bytes_written: u64,
    /// Checkpoint restores (auto-resumes + rollbacks) across all attempts.
    pub checkpoint_restores: u64,
    /// Delta checkpoint frames persisted across all attempts.
    pub checkpoint_delta_frames: u64,
    /// Broken frames quarantined by resume-time scrubs across all attempts.
    pub checkpoint_quarantined: u64,
}

/// Final per-session record inside a [`FleetReport`].
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The session's id.
    pub id: SessionId,
    /// Caller-supplied display name.
    pub name: String,
    /// Terminal (or last observed) state.
    pub state: SessionState,
    /// Env steps consumed — live counter while the session runs, the
    /// result's total once it is done.
    pub steps: u64,
    /// Restarts spent.
    pub restarts: u32,
    /// The search result, for [`SessionState::Done`] sessions.
    pub result: Option<CoSearchResult>,
    /// Robustness log of the session's last attempt (resumes, rollbacks,
    /// injected faults, supervised retries).
    pub robustness: RobustnessLog,
    /// Fleet lifecycle events for this session (`session-*` kinds, with
    /// the `iteration` field holding the fleet tick).
    pub fleet_events: RobustnessLog,
    /// Checkpoint bytes persisted across all attempts.
    pub checkpoint_bytes_written: u64,
    /// Checkpoint restores performed across all attempts.
    pub checkpoint_restores: u64,
    /// Delta checkpoint frames persisted across all attempts.
    pub checkpoint_delta_frames: u64,
    /// Broken frames quarantined by resume-time scrubs across all attempts.
    pub checkpoint_quarantined: u64,
}

/// Fleet-wide aggregation returned by [`Fleet::run_to_completion`].
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One report per submitted session, in submission order.
    pub sessions: Vec<SessionReport>,
    /// Scheduler ticks consumed.
    pub ticks: u64,
    /// Final shared-pool budget (after any ladder steps).
    pub pool_budget: usize,
    /// Session faults observed fleet-wide.
    pub total_faults: u64,
    /// Robustness event counts by label, aggregated over every session's
    /// run log and fleet log.
    pub event_totals: BTreeMap<String, usize>,
}

impl FleetReport {
    /// The report for `id`, if it was part of this fleet.
    #[must_use]
    pub fn session(&self, id: SessionId) -> Option<&SessionReport> {
        self.sessions.iter().find(|s| s.id == id)
    }
}

/// Read-only hook invoked at every tick boundary (including idle ticks
/// that only advance the clock), after the tick's work unit — if any —
/// has fully settled. The fleet hands the observer `&Fleet`, so an
/// observer can [`Fleet::poll`] sessions or take a
/// [`Fleet::report_snapshot`], but can never mutate fleet state: the
/// observe-only guarantee (observed run bit-identical to unobserved,
/// DESIGN.md §16) holds by construction.
pub trait TickObserver {
    /// Called once per completed scheduler tick.
    fn on_tick(&mut self, fleet: &Fleet<'_>);
}

/// What one scheduled work unit did.
enum UnitOutcome {
    /// A queued/backed-off session (re)built its search and opened a run.
    Started,
    /// One co-search step ran.
    Progress,
    /// The run completed; the result is stored.
    Finished,
}

struct Session<'f> {
    id: SessionId,
    name: String,
    cfg: CoSearchConfig,
    seed: u64,
    factory: Box<EnvFactory<'f>>,
    state: SessionState,
    search: Option<CoSearch>,
    run: Option<GuardedRun>,
    restarts_used: u32,
    fleet_log: RobustnessLog,
    last_robustness: RobustnessLog,
    result: Option<CoSearchResult>,
    bytes_written: u64,
    restore_count: u64,
    delta_frames: u64,
    quarantined: u64,
}

/// The multi-session orchestrator. See the crate docs for the model.
pub struct Fleet<'f> {
    config: FleetConfig,
    sessions: Vec<Session<'f>>,
    pool: Arc<ThreadPool>,
    ladder: DegradationLadder,
    tick: u64,
    total_faults: u64,
    observer: Option<Box<dyn TickObserver + 'f>>,
}

impl<'f> Fleet<'f> {
    /// A fleet with no sessions, its shared pool sized to
    /// `config.worker_budget` (isolation mode, so worker panics are
    /// contained per lane, same as supervised execution).
    #[must_use]
    pub fn new(config: FleetConfig) -> Fleet<'f> {
        let budget = config.worker_budget.max(1);
        let ladder = DegradationLadder::new(budget, config.ladder_fault_threshold);
        let pool = Arc::new(ThreadPool::new_isolated(budget));
        Fleet {
            config,
            sessions: Vec::new(),
            pool,
            ladder,
            tick: 0,
            total_faults: 0,
            observer: None,
        }
    }

    /// Attach a [`TickObserver`] notified at every tick boundary (an
    /// `a3cs-obs` publisher, a progress logger, ...). At most one observer
    /// is held; attaching again replaces the previous one.
    pub fn attach_observer(&mut self, observer: Box<dyn TickObserver + 'f>) {
        self.observer = Some(observer);
    }

    /// Notify the attached observer (if any) with the fleet in a settled
    /// state. The take/put-back dance lets the observer borrow `&self`
    /// while the fleet still owns it.
    fn notify_observer(&mut self) {
        if let Some(mut observer) = self.observer.take() {
            observer.on_tick(self);
            self.observer = Some(observer);
        }
    }

    /// Admit a session. Admission control runs [`preflight`] on the
    /// config; a config that fails any static check is rejected with the
    /// full diagnostic [`Report`] and never consumes a scheduler slot.
    ///
    /// The config is normalised for fleet execution: `threads` is cleared
    /// (sessions share the fleet pool and must not reconfigure the global
    /// one), the fleet's [`FleetConfig::checkpoint_format`] is applied,
    /// and — when [`FleetConfig::checkpoint_root`] is set and the session
    /// has no explicit dir — the checkpoint store is namespaced to
    /// `<root>/session-<id>`. None of this changes the search trajectory,
    /// so the session stays bit-identical to a solo run of `cfg`.
    ///
    /// # Errors
    ///
    /// The [`Report`] of every static-check failure, when there are any.
    pub fn submit(
        &mut self,
        name: impl Into<String>,
        mut cfg: CoSearchConfig,
        seed: u64,
        factory: impl Fn(u64) -> Box<dyn Environment> + 'f,
    ) -> Result<SessionId, Report> {
        let report = preflight(&cfg);
        if !report.is_clean() {
            return Err(report);
        }
        let id = SessionId(self.sessions.len() as u64);
        cfg.threads = None;
        cfg.fault.format = self.config.checkpoint_format;
        cfg.fault.durability = self.config.durability;
        if cfg.fault.checkpoint_dir.is_none() {
            if let Some(root) = &self.config.checkpoint_root {
                cfg.fault.checkpoint_dir = Some(root.join(id.to_string()));
            }
        }
        self.sessions.push(Session {
            id,
            name: name.into(),
            cfg,
            seed,
            factory: Box::new(factory),
            state: SessionState::Queued,
            search: None,
            run: None,
            restarts_used: 0,
            fleet_log: RobustnessLog::new(),
            last_robustness: RobustnessLog::new(),
            result: None,
            bytes_written: 0,
            restore_count: 0,
            delta_frames: 0,
            quarantined: 0,
        });
        Ok(id)
    }

    /// Progress snapshot for `id` (see [`SessionStatus`]).
    #[must_use]
    pub fn poll(&self, id: SessionId) -> Option<SessionStatus> {
        let s = self.sessions.iter().find(|s| s.id == id)?;
        let live_bytes = s.run.as_ref().map_or(0, GuardedRun::checkpoint_bytes_written);
        let live_restores = s.run.as_ref().map_or(0, GuardedRun::checkpoint_restores);
        let live_deltas = s.run.as_ref().map_or(0, GuardedRun::checkpoint_delta_frames);
        let live_quarantined = s.run.as_ref().map_or(0, GuardedRun::checkpoint_quarantined);
        Some(SessionStatus {
            state: s.state.clone(),
            steps: s
                .run
                .as_ref()
                .map(GuardedRun::steps)
                .or_else(|| s.result.as_ref().map(|r| r.steps))
                .unwrap_or(0),
            iteration: s.run.as_ref().map_or(0, GuardedRun::iteration),
            restarts: s.restarts_used,
            checkpoint_bytes_written: s.bytes_written + live_bytes,
            checkpoint_restores: s.restore_count + live_restores,
            checkpoint_delta_frames: s.delta_frames + live_deltas,
            checkpoint_quarantined: s.quarantined + live_quarantined,
        })
    }

    /// Cancel a non-terminal session. Its live run (if any) is dropped
    /// mid-phase; the on-disk checkpoint store is untouched, so the
    /// session is recoverable — [`Fleet::resume`] re-admits it and the
    /// rebuilt run auto-resumes from the last persisted iteration.
    /// Returns `false` for unknown or already-terminal sessions.
    pub fn cancel(&mut self, id: SessionId) -> bool {
        let tick = self.tick;
        let Some(session) = self.sessions.iter_mut().find(|s| s.id == id) else {
            return false;
        };
        if session.state.is_terminal() {
            return false;
        }
        if let Some(run) = session.run.take() {
            session.bytes_written += run.checkpoint_bytes_written();
            session.restore_count += run.checkpoint_restores();
            session.delta_frames += run.checkpoint_delta_frames();
            session.quarantined += run.checkpoint_quarantined();
            session.last_robustness = run.robustness().clone();
        }
        session.search = None;
        telemetry::with_session(Some(session.id.0), || {
            session.fleet_log.push(
                tick,
                RobustnessEventKind::SessionCancelled,
                "cancelled via the session api",
            );
        });
        session.state = SessionState::Cancelled;
        true
    }

    /// Re-admit a cancelled or failed session: back to
    /// [`SessionState::Queued`], so its next scheduled tick rebuilds the
    /// search and auto-resumes from the checkpoint store. The restart
    /// budget is *not* replenished. Returns `false` for unknown sessions
    /// or states other than `Cancelled`/`Failed`.
    pub fn resume(&mut self, id: SessionId) -> bool {
        let Some(session) = self.sessions.iter_mut().find(|s| s.id == id) else {
            return false;
        };
        match session.state {
            SessionState::Cancelled | SessionState::Failed(_) => {
                session.state = SessionState::Queued;
                session.result = None;
                true
            }
            _ => false,
        }
    }

    /// Scheduler ticks consumed so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Current shared-pool budget (the ladder's rung).
    #[must_use]
    pub fn pool_budget(&self) -> usize {
        self.ladder.threads()
    }

    /// Session faults observed so far, fleet-wide.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.total_faults
    }

    fn all_terminal(&self) -> bool {
        self.sessions.iter().all(|s| s.state.is_terminal())
    }

    /// Run one scheduler tick: pick the next runnable session (seeded
    /// round-robin over queued, running, and woken backoff sessions) and
    /// advance it by one work unit. Ticks where every non-terminal
    /// session is still backing off just advance the clock. Returns
    /// `true` while any session is non-terminal.
    pub fn tick(&mut self) -> bool {
        let runnable: Vec<usize> = self
            .sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| match s.state {
                SessionState::Queued | SessionState::Running => true,
                SessionState::Backoff { until_tick } => until_tick <= self.tick,
                _ => false,
            })
            .map(|(i, _)| i)
            .collect();
        self.tick += 1;
        if !runnable.is_empty() {
            // Fair rotation with a seeded phase: every runnable session is
            // visited once per len ticks, whatever the seed. The pick order
            // can never change any session's result — only its timing.
            let phase = splitmix64(self.config.scheduler_seed);
            let pick =
                runnable[((self.tick.wrapping_add(phase)) % runnable.len() as u64) as usize];
            self.step_session(pick);
        }
        self.notify_observer();
        !self.all_terminal()
    }

    /// Drive every session to a terminal state and aggregate the
    /// [`FleetReport`].
    #[must_use]
    pub fn run_to_completion(mut self) -> FleetReport {
        while self.tick() {}
        self.into_report()
    }

    fn step_session(&mut self, idx: usize) {
        let pool = Arc::clone(&self.pool);
        let session = &mut self.sessions[idx];
        let starting = matches!(
            session.state,
            SessionState::Queued | SessionState::Backoff { .. }
        );
        // The whole unit runs tagged with the session id (so every span,
        // metric instant and robustness mirror lands in this session's
        // fault domain) and under the shared fleet pool. catch_unwind is
        // the outermost fault boundary: a panic that escapes supervised
        // containment is converted into a typed session failure.
        let unit: Result<Result<UnitOutcome, SessionFailure>, _> =
            catch_unwind(AssertUnwindSafe(|| {
                telemetry::with_session(Some(session.id.0), || {
                    threadpool::with_pool(pool, || {
                        if starting {
                            let mut search =
                                match CoSearch::try_new(session.cfg.clone(), session.seed) {
                                    Ok(search) => search,
                                    Err(report) => {
                                        return Err(SessionFailure::Rejected(report.to_string()))
                                    }
                                };
                            let run = search.start_run(&session.factory);
                            session.search = Some(search);
                            session.run = Some(run);
                            return Ok(UnitOutcome::Started);
                        }
                        let (Some(mut search), Some(mut run)) =
                            (session.search.take(), session.run.take())
                        else {
                            return Err(SessionFailure::Rejected(
                                "running session lost its search state".to_string(),
                            ));
                        };
                        match run.step(&mut search, &session.factory, None) {
                            Ok(StepOutcome::Ran) => {
                                session.search = Some(search);
                                session.run = Some(run);
                                Ok(UnitOutcome::Progress)
                            }
                            Ok(StepOutcome::Finished) => {
                                session.bytes_written += run.checkpoint_bytes_written();
                                session.restore_count += run.checkpoint_restores();
                                session.delta_frames += run.checkpoint_delta_frames();
                                session.quarantined += run.checkpoint_quarantined();
                                let result = run.finish(&mut search);
                                session.last_robustness = result.robustness.clone();
                                session.result = Some(result);
                                Ok(UnitOutcome::Finished)
                            }
                            Err(e) => {
                                session.bytes_written += run.checkpoint_bytes_written();
                                session.restore_count += run.checkpoint_restores();
                                session.delta_frames += run.checkpoint_delta_frames();
                                session.quarantined += run.checkpoint_quarantined();
                                session.last_robustness = run.robustness().clone();
                                Err(SessionFailure::Search(e))
                            }
                        }
                    })
                })
            }));
        match unit {
            Ok(Ok(UnitOutcome::Started | UnitOutcome::Progress)) => {
                self.sessions[idx].state = SessionState::Running;
            }
            Ok(Ok(UnitOutcome::Finished)) => {
                let session = &mut self.sessions[idx];
                session.state = SessionState::Done;
                session.search = None;
            }
            Ok(Err(failure)) => self.on_fault(idx, failure),
            Err(payload) => self.on_fault(
                idx,
                SessionFailure::Panicked(panic_message(payload.as_ref())),
            ),
        }
    }

    /// One session faulted: contain it to its own domain, apply fleet
    /// backpressure, and either schedule a deterministic backed-off
    /// restart or mark the session terminally failed.
    fn on_fault(&mut self, idx: usize, failure: SessionFailure) {
        self.total_faults += 1;
        // Backpressure: repeated faults step the shared budget down. The
        // replacement pool takes effect from the next scheduled unit;
        // per-session results are lane-count-invariant, so shrinking the
        // pool never changes any trajectory.
        if let Some(n) = self.ladder.record_faults(1) {
            self.pool = Arc::new(ThreadPool::new_isolated(n));
        }
        let tick = self.tick;
        let max = self.config.max_session_restarts;
        let base = self.config.backoff_base_ticks.max(1);
        let cap = self.config.backoff_cap_ticks.max(base);
        let clear_plan = self.config.clear_fault_plan_on_restart;
        let session = &mut self.sessions[idx];
        session.search = None;
        session.run = None;
        telemetry::with_session(Some(session.id.0), || {
            if session.restarts_used < max {
                session.restarts_used += 1;
                let exp = u64::from(session.restarts_used - 1).min(62);
                let until_tick = tick + (base << exp).min(cap);
                if clear_plan {
                    session.cfg.fault.plan = FaultPlan::none();
                }
                session.fleet_log.push(
                    tick,
                    RobustnessEventKind::SessionRestarted,
                    format!(
                        "restart {} of {max} scheduled for tick {until_tick} after: {failure}",
                        session.restarts_used
                    ),
                );
                session.state = SessionState::Backoff { until_tick };
            } else {
                if max > 0 {
                    session.fleet_log.push(
                        tick,
                        RobustnessEventKind::SessionRestartsExhausted,
                        format!("all {max} restart(s) spent"),
                    );
                }
                session.fleet_log.push(
                    tick,
                    RobustnessEventKind::SessionFailed,
                    failure.to_string(),
                );
                session.state = SessionState::Failed(failure);
            }
        });
    }

    /// A non-consuming [`FleetReport`] of the fleet's *current* state —
    /// the live mirror served by `a3cs-obs` at `/fleet`. For a session
    /// with an open run, the robustness log and checkpoint counters come
    /// from the live [`GuardedRun`]; once every session is terminal the
    /// snapshot is field-for-field identical to the final
    /// [`Fleet::run_to_completion`] report (which is built through this
    /// same path).
    #[must_use]
    pub fn report_snapshot(&self) -> FleetReport {
        let mut event_totals: BTreeMap<String, usize> = BTreeMap::new();
        let sessions = self
            .sessions
            .iter()
            .map(|s| {
                let robustness = s
                    .run
                    .as_ref()
                    .map_or_else(|| s.last_robustness.clone(), |run| run.robustness().clone());
                let live_bytes = s.run.as_ref().map_or(0, GuardedRun::checkpoint_bytes_written);
                let live_restores = s.run.as_ref().map_or(0, GuardedRun::checkpoint_restores);
                let live_deltas =
                    s.run.as_ref().map_or(0, GuardedRun::checkpoint_delta_frames);
                let live_quarantined =
                    s.run.as_ref().map_or(0, GuardedRun::checkpoint_quarantined);
                for event in robustness.events.iter().chain(s.fleet_log.events.iter()) {
                    *event_totals.entry(event.kind.label().to_string()).or_insert(0) += 1;
                }
                SessionReport {
                    id: s.id,
                    name: s.name.clone(),
                    state: s.state.clone(),
                    steps: s
                        .run
                        .as_ref()
                        .map(GuardedRun::steps)
                        .or_else(|| s.result.as_ref().map(|r| r.steps))
                        .unwrap_or(0),
                    restarts: s.restarts_used,
                    result: s.result.clone(),
                    robustness,
                    fleet_events: s.fleet_log.clone(),
                    checkpoint_bytes_written: s.bytes_written + live_bytes,
                    checkpoint_restores: s.restore_count + live_restores,
                    checkpoint_delta_frames: s.delta_frames + live_deltas,
                    checkpoint_quarantined: s.quarantined + live_quarantined,
                }
            })
            .collect();
        FleetReport {
            sessions,
            ticks: self.tick,
            pool_budget: self.ladder.threads(),
            total_faults: self.total_faults,
            event_totals,
        }
    }

    fn into_report(self) -> FleetReport {
        self.report_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn session_id_formats_namespaced() {
        assert_eq!(SessionId(3).to_string(), "session-0003");
        assert_eq!(SessionId(3).index(), 3);
    }

    #[test]
    fn submit_rejects_a_config_that_fails_preflight() {
        let mut fleet = Fleet::new(FleetConfig::default());
        let mut cfg = CoSearchConfig::tiny(3, 12, 12, 3);
        cfg.supernet.num_cells = 5; // not a multiple of 3: preflight fails
        let err = fleet.submit("bad", cfg, 0, |seed| {
            Box::new(a3cs_envs::Breakout::new(seed)) as Box<dyn Environment>
        });
        assert!(err.is_err(), "admission control must reject broken configs");
        assert!(fleet.sessions.is_empty());
    }

    #[test]
    fn poll_and_cancel_on_unknown_sessions_are_safe() {
        let mut fleet = Fleet::new(FleetConfig::default());
        assert!(fleet.poll(SessionId(9)).is_none());
        assert!(!fleet.cancel(SessionId(9)));
        assert!(!fleet.resume(SessionId(9)));
    }

    #[test]
    fn terminal_states_are_classified() {
        assert!(SessionState::Done.is_terminal());
        assert!(SessionState::Cancelled.is_terminal());
        assert!(
            SessionState::Failed(SessionFailure::Panicked("x".to_string())).is_terminal()
        );
        assert!(!SessionState::Queued.is_terminal());
        assert!(!SessionState::Running.is_terminal());
        assert!(!SessionState::Backoff { until_tick: 3 }.is_terminal());
    }
}
