//! Design an FPGA accelerator for a DRL backbone with the DAS engine and
//! compare it against the DNNBuilder-style baseline and random search —
//! a standalone version of the hardware half of the paper's Fig. 3.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example design_accelerator
//! ```

use a3cs::accel::{
    CostWeights, DasConfig, DasEngine, DnnBuilderModel, FpgaTarget, PerfModel, RandomSearch,
    SearchSpace,
};
use a3cs::nn::resnet;

fn main() {
    // The paper's most competitive hand-designed agent backbone.
    let net = resnet(14, 4, 12, 12, 8, 64, 0);
    let layers = net.layer_descs();
    let target = FpgaTarget::zc706();
    println!(
        "network: {} ({} compute layers, {} MACs/frame)",
        net.name(),
        layers.len(),
        net.total_macs()
    );
    println!(
        "target: ZC706 ({} DSPs, {} KiB BRAM, {} MHz)\n",
        target.dsp_limit, target.bram_kb_limit, target.clock_mhz
    );

    // DAS (the paper's differentiable accelerator search, Eq. 9).
    let mut das = DasEngine::new(DasConfig::default(), 11);
    let das_accel = das.run(&layers, &target, 1_500);
    let das_report = PerfModel::evaluate(&das_accel, &layers, &target);

    // DNNBuilder baseline.
    let dnnb_accel = DnnBuilderModel::design(&layers, &target);
    let dnnb_report = PerfModel::evaluate(&dnnb_accel, &layers, &target);

    // Random search with the same evaluation budget as DAS.
    let mut random = RandomSearch::new(SearchSpace::default(), 4, CostWeights::default(), 13);
    let (rand_accel, _) = random.run(&layers, &target, 1_500);
    let rand_report = PerfModel::evaluate(&rand_accel, &layers, &target);

    println!("{:<14} {:>10} {:>8} {:>10} {:>9}", "design", "FPS", "DSPs", "BRAM KiB", "feasible");
    for (name, report) in [
        ("DAS (A3C-S)", &das_report),
        ("DNNBuilder", &dnnb_report),
        ("Random", &rand_report),
    ] {
        println!(
            "{:<14} {:>10.1} {:>8} {:>10} {:>9}",
            name, report.fps, report.dsp_used, report.bram_kb_used, report.feasible
        );
    }
    println!(
        "\nDAS speedup over DNNBuilder: {:.2}x",
        das_report.fps / dnnb_report.fps
    );
}
