//! Fig. 2 reproduction: test-score evolution *during the search* for
//! three schemes — Direct-NAS (no distillation), A3C-S with bi-level
//! optimisation, and A3C-S with one-level optimisation (all with the
//! hardware-cost penalty active).
//!
//! Paper claims to reproduce (Section V-D): bi-level search stays low
//! (the supernet is a poor proxy under biased one-step gradients);
//! one-level search with AC-distillation improves consistently.
//!
//! ```sh
//! A3CS_SCALE=short cargo run --release -p a3cs-bench --bin fig2_search_schemes
//! ```
//!
//! Ablation flag: `--top-k <n>` overrides the number of backward paths
//! (Eq. 7's K; default 2), e.g. `--top-k 1` for pure single-path
//! gradients. `--steps <n>` overrides the search budget, and positional
//! game names restrict the sweep (e.g. `fig2_search_schemes Atlantis
//! --steps 16000`).

use a3cs_bench::cli::{filter_games, parse_flag, positional};
use a3cs_bench::paper_data::CURVE_GAMES;
use a3cs_bench::report::{fmt, or_exit, print_table, save_json, status};
use a3cs_bench::scale::Scale;
use a3cs_bench::setup::{cosearch_config, train_teacher};
use a3cs_core::{CoSearch, SearchScheme};
use serde::Serialize;

#[derive(Serialize)]
struct CurveDump {
    game: &'static str,
    scheme: String,
    points: Vec<(u64, f32)>,
    alpha_entropy: Vec<(u64, f32)>,
}

fn main() {
    let scale = or_exit(Scale::try_from_env());
    let args: Vec<String> = std::env::args().skip(1).collect();
    let top_k: Option<usize> = parse_flag(&args, "--top-k");
    let steps: Option<u64> = parse_flag(&args, "--steps");
    let games = filter_games(CURVE_GAMES, &positional(&args));
    let schemes = [
        ("Direct-NAS", SearchScheme::DirectNas),
        ("A3C-S:Bi-level", SearchScheme::BiLevel),
        ("A3C-S:One-level", SearchScheme::OneLevel),
    ];
    status(format!(
        "Fig. 2: search-score evolution, {:?} on {:?} (scale: {}, top-K: {})\n",
        schemes.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
        games,
        scale.name,
        top_k.unwrap_or(2)
    ));

    let mut rows = Vec::new();
    let mut dumps = Vec::new();
    for &game in &games {
        // Teacher shared by the two distilled schemes.
        let teacher = or_exit(train_teacher(game, &scale, 4000));
        for (name, scheme) in schemes {
            let mut cfg = or_exit(cosearch_config(game, &scale));
            cfg.scheme = scheme;
            if let Some(k) = top_k {
                cfg.supernet.top_k = k;
            }
            if let Some(n) = steps {
                cfg.total_steps = n;
                cfg.eval_every = scale.eval_every(n);
            }
            let mut search = or_exit(CoSearch::try_new(cfg, 31));
            let teacher_opt = match scheme {
                SearchScheme::DirectNas => None,
                _ => Some(&teacher),
            };
            let factory = or_exit(a3cs_bench::setup::factory_for(game));
            let result = search.run(&factory, teacher_opt);
            status(format!(
                "{game:<14} {name:<16} curve: {}",
                result
                    .score_curve
                    .iter()
                    .map(|(s, v)| format!("{s}:{v:.0}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
            rows.push(vec![
                game.to_owned(),
                name.to_owned(),
                fmt(f64::from(result.best_score())),
                fmt(f64::from(result.final_score())),
            ]);
            dumps.push(CurveDump {
                game,
                scheme: name.to_owned(),
                points: result.score_curve,
                alpha_entropy: result.alpha_entropy_curve,
            });
        }
        status("");
    }

    status("summary (best / final search-time scores):\n");
    print_table(&["game", "scheme", "best", "final"], &rows);
    save_json("fig2_search_schemes", &dumps);
}
