//! Rollout collection: step `n` environments for `L` steps under the
//! current policy (the inner loop of Alg. 1).

use crate::agent::ActorCritic;
use a3cs_envs::Environment;
use a3cs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Factory producing fresh seeded environments (training uses one per
/// parallel lane, evaluation creates independent copies).
pub type EnvFactory<'f> = dyn Fn(u64) -> Box<dyn Environment> + 'f;

/// One collected rollout of `len` steps across `n_envs` environments.
///
/// Layouts are time-major: step `t`, environment `e` lives at index
/// `t * n_envs + e`.
#[derive(Debug, Clone)]
pub struct Rollout {
    /// Number of parallel environments.
    pub n_envs: usize,
    /// Steps per environment.
    pub len: usize,
    /// Observations at decision time, `[(len+1) * n_envs, obs_len]`
    /// flattened; the final `n_envs` rows are the bootstrap observations.
    pub observations: Vec<f32>,
    /// Observation length per environment.
    pub obs_len: usize,
    /// Action taken at each `(t, e)`.
    pub actions: Vec<usize>,
    /// Reward received at each `(t, e)`.
    pub rewards: Vec<f32>,
    /// Episode-termination flag at each `(t, e)`.
    pub dones: Vec<bool>,
}

impl Rollout {
    /// Total number of transitions (`len * n_envs`).
    #[must_use]
    pub fn transitions(&self) -> usize {
        self.len * self.n_envs
    }

    /// Sum of rewards in the rollout (diagnostic).
    #[must_use]
    pub fn total_reward(&self) -> f32 {
        self.rewards.iter().sum()
    }
}

/// Convert a flat observation batch into a `[n, planes, h, w]` tensor.
///
/// # Panics
///
/// Panics if the data length does not match.
#[must_use]
pub fn batch_to_tensor(data: &[f32], n: usize, shape: (usize, usize, usize)) -> Tensor {
    let (p, h, w) = shape;
    Tensor::from_vec(data.to_vec(), &[n, p, h, w]).expect("batch length mismatch")
}

/// Persistent rollout state: keeps environments (and their mid-episode
/// state) alive across successive [`collect_rollout`] calls.
pub struct RolloutRunner {
    envs: Vec<Box<dyn Environment>>,
    current_obs: Vec<Vec<f32>>,
    rng: StdRng,
}

impl RolloutRunner {
    /// Create `n_envs` environments from `factory` with distinct seeds.
    ///
    /// # Panics
    ///
    /// Panics if `n_envs == 0`.
    #[must_use]
    pub fn new(factory: &EnvFactory<'_>, n_envs: usize, seed: u64) -> Self {
        assert!(n_envs > 0, "need at least one environment");
        let mut envs: Vec<Box<dyn Environment>> = (0..n_envs)
            .map(|i| factory(seed.wrapping_add(i as u64)))
            .collect();
        let current_obs = envs.iter_mut().map(|e| e.reset()).collect();
        RolloutRunner {
            envs,
            current_obs,
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Number of parallel environments.
    #[must_use]
    pub fn n_envs(&self) -> usize {
        self.envs.len()
    }

    /// Observation length of the wrapped environments.
    #[must_use]
    pub fn obs_len(&self) -> usize {
        self.envs[0].observation_len()
    }

    /// Collect an `len`-step rollout under `agent`'s stochastic policy.
    pub fn collect(&mut self, agent: &ActorCritic, len: usize) -> Rollout {
        let n = self.envs.len();
        let obs_len = self.obs_len();
        let mut observations = Vec::with_capacity((len + 1) * n * obs_len);
        let mut actions = Vec::with_capacity(len * n);
        let mut rewards = Vec::with_capacity(len * n);
        let mut dones = Vec::with_capacity(len * n);

        for _ in 0..len {
            let mut step_obs = Vec::with_capacity(n * obs_len);
            for o in &self.current_obs {
                step_obs.extend_from_slice(o);
            }
            let acts = agent.act(&step_obs, n, &mut self.rng);
            observations.extend_from_slice(&step_obs);
            for (e, (&a, env)) in acts.iter().zip(self.envs.iter_mut()).enumerate() {
                let out = env.step(a);
                actions.push(a);
                rewards.push(out.reward);
                dones.push(out.done);
                self.current_obs[e] = if out.done { env.reset() } else { out.observation };
            }
        }
        // Bootstrap observations (post-rollout states).
        for o in &self.current_obs {
            observations.extend_from_slice(o);
        }

        Rollout {
            n_envs: n,
            len,
            observations,
            obs_len,
            actions,
            rewards,
            dones,
        }
    }
}

/// One-shot convenience: build a runner and collect a single rollout.
#[must_use]
pub fn collect_rollout(
    agent: &ActorCritic,
    factory: &EnvFactory<'_>,
    n_envs: usize,
    len: usize,
    seed: u64,
) -> Rollout {
    RolloutRunner::new(factory, n_envs, seed).collect(agent, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_envs::Breakout;
    use a3cs_nn::vanilla;

    fn agent() -> ActorCritic {
        let backbone = vanilla(3, 12, 12, 16, 0);
        ActorCritic::new(Box::new(backbone), 16, (3, 12, 12), 3, 1)
    }

    fn factory(seed: u64) -> Box<dyn Environment> {
        Box::new(Breakout::new(seed))
    }

    #[test]
    fn rollout_dimensions() {
        let a = agent();
        let r = collect_rollout(&a, &factory, 3, 5, 7);
        assert_eq!(r.transitions(), 15);
        assert_eq!(r.actions.len(), 15);
        assert_eq!(r.rewards.len(), 15);
        assert_eq!(r.dones.len(), 15);
        assert_eq!(r.observations.len(), (5 + 1) * 3 * r.obs_len);
    }

    #[test]
    fn runner_persists_episode_state() {
        let a = agent();
        let mut runner = RolloutRunner::new(&factory, 2, 3);
        let r1 = runner.collect(&a, 4);
        let r2 = runner.collect(&a, 4);
        // Unless an episode ended exactly at the boundary, the second
        // rollout starts where the first stopped.
        let last_of_r1 = &r1.observations[(4 + 1) * 2 * r1.obs_len - 2 * r1.obs_len..];
        let first_of_r2 = &r2.observations[..2 * r2.obs_len];
        assert_eq!(last_of_r1, first_of_r2);
    }

    #[test]
    fn actions_are_legal() {
        let a = agent();
        let r = collect_rollout(&a, &factory, 2, 10, 11);
        assert!(r.actions.iter().all(|&x| x < 3));
    }

    #[test]
    fn batch_to_tensor_shapes() {
        let t = batch_to_tensor(&vec![0.0; 2 * 3 * 4 * 4], 2, (3, 4, 4));
        assert_eq!(t.shape(), &[2, 3, 4, 4]);
    }
}
