//! Property-based tests for the tensor and autograd core.

use a3cs_tensor::{check_gradients, matmul, Tape, Tensor};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-3.0f32..3.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(data in small_vec(12)) {
        let a = Tensor::from_vec(data[..6].to_vec(), &[6]).unwrap();
        let b = Tensor::from_vec(data[6..].to_vec(), &[6]).unwrap();
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn mul_distributes_over_add(data in small_vec(12)) {
        let a = Tensor::from_vec(data[..4].to_vec(), &[4]).unwrap();
        let b = Tensor::from_vec(data[4..8].to_vec(), &[4]).unwrap();
        let c = Tensor::from_vec(data[8..].to_vec(), &[4]).unwrap();
        let lhs = a.mul(&b.add(&c));
        let rhs = a.mul(&b).add(&a.mul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn scale_matches_mul_by_full(data in small_vec(8), c in -2.0f32..2.0) {
        let a = Tensor::from_vec(data, &[8]).unwrap();
        let full = Tensor::full(&[8], c);
        prop_assert!(a.scale(c).max_abs_diff(&a.mul(&full)) < 1e-5);
    }

    #[test]
    fn transpose_is_involutive(data in small_vec(12)) {
        let a = Tensor::from_vec(data, &[3, 4]).unwrap();
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_is_linear_in_lhs(data in small_vec(24), s in -2.0f32..2.0) {
        let a = Tensor::from_vec(data[..6].to_vec(), &[2, 3]).unwrap();
        let b = Tensor::from_vec(data[6..12].to_vec(), &[2, 3]).unwrap();
        let m = Tensor::from_vec(data[12..].to_vec(), &[3, 4]).unwrap();
        let lhs = matmul(&a.scale(s).add(&b), &m);
        let rhs = matmul(&a, &m).scale(s).add(&matmul(&b, &m));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn softmax_rows_are_distributions(data in small_vec(15)) {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(data, &[3, 5]).unwrap());
        let p = x.softmax_rows();
        let v = p.value();
        for r in 0..3 {
            let row = &v.data()[r * 5..(r + 1) * 5];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn backward_of_sum_is_ones(data in small_vec(10)) {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(data, &[10]).unwrap());
        x.sum().backward();
        prop_assert_eq!(x.grad().unwrap(), Tensor::ones(&[10]));
    }

    #[test]
    fn gradient_of_quadratic_matches_numeric(data in small_vec(6)) {
        let x = Tensor::from_vec(data, &[6]).unwrap();
        let report = check_gradients(
            &|_t, v| v.square().sum(),
            &x,
            1e-2,
        );
        prop_assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn gradient_is_linear_in_seed(data in small_vec(5), k in 0.5f32..3.0) {
        // backward_with(k * seed) must produce k * grad.
        let x_t = Tensor::from_vec(data, &[5]).unwrap();
        let run = |scale: f32| {
            let tape = Tape::new();
            let x = tape.leaf(x_t.clone());
            let y = x.square();
            y.backward_with(Tensor::full(&[5], scale));
            x.grad().unwrap()
        };
        let g1 = run(1.0);
        let gk = run(k);
        prop_assert!(gk.max_abs_diff(&g1.scale(k)) < 1e-3);
    }

    #[test]
    fn reshape_roundtrip_preserves_values(data in small_vec(24)) {
        let t = Tensor::from_vec(data, &[2, 3, 4]).unwrap();
        let r = t.reshape(&[4, 6]).reshape(&[2, 3, 4]);
        prop_assert_eq!(r, t);
    }

    #[test]
    fn concat0_len_is_sum(rows_a in 1usize..4, rows_b in 1usize..4) {
        let a = Tensor::ones(&[rows_a, 3]);
        let b = Tensor::zeros(&[rows_b, 3]);
        let c = Tensor::concat0(&[&a, &b]);
        prop_assert_eq!(c.shape(), &[rows_a + rows_b, 3]);
        prop_assert!((c.sum() - (rows_a * 3) as f32).abs() < 1e-6);
    }
}
