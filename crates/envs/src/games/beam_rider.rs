//! Beam Rider: lane-locked ship shooting descending enemies.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;
const BEAMS: [isize; 5] = [2, 4, 6, 8, 10];
const SHIP_ROW: isize = GRID as isize - 1;

#[derive(Debug, Clone, Copy)]
struct Enemy {
    row: isize,
    beam: usize,
}

/// Beam Rider stand-in: the ship slides between five beams; enemies descend
/// along beams and must be shot (`+1`, sector bonus every 15 kills).
/// An enemy reaching the ship's row on its beam ends the episode.
///
/// Actions: `0` no-op, `1` beam-left, `2` beam-right, `3` fire.
#[derive(Debug, Clone)]
pub struct BeamRider {
    rng: StdRng,
    ship_beam: usize,
    enemies: Vec<Enemy>,
    shots: Vec<(isize, usize)>,
    kills: u32,
    sector: u32,
    clock: u32,
    done: bool,
}

impl BeamRider {
    /// Create a seeded Beam Rider game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        BeamRider {
            rng: StdRng::seed_from_u64(seed),
            ship_beam: 2,
            enemies: Vec::new(),
            shots: Vec::new(),
            kills: 0,
            sector: 1,
            clock: 0,
            done: true,
        }
    }

    fn spawn_period(&self) -> u32 {
        (5 - self.sector.min(3)) as u32
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(4, GRID, GRID);
        // Beams are faint static guides on plane 0.
        for &b in &BEAMS {
            for r in 0..GRID as isize {
                canvas.paint(0, r, b, 0.3);
            }
        }
        canvas.paint(1, SHIP_ROW, BEAMS[self.ship_beam], 1.0);
        for e in &self.enemies {
            canvas.paint(2, e.row, BEAMS[e.beam], 1.0);
        }
        for &(r, b) in &self.shots {
            canvas.paint(3, r, BEAMS[b], 1.0);
        }
        canvas.into_observation()
    }
}

impl Environment for BeamRider {
    fn name(&self) -> &str {
        "BeamRider"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (4, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        4
    }

    fn reset(&mut self) -> Vec<f32> {
        self.ship_beam = 2;
        self.enemies.clear();
        self.shots.clear();
        self.kills = 0;
        self.sector = 1;
        self.clock = 0;
        self.done = false;
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        self.clock += 1;
        match action {
            1 => self.ship_beam = self.ship_beam.saturating_sub(1),
            2 => self.ship_beam = (self.ship_beam + 1).min(BEAMS.len() - 1),
            3 => {
                if self.shots.len() < 2 {
                    self.shots.push((SHIP_ROW - 1, self.ship_beam));
                }
            }
            _ => {}
        }

        let mut reward = 0.0f32;

        // Shots travel up two cells per step; check hits cell-by-cell.
        let mut surviving_shots = Vec::with_capacity(self.shots.len());
        for (mut r, b) in std::mem::take(&mut self.shots) {
            let mut live = true;
            for _ in 0..2 {
                r -= 1;
                if r < 0 {
                    live = false;
                    break;
                }
                if let Some(i) = self
                    .enemies
                    .iter()
                    .position(|e| e.beam == b && e.row == r)
                {
                    self.enemies.swap_remove(i);
                    self.kills += 1;
                    reward += 1.0;
                    if self.kills % 15 == 0 {
                        reward += 10.0;
                        self.sector += 1;
                    }
                    live = false;
                    break;
                }
            }
            if live {
                surviving_shots.push((r, b));
            }
        }
        self.shots = surviving_shots;

        // Enemies descend every other step.
        if self.clock % 2 == 0 {
            for e in &mut self.enemies {
                e.row += 1;
            }
        }

        // Spawn cadence tightens with the sector.
        if self.clock % self.spawn_period().max(1) == 0 && self.enemies.len() < 6 {
            let beam = self.rng.gen_range(0..BEAMS.len());
            self.enemies.push(Enemy { row: 0, beam });
        }

        // Enemy reaching the ship row: fatal on the ship's beam, despawns
        // otherwise.
        let ship_beam = self.ship_beam;
        let mut fatal = false;
        self.enemies.retain(|e| {
            if e.row >= SHIP_ROW {
                if e.beam == ship_beam {
                    fatal = true;
                }
                false
            } else {
                true
            }
        });
        if fatal {
            self.done = true;
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("BeamRider");
        w.rng(&self.rng);
        w.usize(self.ship_beam);
        w.usize(self.enemies.len());
        for item in &self.enemies {
            w.isize(item.row);
            w.usize(item.beam);
        }
        w.usize(self.shots.len());
        for item in &self.shots {
            w.isize(item.0);
            w.usize(item.1);
        }
        w.u32(self.kills);
        w.u32(self.sector);
        w.u32(self.clock);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "BeamRider")?;
        self.rng = r.rng()?;
        self.ship_beam = r.usize()?;
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(Enemy { row: r.isize()?, beam: r.usize()? });
        }
        self.enemies = items;
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push((r.isize()?, r.usize()?));
        }
        self.shots = items;
        self.kills = r.u32()?;
        self.sector = r.u32()?;
        self.clock = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(BeamRider::new(51), BeamRider::new(51), 400);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = BeamRider::new(1);
        let total = random_rollout(&mut env, 1200, 9);
        assert!(total >= 0.0);
    }

    #[test]
    fn firing_down_the_spawn_beam_scores() {
        let mut env = BeamRider::new(2);
        let _ = env.reset();
        let mut total = 0.0;
        for i in 0..400 {
            // Sweep beams while firing constantly.
            let action = match i % 4 {
                0 | 2 => 3,
                1 => 1,
                _ => 2,
            };
            let out = env.step(action);
            total += out.reward;
            if out.done {
                let _ = env.reset();
            }
        }
        assert!(total > 0.0);
    }

    #[test]
    fn beam_index_clamps_at_edges() {
        let mut env = BeamRider::new(3);
        let _ = env.reset();
        for _ in 0..10 {
            let _ = env.step(1);
            if env.done {
                let _ = env.reset();
            }
        }
        assert_eq!(env.ship_beam, 0);
        for _ in 0..10 {
            let _ = env.step(2);
            if env.done {
                let _ = env.reset();
            }
        }
        assert_eq!(env.ship_beam, BEAMS.len() - 1);
    }
}
