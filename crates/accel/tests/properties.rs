//! Property tests for the accelerator model: decode totality, predictor
//! monotonicity and cost sanity over random configurations, plus the
//! memoization contract — the transposition-table cost cache must be
//! bit-identical to direct evaluation over arbitrary legal choice
//! vectors (cold, warm, and under eviction pressure), and beam search
//! must be deterministic given its seed.

use a3cs_accel::{
    tiny_space, BeamConfig, BeamSearch, CachedCostModel, CostModel, CostWeights, DirectCost,
    FpgaTarget, PerfModel, SearchSpace,
};
use a3cs_nn::{ConvDims, LayerDesc, LayerOp};
use proptest::prelude::*;

fn random_layers() -> impl Strategy<Value = Vec<LayerDesc>> {
    prop::collection::vec(
        (1usize..16, 1usize..32, prop::sample::select(vec![1usize, 3, 5]), 1usize..3, 6usize..16)
            .prop_map(|(in_ch, out_ch, kernel, stride, hw)| LayerDesc {
                name: "l".into(),
                op: LayerOp::Conv(ConvDims {
                    in_ch,
                    out_ch,
                    kernel,
                    stride,
                    padding: kernel / 2,
                    in_h: hw,
                    in_w: hw,
                }),
            }),
        1..6,
    )
}

fn random_choices(space: &SearchSpace, chunks: usize, layers: usize, seed: u64) -> Vec<usize> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    space
        .knob_sizes(chunks, layers)
        .iter()
        .map(|&s| rng.gen_range(0..s))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_choice_vector_decodes_to_valid_config(
        chunks in 1usize..5,
        layers in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let space = SearchSpace::default();
        let choices = random_choices(&space, chunks, layers, seed);
        let cfg = space.decode(chunks, layers, &choices);
        prop_assert_eq!(cfg.chunks.len(), chunks);
        prop_assert_eq!(cfg.assignment.len(), layers);
        prop_assert!(cfg.assignment_valid());
        prop_assert!(cfg.total_pes() > 0);
    }

    #[test]
    fn predictor_outputs_are_finite_and_positive(
        layers in random_layers(),
        chunks in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let space = SearchSpace::default();
        let choices = random_choices(&space, chunks, layers.len(), seed);
        let cfg = space.decode(chunks, layers.len(), &choices);
        let target = FpgaTarget::zc706();
        let report = PerfModel::evaluate(&cfg, &layers, &target);
        prop_assert!(report.fps.is_finite() && report.fps > 0.0);
        prop_assert!(report.bottleneck_cycles > 0.0);
        prop_assert!(report.total_latency_cycles >= report.bottleneck_cycles - 1e-6);
        prop_assert!(report.energy > 0.0);
        let cost = PerfModel::cost(&report, &target, &CostWeights::default());
        prop_assert!(cost.is_finite() && cost > 0.0);
        // Infeasible designs always cost at least their latency.
        prop_assert!(cost >= report.bottleneck_cycles - 1e-6);
    }

    #[test]
    fn adding_a_layer_never_reduces_total_latency(
        layers in random_layers(),
        seed in 0u64..10_000,
    ) {
        let space = SearchSpace::default();
        let choices_short = random_choices(&space, 1, layers.len(), seed);
        let cfg_short = space.decode(1, layers.len(), &choices_short);
        let target = FpgaTarget::zc706();
        let base = PerfModel::evaluate(&cfg_short, &layers, &target);

        let mut longer = layers.clone();
        longer.push(layers[0].clone());
        let mut choices_long = choices_short;
        choices_long.push(0); // assign the extra layer to chunk 0
        let cfg_long = space.decode(1, longer.len(), &choices_long);
        let more = PerfModel::evaluate(&cfg_long, &longer, &target);
        prop_assert!(more.total_latency_cycles >= base.total_latency_cycles);
    }

    #[test]
    fn fps_equals_clock_over_bottleneck(
        layers in random_layers(),
        seed in 0u64..10_000,
    ) {
        let space = SearchSpace::default();
        let choices = random_choices(&space, 2, layers.len(), seed);
        let cfg = space.decode(2, layers.len(), &choices);
        let target = FpgaTarget::zc706();
        let report = PerfModel::evaluate(&cfg, &layers, &target);
        let expect = target.clock_hz() / report.bottleneck_cycles;
        prop_assert!((report.fps - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn resource_usage_is_sum_of_chunks(
        chunks in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let space = SearchSpace::default();
        let layers = vec![LayerDesc {
            name: "l".into(),
            op: LayerOp::Fc { in_features: 64, out_features: 32 },
        }];
        let choices = random_choices(&space, chunks, 1, seed);
        let cfg = space.decode(chunks, 1, &choices);
        let report = PerfModel::evaluate(&cfg, &layers, &FpgaTarget::zc706());
        prop_assert_eq!(report.dsp_used, cfg.total_pes());
        prop_assert_eq!(report.bram_kb_used, cfg.total_buffer_kb());
    }
}

proptest! {
    // The memoization properties evaluate many configs per case; keep
    // the case count lower than the cheap decode/predictor block above.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cold pass, then a warm pass over the same pool: every cached cost
    /// is bit-identical to direct `PerfModel` evaluation.
    #[test]
    fn cached_costs_are_bit_identical_to_direct(
        layers in random_layers(),
        chunks in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let space = SearchSpace::default();
        let target = FpgaTarget::zc706();
        let weights = CostWeights::default();
        let pool: Vec<Vec<usize>> = (0..12)
            .map(|i| random_choices(&space, chunks, layers.len(), seed.wrapping_add(i)))
            .collect();

        let mut direct = DirectCost::new();
        let mut cached = CachedCostModel::new(10);
        direct.begin(&space, chunks, &layers, &target, &weights);
        cached.begin(&space, chunks, &layers, &target, &weights);
        for pass in 0..2 {
            for choices in &pool {
                let want = direct.cost_choices(choices);
                let got = cached.cost_choices(choices);
                prop_assert_eq!(
                    want.to_bits(), got.to_bits(),
                    "pass {} diverged: cached {} != direct {}", pass, got, want
                );
            }
        }
        // The warm pass revisits every pool entry, so the cache engaged.
        prop_assert!(cached.stats().hits >= pool.len() as u64);
    }

    /// A 16-slot cache thrashed by a pool far larger than its capacity
    /// still never serves a wrong cost (key verification on probe).
    #[test]
    fn eviction_pressure_never_corrupts_a_cost(
        layers in random_layers(),
        chunks in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let space = SearchSpace::default();
        let target = FpgaTarget::zc706();
        let weights = CostWeights::default();
        let pool: Vec<Vec<usize>> = (0..48)
            .map(|i| random_choices(&space, chunks, layers.len(), seed.wrapping_add(i)))
            .collect();

        let mut direct = DirectCost::new();
        let mut tiny = CachedCostModel::new(4);
        direct.begin(&space, chunks, &layers, &target, &weights);
        tiny.begin(&space, chunks, &layers, &target, &weights);
        for _ in 0..2 {
            for choices in &pool {
                let want = direct.cost_choices(choices);
                let got = tiny.cost_choices(choices);
                prop_assert_eq!(want.to_bits(), got.to_bits());
            }
        }
        prop_assert!(tiny.stats().evictions > 0, "pool of 48 never displaced a 16-slot cache");
    }

    /// Two beam searches built from the same seed walk the same
    /// trajectory: identical best config and bit-identical cost.
    #[test]
    fn beam_search_is_deterministic_given_seed(
        seed in 0u64..10_000,
        layers in random_layers(),
    ) {
        let cfg = BeamConfig {
            space: tiny_space(),
            num_chunks: 2,
            width: 4,
            mutations_per_parent: 3,
            cost: CostWeights::default(),
            memo_log2: 8,
        };
        let target = FpgaTarget::zc706();
        let (cfg_a, cost_a) = BeamSearch::new(cfg.clone(), seed).run(&layers, &target, 4);
        let (cfg_b, cost_b) = BeamSearch::new(cfg, seed).run(&layers, &target, 4);
        prop_assert_eq!(cfg_a, cfg_b);
        prop_assert_eq!(cost_a.to_bits(), cost_b.to_bits());
    }
}
