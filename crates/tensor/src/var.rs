//! Differentiable values ([`Var`]) and the operation set recorded on a
//! [`Tape`].
//!
//! Every method that combines two `Var`s panics if they live on different
//! tapes; this is always a programming error in the caller.

use crate::linalg::{col2im, im2col, matmul, matmul_a_bt, matmul_at_b, Conv2dGeometry, PAR_MIN_MACS};
use crate::tape::{BackwardFn, Tape};
use crate::tensor::Tensor;
use std::rc::Rc;

/// Wrap a buffer whose length the caller derived from `shape` itself.
pub(crate) fn sized(data: Vec<f32>, shape: &[usize], what: &str) -> Tensor {
    match Tensor::from_vec(data, shape) {
        Ok(t) => t,
        // Every call site allocates the buffer from the same dimensions it
        // passes as `shape`, so the length always matches.
        Err(e) => unreachable!("{what}: buffer sized by construction for {shape:?}: {e:?}"),
    }
}

/// Run `f(image_index, image_chunk)` over the `n` disjoint `row_len`-sized
/// blocks of `out`, fanning images across the pool when the op is worth
/// `macs_per_image * n` multiply–accumulates. Per-image work is identical in
/// either mode, so output is bit-identical for every thread count.
fn conv_fan_out(
    out: &mut [f32],
    n: usize,
    row_len: usize,
    macs_per_image: u64,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    if n == 0 || row_len == 0 {
        return;
    }
    telemetry::CONV_MACS.add(macs_per_image.saturating_mul(n as u64));
    if n >= 2 && macs_per_image.saturating_mul(n as u64) >= PAR_MIN_MACS as u64 {
        threadpool::current().parallel_fill_rows(out, n, row_len, f);
    } else {
        for (ni, chunk) in out.chunks_mut(row_len).enumerate() {
            f(ni, chunk);
        }
    }
}

/// As [`conv_fan_out`], but over per-image slot pairs (typically an input
/// gradient slice plus a staging slice for that image's weight gradient).
fn conv_fan_out_slots(
    slots: &mut [(&mut [f32], &mut [f32])],
    macs_per_image: u64,
    f: impl Fn(usize, &mut [f32], &mut [f32]) + Sync,
) {
    let n = slots.len();
    if n == 0 {
        return;
    }
    telemetry::CONV_MACS.add(macs_per_image.saturating_mul(n as u64));
    let run = |start: usize, chunk: &mut [(&mut [f32], &mut [f32])]| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            f(start + i, &mut *slot.0, &mut *slot.1);
        }
    };
    if n >= 2 && macs_per_image.saturating_mul(n as u64) >= PAR_MIN_MACS as u64 {
        threadpool::current().parallel_chunks_mut(slots, run);
    } else {
        run(0, slots);
    }
}

/// A differentiable value: a reference to one node of a [`Tape`].
///
/// `Var` is cheap to clone (it is an id plus an `Rc` tape handle). All
/// arithmetic on `Var`s records backward closures so that [`Var::backward`]
/// can later accumulate gradients.
///
/// # Example
///
/// ```
/// use a3cs_tensor::{Tape, Tensor};
///
/// let tape = Tape::new();
/// let x = tape.leaf(Tensor::from_vec(vec![0.5, -1.0], &[2]).unwrap());
/// let loss = x.relu().sum();
/// loss.backward();
/// assert_eq!(x.grad().unwrap().data(), &[1.0, 0.0]);
/// ```
#[derive(Clone)]
pub struct Var {
    pub(crate) tape: Tape,
    pub(crate) id: usize,
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Var(id={}, value={:?})", self.id, self.value())
    }
}

impl Var {
    /// The tensor value this node holds.
    #[must_use]
    pub fn value(&self) -> Rc<Tensor> {
        self.tape.value_of(self.id)
    }

    /// Shape of the held value.
    #[must_use]
    pub fn shape(&self) -> Vec<usize> {
        self.value().shape().to_vec()
    }

    /// Gradient accumulated at this node by previous [`Var::backward`]
    /// calls, if any.
    #[must_use]
    pub fn grad(&self) -> Option<Tensor> {
        self.tape.grad_of(self.id)
    }

    /// Run reverse-mode differentiation from this node, seeding with a
    /// tensor of ones (for a scalar loss this is the usual `dL/dL = 1`).
    pub fn backward(&self) {
        let seed = Tensor::ones(self.value().shape());
        self.tape.backward_from(self.id, seed);
    }

    /// Run reverse-mode differentiation seeded with an explicit gradient.
    ///
    /// # Panics
    ///
    /// Panics if `seed` does not match this node's value shape.
    pub fn backward_with(&self, seed: Tensor) {
        self.tape.backward_from(self.id, seed);
    }

    /// A new leaf on the same tape holding a copy of this value; gradient
    /// does not flow through it (stop-gradient).
    #[must_use]
    pub fn detach(&self) -> Var {
        self.tape.leaf(self.value().as_ref().clone())
    }

    fn assert_same_tape(&self, other: &Var) {
        assert!(
            self.tape.same_tape(&other.tape),
            "operands belong to different tapes"
        );
    }

    fn unary(&self, value: Tensor, backward: BackwardFn) -> Var {
        self.tape.push(Rc::new(value), Some(backward), None)
    }

    // ---------------------------------------------------------------
    // Elementwise binary ops (equal shapes)
    // ---------------------------------------------------------------

    /// Elementwise sum. Panics on shape or tape mismatch.
    #[must_use]
    pub fn add(&self, other: &Var) -> Var {
        self.assert_same_tape(other);
        let (a, b) = (self.id, other.id);
        let value = self.value().add(&other.value());
        self.unary(
            value,
            Box::new(move |g| vec![(a, g.clone()), (b, g.clone())]),
        )
    }

    /// Elementwise difference. Panics on shape or tape mismatch.
    #[must_use]
    pub fn sub(&self, other: &Var) -> Var {
        self.assert_same_tape(other);
        let (a, b) = (self.id, other.id);
        let value = self.value().sub(&other.value());
        self.unary(
            value,
            Box::new(move |g| vec![(a, g.clone()), (b, g.scale(-1.0))]),
        )
    }

    /// Elementwise product. Panics on shape or tape mismatch.
    #[must_use]
    pub fn mul(&self, other: &Var) -> Var {
        self.assert_same_tape(other);
        let (a, b) = (self.id, other.id);
        let (av, bv) = (self.value(), other.value());
        let value = av.mul(&bv);
        self.unary(
            value,
            Box::new(move |g| vec![(a, g.mul(&bv)), (b, g.mul(&av))]),
        )
    }

    /// Elementwise quotient. Panics on shape or tape mismatch.
    #[must_use]
    pub fn div(&self, other: &Var) -> Var {
        self.assert_same_tape(other);
        let (a, b) = (self.id, other.id);
        let (av, bv) = (self.value(), other.value());
        let value = av.div(&bv);
        self.unary(
            value,
            Box::new(move |g| {
                let da = g.div(&bv);
                let db = g.mul(&av).div(&bv).div(&bv).scale(-1.0);
                vec![(a, da), (b, db)]
            }),
        )
    }

    // ---------------------------------------------------------------
    // Elementwise unary ops
    // ---------------------------------------------------------------

    /// Negation.
    #[must_use]
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    /// Multiply every element by the constant `c`.
    #[must_use]
    pub fn scale(&self, c: f32) -> Var {
        let a = self.id;
        let value = self.value().scale(c);
        self.unary(value, Box::new(move |g| vec![(a, g.scale(c))]))
    }

    /// Add the constant `c` to every element.
    #[must_use]
    pub fn add_scalar(&self, c: f32) -> Var {
        let a = self.id;
        let value = self.value().add_scalar(c);
        self.unary(value, Box::new(move |g| vec![(a, g.clone())]))
    }

    /// Rectified linear unit `max(x, 0)`.
    #[must_use]
    pub fn relu(&self) -> Var {
        let a = self.id;
        let x = self.value();
        let value = x.map(|v| v.max(0.0));
        self.unary(
            value,
            Box::new(move |g| {
                vec![(a, g.zip(&x, |gv, xv| if xv > 0.0 { gv } else { 0.0 }))]
            }),
        )
    }

    /// Elementwise exponential.
    #[must_use]
    pub fn exp(&self) -> Var {
        let a = self.id;
        let value = self.value().map(f32::exp);
        let out = value.clone();
        self.unary(value, Box::new(move |g| vec![(a, g.mul(&out))]))
    }

    /// Elementwise natural logarithm.
    ///
    /// Inputs are expected strictly positive; non-positive values produce
    /// NaN/-inf exactly as `f32::ln` does.
    #[must_use]
    pub fn ln(&self) -> Var {
        let a = self.id;
        let x = self.value();
        let value = x.map(f32::ln);
        self.unary(
            value,
            Box::new(move |g| vec![(a, g.zip(&x, |gv, xv| gv / xv))]),
        )
    }

    /// Elementwise hyperbolic tangent.
    #[must_use]
    pub fn tanh(&self) -> Var {
        let a = self.id;
        let value = self.value().map(f32::tanh);
        let out = value.clone();
        self.unary(
            value,
            Box::new(move |g| vec![(a, g.zip(&out, |gv, yv| gv * (1.0 - yv * yv)))]),
        )
    }

    /// Elementwise square.
    #[must_use]
    pub fn square(&self) -> Var {
        let a = self.id;
        let x = self.value();
        let value = x.map(|v| v * v);
        self.unary(
            value,
            Box::new(move |g| vec![(a, g.zip(&x, |gv, xv| gv * 2.0 * xv))]),
        )
    }

    // ---------------------------------------------------------------
    // Shape ops
    // ---------------------------------------------------------------

    /// Reshape to `shape` (element count must match).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    #[must_use]
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let a = self.id;
        let old_shape = self.value().shape().to_vec();
        let value = self.value().reshape(shape);
        self.unary(
            value,
            Box::new(move |g| vec![(a, g.reshape(&old_shape))]),
        )
    }

    /// Flatten `[N, d1, d2, ...]` to `[N, d1*d2*...]`.
    ///
    /// # Panics
    ///
    /// Panics if the value is rank 0.
    #[must_use]
    pub fn flatten_batch(&self) -> Var {
        let s = self.shape();
        assert!(!s.is_empty(), "flatten_batch requires rank >= 1");
        let n = s[0];
        let rest: usize = s[1..].iter().product();
        self.reshape(&[n, rest])
    }

    // ---------------------------------------------------------------
    // Reductions
    // ---------------------------------------------------------------

    /// Sum of all elements, as a scalar.
    #[must_use]
    pub fn sum(&self) -> Var {
        let a = self.id;
        let shape = self.value().shape().to_vec();
        let value = Tensor::scalar(self.value().sum());
        self.unary(
            value,
            Box::new(move |g| vec![(a, Tensor::full(&shape, g.item()))]),
        )
    }

    /// Mean of all elements, as a scalar.
    ///
    /// # Panics
    ///
    /// Panics if the value is empty.
    #[must_use]
    pub fn mean(&self) -> Var {
        let n = self.value().len();
        assert!(n > 0, "mean of an empty tensor");
        self.sum().scale(1.0 / n as f32)
    }

    /// Row sums of a rank-2 value: `[N, M] -> [N]`.
    ///
    /// # Panics
    ///
    /// Panics unless the value is rank 2.
    #[must_use]
    pub fn sum_rows(&self) -> Var {
        let a = self.id;
        let s = self.shape();
        assert_eq!(s.len(), 2, "sum_rows requires a rank-2 value");
        let (n, m) = (s[0], s[1]);
        let x = self.value();
        let mut out = vec![0.0f32; n];
        for r in 0..n {
            out[r] = x.data()[r * m..(r + 1) * m].iter().sum();
        }
        self.unary(
            sized(out, &[n], "sum_rows shape"),
            Box::new(move |g| {
                let mut dx = vec![0.0f32; n * m];
                for r in 0..n {
                    let gv = g.data()[r];
                    for c in 0..m {
                        dx[r * m + c] = gv;
                    }
                }
                vec![(a, sized(dx, &[n, m], "sum_rows grad shape"))]
            }),
        )
    }

    // ---------------------------------------------------------------
    // Broadcasting helpers
    // ---------------------------------------------------------------

    /// `[N, F] + [F]` bias broadcast over rows.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch or tape mismatch.
    #[must_use]
    pub fn add_bias_row(&self, bias: &Var) -> Var {
        self.assert_same_tape(bias);
        let (a, b) = (self.id, bias.id);
        let xs = self.shape();
        let bs = bias.shape();
        assert_eq!(xs.len(), 2, "add_bias_row lhs must be rank 2");
        assert_eq!(bs.len(), 1, "add_bias_row bias must be rank 1");
        assert_eq!(xs[1], bs[0], "bias length must equal feature dim");
        let (n, f) = (xs[0], xs[1]);
        let x = self.value();
        let bv = bias.value();
        let mut out = x.data().to_vec();
        for r in 0..n {
            for c in 0..f {
                out[r * f + c] += bv.data()[c];
            }
        }
        self.unary(
            sized(out, &[n, f], "add_bias_row shape"),
            Box::new(move |g| {
                let mut db = vec![0.0f32; f];
                for r in 0..n {
                    for c in 0..f {
                        db[c] += g.data()[r * f + c];
                    }
                }
                vec![
                    (a, g.clone()),
                    (b, sized(db, &[f], "bias grad shape")),
                ]
            }),
        )
    }

    /// `[N, C, H, W] + [C]` bias broadcast over batch and space.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch or tape mismatch.
    #[must_use]
    pub fn add_bias_channel(&self, bias: &Var) -> Var {
        self.assert_same_tape(bias);
        let (a, b) = (self.id, bias.id);
        let xs = self.shape();
        let bs = bias.shape();
        assert_eq!(xs.len(), 4, "add_bias_channel lhs must be rank 4 (NCHW)");
        assert_eq!(bs.len(), 1, "add_bias_channel bias must be rank 1");
        assert_eq!(xs[1], bs[0], "bias length must equal channel dim");
        let (n, c, h, w) = (xs[0], xs[1], xs[2], xs[3]);
        let hw = h * w;
        let x = self.value();
        let bv = bias.value();
        let mut out = x.data().to_vec();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * hw;
                let add = bv.data()[ci];
                for o in &mut out[base..base + hw] {
                    *o += add;
                }
            }
        }
        self.unary(
            sized(out, &xs, "add_bias_channel shape"),
            Box::new(move |g| {
                let mut db = vec![0.0f32; c];
                for ni in 0..n {
                    for ci in 0..c {
                        let base = (ni * c + ci) * hw;
                        db[ci] += g.data()[base..base + hw].iter().sum::<f32>();
                    }
                }
                vec![
                    (a, g.clone()),
                    (b, sized(db, &[c], "channel bias grad shape")),
                ]
            }),
        )
    }

    /// Multiply this whole tensor by a scalar (rank-0 or one-element) `Var`.
    ///
    /// Used by the NAS supernet to weight candidate-operator outputs by
    /// Gumbel-Softmax coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `s` holds more than one element, or on tape mismatch.
    #[must_use]
    pub fn scale_by(&self, s: &Var) -> Var {
        self.assert_same_tape(s);
        let (a, b) = (self.id, s.id);
        let x = self.value();
        let sv = s.value();
        assert_eq!(sv.len(), 1, "scale_by expects a one-element scalar Var");
        let s_shape = sv.shape().to_vec();
        let c = sv.data()[0];
        let value = x.scale(c);
        self.unary(
            value,
            Box::new(move |g| {
                let dx = g.scale(c);
                let ds = g
                    .data()
                    .iter()
                    .zip(x.data().iter())
                    .map(|(gv, xv)| gv * xv)
                    .sum::<f32>();
                vec![
                    (a, dx),
                    (b, Tensor::full(&s_shape, ds)),
                ]
            }),
        )
    }

    // ---------------------------------------------------------------
    // Linear algebra
    // ---------------------------------------------------------------

    /// Matrix product `[N, K] @ [K, M] -> [N, M]`.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch or tape mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Var) -> Var {
        self.assert_same_tape(other);
        let (a, b) = (self.id, other.id);
        let (av, bv) = (self.value(), other.value());
        let value = matmul(&av, &bv);
        self.unary(
            value,
            Box::new(move |g| {
                let da = matmul_a_bt(g, &bv); // g @ B^T
                let db = matmul_at_b(&av, g); // A^T @ g
                vec![(a, da), (b, db)]
            }),
        )
    }

    // ---------------------------------------------------------------
    // Softmax family (rows of a rank-2 value)
    // ---------------------------------------------------------------

    /// Row-wise softmax of a `[N, M]` value.
    ///
    /// # Panics
    ///
    /// Panics unless the value is rank 2.
    #[must_use]
    pub fn softmax_rows(&self) -> Var {
        let a = self.id;
        let s = self.shape();
        assert_eq!(s.len(), 2, "softmax_rows requires a rank-2 value");
        let (n, m) = (s[0], s[1]);
        let x = self.value();
        let mut out = vec![0.0f32; n * m];
        for r in 0..n {
            softmax_into(&x.data()[r * m..(r + 1) * m], &mut out[r * m..(r + 1) * m]);
        }
        let value = sized(out, &[n, m], "softmax shape");
        let y = value.clone();
        self.unary(
            value,
            Box::new(move |g| {
                let mut dx = vec![0.0f32; n * m];
                for r in 0..n {
                    let yr = &y.data()[r * m..(r + 1) * m];
                    let gr = &g.data()[r * m..(r + 1) * m];
                    let dot: f32 = yr.iter().zip(gr.iter()).map(|(yv, gv)| yv * gv).sum();
                    for c in 0..m {
                        dx[r * m + c] = yr[c] * (gr[c] - dot);
                    }
                }
                vec![(a, sized(dx, &[n, m], "softmax grad shape"))]
            }),
        )
    }

    /// Row-wise log-softmax of a `[N, M]` value (numerically stable).
    ///
    /// # Panics
    ///
    /// Panics unless the value is rank 2.
    #[must_use]
    pub fn log_softmax_rows(&self) -> Var {
        let a = self.id;
        let s = self.shape();
        assert_eq!(s.len(), 2, "log_softmax_rows requires a rank-2 value");
        let (n, m) = (s[0], s[1]);
        let x = self.value();
        let mut out = vec![0.0f32; n * m];
        for r in 0..n {
            let row = &x.data()[r * m..(r + 1) * m];
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = mx + row.iter().map(|&v| (v - mx).exp()).sum::<f32>().ln();
            for c in 0..m {
                out[r * m + c] = row[c] - lse;
            }
        }
        let value = sized(out, &[n, m], "log_softmax shape");
        let y = value.clone();
        self.unary(
            value,
            Box::new(move |g| {
                let mut dx = vec![0.0f32; n * m];
                for r in 0..n {
                    let yr = &y.data()[r * m..(r + 1) * m];
                    let gr = &g.data()[r * m..(r + 1) * m];
                    let gsum: f32 = gr.iter().sum();
                    for c in 0..m {
                        dx[r * m + c] = gr[c] - yr[c].exp() * gsum;
                    }
                }
                vec![(a, sized(dx, &[n, m], "log_softmax grad shape"))]
            }),
        )
    }

    /// Gather one element per row: `[N, M]` with indices `[N]` to `[N]`.
    ///
    /// # Panics
    ///
    /// Panics unless the value is rank 2, `indices.len() == N`, and every
    /// index is in bounds.
    #[must_use]
    pub fn pick_rows(&self, indices: &[usize]) -> Var {
        let a = self.id;
        let s = self.shape();
        assert_eq!(s.len(), 2, "pick_rows requires a rank-2 value");
        let (n, m) = (s[0], s[1]);
        assert_eq!(indices.len(), n, "one index per row required");
        let idx = indices.to_vec();
        let x = self.value();
        let mut out = vec![0.0f32; n];
        for r in 0..n {
            assert!(idx[r] < m, "pick index {} out of bounds for {m}", idx[r]);
            out[r] = x.data()[r * m + idx[r]];
        }
        self.unary(
            sized(out, &[n], "pick shape"),
            Box::new(move |g| {
                let mut dx = vec![0.0f32; n * m];
                for r in 0..n {
                    dx[r * m + idx[r]] = g.data()[r];
                }
                vec![(a, sized(dx, &[n, m], "pick grad shape"))]
            }),
        )
    }

    // ---------------------------------------------------------------
    // Convolution / pooling / normalisation
    // ---------------------------------------------------------------

    /// Dense 2-D convolution (NCHW) with square kernels.
    ///
    /// `self` is `[N, Ci, H, W]`; `weight` is `[Co, Ci, k, k]`. Output is
    /// `[N, Co, Ho, Wo]` per `geom`. Bias, if any, is added separately via
    /// [`Var::add_bias_channel`].
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree with `geom` or on tape mismatch.
    #[must_use]
    pub fn conv2d(&self, weight: &Var, geom: Conv2dGeometry) -> Var {
        self.assert_same_tape(weight);
        let (a, b) = (self.id, weight.id);
        let x = self.value();
        let w = weight.value();
        let xs = x.shape().to_vec();
        assert_eq!(xs.len(), 4, "conv2d input must be NCHW");
        assert_eq!(
            &xs[1..],
            &[geom.in_channels, geom.in_h, geom.in_w],
            "conv2d input does not match geometry"
        );
        assert_eq!(
            w.shape(),
            &[geom.out_channels, geom.in_channels, geom.kernel, geom.kernel],
            "conv2d weight does not match geometry"
        );
        let n = xs[0];
        let (co, oh, ow) = (geom.out_channels, geom.out_h(), geom.out_w());
        let ckk = geom.col_rows();
        let image_len = geom.in_channels * geom.in_h * geom.in_w;
        let out_len = co * oh * ow;
        let w2d = w.reshape(&[co, ckk]);
        let mut out = vec![0.0f32; n * out_len];
        {
            // Per-image fan-out: each image's lowered GEMM is independent and
            // writes a disjoint output slice, so any partition of images
            // across lanes is bit-identical to the sequential loop.
            let xd = x.data();
            conv_fan_out(&mut out, n, out_len, geom.macs_per_image(), |ni, chunk| {
                let img = &xd[ni * image_len..(ni + 1) * image_len];
                let col = im2col(img, &geom);
                chunk.copy_from_slice(matmul(&w2d, &col).data());
            });
        }
        let value = sized(out, &[n, co, oh, ow], "conv2d output");
        self.unary(
            value,
            Box::new(move |g| {
                let w2d = w.reshape(&[co, ckk]);
                let xd = x.data();
                let gd = g.data();
                let mut dx = vec![0.0f32; n * image_len];
                // Per-image weight-gradient staging buffer: lanes fill
                // disjoint `[co, ckk]` blocks, then the caller reduces them
                // in image order so the dw sum is bit-identical to the
                // sequential accumulation regardless of thread count.
                let mut dw_per_image = vec![0.0f32; n * co * ckk];
                {
                    let mut slots: Vec<(&mut [f32], &mut [f32])> = dx
                        .chunks_mut(image_len)
                        .zip(dw_per_image.chunks_mut(co * ckk))
                        .collect();
                    let macs = geom.macs_per_image().saturating_mul(2);
                    conv_fan_out_slots(&mut slots, macs, |ni, dx_img, dw_img| {
                        let img = &xd[ni * image_len..(ni + 1) * image_len];
                        let col = im2col(img, &geom);
                        let gmat = sized(
                            gd[ni * out_len..(ni + 1) * out_len].to_vec(),
                            &[co, oh * ow],
                            "conv2d grad slice",
                        );
                        dw_img.copy_from_slice(matmul_a_bt(&gmat, &col).data());
                        let dcol = matmul_at_b(&w2d, &gmat);
                        col2im(&dcol, &geom, dx_img);
                    });
                }
                let mut dw = vec![0.0f32; co * ckk];
                for image_dw in dw_per_image.chunks(co * ckk) {
                    for (d, s) in dw.iter_mut().zip(image_dw.iter()) {
                        *d += s;
                    }
                }
                let dw = sized(
                    dw,
                    &[co, geom.in_channels, geom.kernel, geom.kernel],
                    "conv2d weight grad",
                );
                vec![(a, sized(dx, &xs, "conv2d input grad")), (b, dw)]
            }),
        )
    }

    /// Depthwise 2-D convolution (NCHW): one `k x k` filter per channel.
    ///
    /// `self` is `[N, C, H, W]`; `weight` is `[C, k, k]`. `geom` must have
    /// `in_channels == out_channels == C`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree with `geom` or on tape mismatch.
    #[must_use]
    pub fn depthwise_conv2d(&self, weight: &Var, geom: Conv2dGeometry) -> Var {
        self.assert_same_tape(weight);
        assert_eq!(
            geom.in_channels, geom.out_channels,
            "depthwise conv requires in_channels == out_channels"
        );
        let (a, b) = (self.id, weight.id);
        let x = self.value();
        let w = weight.value();
        let xs = x.shape().to_vec();
        assert_eq!(xs.len(), 4, "depthwise conv input must be NCHW");
        assert_eq!(
            &xs[1..],
            &[geom.in_channels, geom.in_h, geom.in_w],
            "depthwise conv input does not match geometry"
        );
        assert_eq!(
            w.shape(),
            &[geom.in_channels, geom.kernel, geom.kernel],
            "depthwise conv weight must be [C, k, k]"
        );
        let (n, c, h, wd) = (xs[0], xs[1], xs[2], xs[3]);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let k = geom.kernel;
        let (stride, pad) = (geom.stride, geom.padding);
        let macs_per_image = (c * k * k * oh * ow) as u64;
        let mut out = vec![0.0f32; n * c * oh * ow];
        {
            let xd = x.data();
            let wv = w.data();
            conv_fan_out(&mut out, n, c * oh * ow, macs_per_image, |ni, chunk| {
                for ci in 0..c {
                    let ibase = (ni * c + ci) * h * wd;
                    let obase = ci * oh * ow;
                    let wbase = ci * k * k;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = 0.0f32;
                            for ky in 0..k {
                                let iy = (oy * stride + ky) as isize - pad as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = (ox * stride + kx) as isize - pad as isize;
                                    if ix < 0 || ix >= wd as isize {
                                        continue;
                                    }
                                    acc += xd[ibase + iy as usize * wd + ix as usize]
                                        * wv[wbase + ky * k + kx];
                                }
                            }
                            chunk[obase + oy * ow + ox] = acc;
                        }
                    }
                }
            });
        }
        let value = sized(out, &[n, c, oh, ow], "depthwise conv output");
        self.unary(
            value,
            Box::new(move |g| {
                let xd = x.data();
                let wv = w.data();
                let gd = g.data();
                let mut dx = vec![0.0f32; n * c * h * wd];
                // Per-image dw staging, reduced in image order below, so the
                // shared weight gradient is bit-identical for any thread
                // count (see conv2d's backward for the same pattern).
                let mut dw_per_image = vec![0.0f32; n * c * k * k];
                {
                    let mut slots: Vec<(&mut [f32], &mut [f32])> = dx
                        .chunks_mut(c * h * wd)
                        .zip(dw_per_image.chunks_mut(c * k * k))
                        .collect();
                    let macs = macs_per_image.saturating_mul(2);
                    conv_fan_out_slots(&mut slots, macs, |ni, dx_img, dw_img| {
                        for ci in 0..c {
                            let ibase = ci * h * wd;
                            let obase = (ni * c + ci) * oh * ow;
                            let wbase = ci * k * k;
                            for oy in 0..oh {
                                for ox in 0..ow {
                                    let gv = gd[obase + oy * ow + ox];
                                    if gv == 0.0 {
                                        continue;
                                    }
                                    for ky in 0..k {
                                        let iy = (oy * stride + ky) as isize - pad as isize;
                                        if iy < 0 || iy >= h as isize {
                                            continue;
                                        }
                                        for kx in 0..k {
                                            let ix =
                                                (ox * stride + kx) as isize - pad as isize;
                                            if ix < 0 || ix >= wd as isize {
                                                continue;
                                            }
                                            let ii = ibase + iy as usize * wd + ix as usize;
                                            dx_img[ii] += gv * wv[wbase + ky * k + kx];
                                            dw_img[wbase + ky * k + kx] +=
                                                gv * xd[(ni * c) * h * wd + ii];
                                        }
                                    }
                                }
                            }
                        }
                    });
                }
                let mut dw = vec![0.0f32; c * k * k];
                for image_dw in dw_per_image.chunks(c * k * k) {
                    for (d, s) in dw.iter_mut().zip(image_dw.iter()) {
                        *d += s;
                    }
                }
                vec![
                    (a, sized(dx, &xs, "depthwise dx")),
                    (b, sized(dw, &[c, k, k], "depthwise dw")),
                ]
            }),
        )
    }

    /// Global average pooling `[N, C, H, W] -> [N, C]`.
    ///
    /// # Panics
    ///
    /// Panics unless the value is rank 4 with non-empty spatial dims.
    #[must_use]
    pub fn global_avg_pool(&self) -> Var {
        let a = self.id;
        let s = self.shape();
        assert_eq!(s.len(), 4, "global_avg_pool requires NCHW");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let hw = h * w;
        assert!(hw > 0, "global_avg_pool over empty spatial dims");
        let x = self.value();
        let mut out = vec![0.0f32; n * c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * hw;
                out[ni * c + ci] =
                    x.data()[base..base + hw].iter().sum::<f32>() / hw as f32;
            }
        }
        self.unary(
            sized(out, &[n, c], "gap shape"),
            Box::new(move |g| {
                let mut dx = vec![0.0f32; n * c * hw];
                for ni in 0..n {
                    for ci in 0..c {
                        let gv = g.data()[ni * c + ci] / hw as f32;
                        let base = (ni * c + ci) * hw;
                        for d in &mut dx[base..base + hw] {
                            *d = gv;
                        }
                    }
                }
                vec![(a, sized(dx, &[n, c, h, w], "gap grad shape"))]
            }),
        )
    }

    /// Training-mode batch normalisation over `[N, C, H, W]` with per-channel
    /// affine parameters `gamma` / `beta` (both `[C]`).
    ///
    /// Statistics are computed over the `(N, H, W)` axes; the full batch-norm
    /// backward (including the dependence of mean/variance on the input) is
    /// implemented.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch, on tape mismatch, or if the per-channel
    /// sample count `N*H*W` is zero.
    #[must_use]
    pub fn batch_norm2d(&self, gamma: &Var, beta: &Var, eps: f32) -> Var {
        self.assert_same_tape(gamma);
        self.assert_same_tape(beta);
        let (a, gi, bi) = (self.id, gamma.id, beta.id);
        let s = self.shape();
        assert_eq!(s.len(), 4, "batch_norm2d requires NCHW");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let m = n * h * w;
        assert!(m > 0, "batch_norm2d over an empty batch");
        let gv = gamma.value();
        let bv = beta.value();
        assert_eq!(gv.shape(), &[c], "gamma must be [C]");
        assert_eq!(bv.shape(), &[c], "beta must be [C]");
        let x = self.value();
        let hw = h * w;

        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for ci in 0..c {
            let mut acc = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * hw;
                acc += x.data()[base..base + hw].iter().sum::<f32>();
            }
            mean[ci] = acc / m as f32;
            let mut vacc = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * hw;
                for &xv in &x.data()[base..base + hw] {
                    let d = xv - mean[ci];
                    vacc += d * d;
                }
            }
            var[ci] = vacc / m as f32;
        }
        let ivar: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();

        let mut xhat = vec![0.0f32; n * c * hw];
        let mut out = vec![0.0f32; n * c * hw];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * hw;
                for o in 0..hw {
                    let xh = (x.data()[base + o] - mean[ci]) * ivar[ci];
                    xhat[base + o] = xh;
                    out[base + o] = gv.data()[ci] * xh + bv.data()[ci];
                }
            }
        }
        let xhat = sized(xhat, &s, "bn xhat shape");
        let value = sized(out, &s, "bn output shape");
        let shape = s.clone();
        self.unary(
            value,
            Box::new(move |g| {
                // Standard BN backward per channel:
                // dx = (gamma*ivar/m) * (m*g - sum(g) - xhat * sum(g*xhat))
                let mut dgamma = vec![0.0f32; c];
                let mut dbeta = vec![0.0f32; c];
                let mut gsum = vec![0.0f32; c];
                let mut gxsum = vec![0.0f32; c];
                for ni in 0..n {
                    for ci in 0..c {
                        let base = (ni * c + ci) * hw;
                        for o in 0..hw {
                            let gg = g.data()[base + o];
                            let xh = xhat.data()[base + o];
                            dbeta[ci] += gg;
                            dgamma[ci] += gg * xh;
                            gsum[ci] += gg;
                            gxsum[ci] += gg * xh;
                        }
                    }
                }
                let mut dx = vec![0.0f32; g.len()];
                for ni in 0..n {
                    for ci in 0..c {
                        let base = (ni * c + ci) * hw;
                        let k = gv.data()[ci] * ivar[ci] / m as f32;
                        for o in 0..hw {
                            let gg = g.data()[base + o];
                            let xh = xhat.data()[base + o];
                            dx[base + o] =
                                k * (m as f32 * gg - gsum[ci] - xh * gxsum[ci]);
                        }
                    }
                }
                vec![
                    (a, sized(dx, &shape, "bn dx shape")),
                    (gi, sized(dgamma, &[c], "bn dgamma shape")),
                    (bi, sized(dbeta, &[c], "bn dbeta shape")),
                ]
            }),
        )
    }

    /// Inference-mode batch normalisation using fixed statistics.
    ///
    /// `mean`/`var` are treated as constants; gradient flows to the input
    /// and the affine parameters only.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch or tape mismatch.
    #[must_use]
    pub fn batch_norm2d_inference(
        &self,
        gamma: &Var,
        beta: &Var,
        mean: &Tensor,
        var: &Tensor,
        eps: f32,
    ) -> Var {
        self.assert_same_tape(gamma);
        self.assert_same_tape(beta);
        let (a, gi, bi) = (self.id, gamma.id, beta.id);
        let s = self.shape();
        assert_eq!(s.len(), 4, "batch_norm2d_inference requires NCHW");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert_eq!(mean.shape(), &[c], "running mean must be [C]");
        assert_eq!(var.shape(), &[c], "running var must be [C]");
        let gv = gamma.value();
        let bv = beta.value();
        assert_eq!(gv.shape(), &[c], "gamma must be [C]");
        assert_eq!(bv.shape(), &[c], "beta must be [C]");
        let hw = h * w;
        let x = self.value();
        let ivar: Vec<f32> = var.data().iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let mut out = vec![0.0f32; x.len()];
        let mut xhat = vec![0.0f32; x.len()];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * hw;
                for o in 0..hw {
                    let xh = (x.data()[base + o] - mean.data()[ci]) * ivar[ci];
                    xhat[base + o] = xh;
                    out[base + o] = gv.data()[ci] * xh + bv.data()[ci];
                }
            }
        }
        let xhat = sized(xhat, &s, "bn-inf xhat shape");
        let shape = s.clone();
        self.unary(
            sized(out, &s, "bn-inf output shape"),
            Box::new(move |g| {
                let mut dgamma = vec![0.0f32; c];
                let mut dbeta = vec![0.0f32; c];
                let mut dx = vec![0.0f32; g.len()];
                for ni in 0..n {
                    for ci in 0..c {
                        let base = (ni * c + ci) * hw;
                        let k = gv.data()[ci] * ivar[ci];
                        for o in 0..hw {
                            let gg = g.data()[base + o];
                            dbeta[ci] += gg;
                            dgamma[ci] += gg * xhat.data()[base + o];
                            dx[base + o] = gg * k;
                        }
                    }
                }
                vec![
                    (a, sized(dx, &shape, "bn-inf dx shape")),
                    (gi, sized(dgamma, &[c], "bn-inf dgamma")),
                    (bi, sized(dbeta, &[c], "bn-inf dbeta")),
                ]
            }),
        )
    }
}

fn softmax_into(row: &[f32], out: &mut [f32]) {
    let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (o, &v) in out.iter_mut().zip(row.iter()) {
        let e = (v - mx).exp();
        *o = e;
        sum += e;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(tape: &Tape, data: Vec<f32>, shape: &[usize]) -> Var {
        tape.leaf(Tensor::from_vec(data, shape).unwrap())
    }

    #[test]
    fn add_sub_grads() {
        let tape = Tape::new();
        let a = leaf(&tape, vec![1.0, 2.0], &[2]);
        let b = leaf(&tape, vec![3.0, 4.0], &[2]);
        let y = a.add(&b).sub(&a); // y = b, but grads flow through both paths
        y.sum().backward();
        assert_eq!(a.grad().unwrap().data(), &[0.0, 0.0]);
        assert_eq!(b.grad().unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn div_grad() {
        let tape = Tape::new();
        let a = leaf(&tape, vec![6.0], &[1]);
        let b = leaf(&tape, vec![2.0], &[1]);
        let y = a.div(&b);
        y.backward();
        assert!((a.grad().unwrap().data()[0] - 0.5).abs() < 1e-6);
        assert!((b.grad().unwrap().data()[0] + 1.5).abs() < 1e-6);
    }

    #[test]
    fn matmul_value_and_grad() {
        let tape = Tape::new();
        let a = leaf(&tape, vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = leaf(&tape, vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let y = a.matmul(&b);
        assert_eq!(y.value().data(), &[19.0, 22.0, 43.0, 50.0]);
        y.sum().backward();
        // dA = ones @ B^T ; dB = A^T @ ones
        assert_eq!(a.grad().unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad().unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let tape = Tape::new();
        let x = leaf(&tape, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let y = x.softmax_rows();
        let v = y.value();
        for r in 0..2 {
            let s: f32 = v.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let tape = Tape::new();
        let x = leaf(&tape, vec![0.1, 1.5, -2.0, 0.3], &[2, 2]);
        let ls = x.log_softmax_rows().value().as_ref().clone();
        let sl = x.softmax_rows().value().map(f32::ln);
        assert!(ls.max_abs_diff(&sl) < 1e-5);
    }

    #[test]
    fn pick_rows_value_and_grad() {
        let tape = Tape::new();
        let x = leaf(&tape, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let y = x.pick_rows(&[2, 0]);
        assert_eq!(y.value().data(), &[3.0, 4.0]);
        y.sum().backward();
        assert_eq!(
            x.grad().unwrap().data(),
            &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]
        );
    }

    #[test]
    fn detach_blocks_gradient() {
        let tape = Tape::new();
        let x = leaf(&tape, vec![2.0], &[1]);
        let y = x.detach().mul(&x); // treats first factor as a constant 2
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[2.0]);
    }

    #[test]
    fn scale_by_scalar_var() {
        let tape = Tape::new();
        let x = leaf(&tape, vec![1.0, 2.0, 3.0], &[3]);
        let s = leaf(&tape, vec![2.0], &[1]);
        let y = x.scale_by(&s);
        assert_eq!(y.value().data(), &[2.0, 4.0, 6.0]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[2.0, 2.0, 2.0]);
        assert_eq!(s.grad().unwrap().data(), &[6.0]); // sum(x)
    }

    #[test]
    fn sum_rows_value_and_grad() {
        let tape = Tape::new();
        let x = leaf(&tape, vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let y = x.sum_rows();
        assert_eq!(y.value().data(), &[3.0, 7.0]);
        let w = tape.leaf(Tensor::from_vec(vec![1.0, 10.0], &[2]).unwrap());
        y.mul(&w).sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[1.0, 1.0, 10.0, 10.0]);
    }

    #[test]
    fn global_avg_pool_value() {
        let tape = Tape::new();
        let x = leaf(&tape, (0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let y = x.global_avg_pool();
        assert_eq!(y.value().shape(), &[1, 2]);
        assert_eq!(y.value().data(), &[1.5, 5.5]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.25; 8]);
    }

    #[test]
    fn conv2d_known_value() {
        // 1x1x2x2 input, single 2x2 kernel of ones, no pad, stride 1 => sum.
        let tape = Tape::new();
        let x = leaf(&tape, vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let w = leaf(&tape, vec![1.0; 4], &[1, 1, 2, 2]);
        let geom = Conv2dGeometry {
            in_channels: 1,
            out_channels: 1,
            kernel: 2,
            stride: 1,
            padding: 0,
            in_h: 2,
            in_w: 2,
        };
        let y = x.conv2d(&w, geom);
        assert_eq!(y.value().shape(), &[1, 1, 1, 1]);
        assert_eq!(y.value().item(), 10.0);
        y.sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[1.0; 4]);
        assert_eq!(w.grad().unwrap().data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn depthwise_conv2d_independent_channels() {
        let tape = Tape::new();
        // Two channels: channel 0 all ones, channel 1 all twos.
        let x = leaf(
            &tape,
            vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0],
            &[1, 2, 2, 2],
        );
        // Kernel: channel 0 identity-ish sum, channel 1 zeros.
        let w = leaf(&tape, vec![1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0], &[2, 2, 2]);
        let geom = Conv2dGeometry {
            in_channels: 2,
            out_channels: 2,
            kernel: 2,
            stride: 1,
            padding: 0,
            in_h: 2,
            in_w: 2,
        };
        let y = x.depthwise_conv2d(&w, geom);
        assert_eq!(y.value().shape(), &[1, 2, 1, 1]);
        assert_eq!(y.value().data(), &[4.0, 0.0]);
        y.sum().backward();
        // Channel 1 weights see input 2.0 everywhere.
        assert_eq!(
            w.grad().unwrap().data(),
            &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]
        );
    }

    #[test]
    fn batch_norm_normalises() {
        let tape = Tape::new();
        let x = leaf(&tape, vec![1.0, 2.0, 3.0, 4.0], &[4, 1, 1, 1]);
        let gamma = leaf(&tape, vec![1.0], &[1]);
        let beta = leaf(&tape, vec![0.0], &[1]);
        let y = x.batch_norm2d(&gamma, &beta, 1e-5);
        let v = y.value();
        let mean: f32 = v.data().iter().sum::<f32>() / 4.0;
        let var: f32 = v.data().iter().map(|&a| (a - mean) * (a - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn batch_norm_inference_uses_running_stats() {
        let tape = Tape::new();
        let x = leaf(&tape, vec![10.0, 20.0], &[2, 1, 1, 1]);
        let gamma = leaf(&tape, vec![2.0], &[1]);
        let beta = leaf(&tape, vec![1.0], &[1]);
        let mean = Tensor::from_vec(vec![10.0], &[1]).unwrap();
        let var = Tensor::from_vec(vec![4.0], &[1]).unwrap();
        let y = x.batch_norm2d_inference(&gamma, &beta, &mean, &var, 0.0);
        // (10-10)/2*2+1 = 1 ; (20-10)/2*2+1 = 11
        assert!((y.value().data()[0] - 1.0).abs() < 1e-4);
        assert!((y.value().data()[1] - 11.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "different tapes")]
    fn cross_tape_operations_panic() {
        let t1 = Tape::new();
        let t2 = Tape::new();
        let a = t1.leaf(Tensor::scalar(1.0));
        let b = t2.leaf(Tensor::scalar(2.0));
        let _ = a.add(&b);
    }

    #[test]
    fn reshape_grad_flows() {
        let tape = Tape::new();
        let x = leaf(&tape, vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let y = x.reshape(&[4]).relu().sum();
        y.backward();
        assert_eq!(x.grad().unwrap().shape(), &[2, 2]);
        assert_eq!(x.grad().unwrap().data(), &[1.0; 4]);
    }
}
