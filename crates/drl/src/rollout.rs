//! Rollout collection: step `n` environments for `L` steps under the
//! current policy (the inner loop of Alg. 1).
//!
//! # Determinism
//!
//! Each lane samples actions from its own RNG stream, split from the runner
//! seed by [`lane_stream_seed`], so lane `e`'s trajectory depends only on
//! `(seed, e)` — never on how many lanes run beside it or on how lanes are
//! partitioned across worker threads. Policy forwards happen on the calling
//! thread (the tape is not `Sync`); only env stepping and action sampling
//! fan out.

use crate::agent::{sample_index, ActorCritic};
use a3cs_envs::{EnvState, Environment, RestoreError};
use a3cs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Seed for lane `lane`'s action-sampling stream: a SplitMix64-style
/// finalizer over the runner seed and lane index, so streams are
/// decorrelated and depend only on `(seed, lane)`.
pub(crate) fn lane_stream_seed(seed: u64, lane: u64) -> u64 {
    let mut z = seed ^ 0x9e37_79b9_7f4a_7c15 ^ lane.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Factory producing fresh seeded environments (training uses one per
/// parallel lane, evaluation creates independent copies).
pub type EnvFactory<'f> = dyn Fn(u64) -> Box<dyn Environment> + 'f;

/// One collected rollout of `len` steps across `n_envs` environments.
///
/// Layouts are time-major: step `t`, environment `e` lives at index
/// `t * n_envs + e`.
#[derive(Debug, Clone)]
pub struct Rollout {
    /// Number of parallel environments.
    pub n_envs: usize,
    /// Steps per environment.
    pub len: usize,
    /// Observations at decision time, `[(len+1) * n_envs, obs_len]`
    /// flattened; the final `n_envs` rows are the bootstrap observations.
    pub observations: Vec<f32>,
    /// Observation length per environment.
    pub obs_len: usize,
    /// Action taken at each `(t, e)`.
    pub actions: Vec<usize>,
    /// Reward received at each `(t, e)`.
    pub rewards: Vec<f32>,
    /// Episode-termination flag at each `(t, e)`.
    pub dones: Vec<bool>,
}

impl Rollout {
    /// Total number of transitions (`len * n_envs`).
    #[must_use]
    pub fn transitions(&self) -> usize {
        self.len * self.n_envs
    }

    /// Sum of rewards in the rollout (diagnostic).
    #[must_use]
    pub fn total_reward(&self) -> f32 {
        self.rewards.iter().sum()
    }
}

/// Convert a flat observation batch into a `[n, planes, h, w]` tensor.
///
/// # Panics
///
/// Panics if the data length does not match.
#[must_use]
pub fn batch_to_tensor(data: &[f32], n: usize, shape: (usize, usize, usize)) -> Tensor {
    let (p, h, w) = shape;
    assert_eq!(
        data.len(),
        n * p * h * w,
        "batch length {} does not match [{n}, {p}, {h}, {w}]",
        data.len()
    );
    match Tensor::from_vec(data.to_vec(), &[n, p, h, w]) {
        Ok(t) => t,
        Err(e) => unreachable!("length asserted above: {e:?}"),
    }
}

/// Per-lane mutable state handed to one worker for a single step.
struct LaneSlot<'a> {
    env: &'a mut Box<dyn Environment>,
    rng: &'a mut StdRng,
    obs: &'a mut Vec<f32>,
    action: &'a mut usize,
    reward: &'a mut f32,
    done: &'a mut bool,
}

/// Persistent rollout state: keeps environments (and their mid-episode
/// state) alive across successive [`collect_rollout`] calls.
///
/// Each lane owns an action-sampling RNG stream split from the runner seed
/// (see the module docs), so collected data is bit-identical for every
/// thread count and lane trajectories are independent of the lane count.
pub struct RolloutRunner {
    envs: Vec<Box<dyn Environment>>,
    current_obs: Vec<Vec<f32>>,
    lane_rngs: Vec<StdRng>,
    /// One-shot fault injection: the next step of this lane panics (the
    /// flag clears *before* the panic, so a supervised retry of the phase
    /// replays cleanly). Deliberately not part of [`RunnerState`].
    armed_panic: AtomicUsize,
}

/// Sentinel for [`RolloutRunner::armed_panic`]: no lane is poisoned.
const NO_ARMED_PANIC: usize = usize::MAX;

impl RolloutRunner {
    /// Create `n_envs` environments from `factory` with distinct seeds.
    ///
    /// # Panics
    ///
    /// Panics if `n_envs == 0`.
    #[must_use]
    pub fn new(factory: &EnvFactory<'_>, n_envs: usize, seed: u64) -> Self {
        assert!(n_envs > 0, "need at least one environment");
        let mut envs: Vec<Box<dyn Environment>> = (0..n_envs)
            .map(|i| factory(seed.wrapping_add(i as u64)))
            .collect();
        let current_obs = envs.iter_mut().map(|e| e.reset()).collect();
        let lane_rngs = (0..n_envs)
            .map(|i| StdRng::seed_from_u64(lane_stream_seed(seed, i as u64)))
            .collect();
        RolloutRunner {
            envs,
            current_obs,
            lane_rngs,
            armed_panic: AtomicUsize::new(NO_ARMED_PANIC),
        }
    }

    /// Arm a one-shot panic on `lane`: its next [`RolloutRunner::collect`]
    /// step panics once (deterministic fault injection for supervision
    /// tests). Lanes out of range never fire.
    pub fn arm_panic(&self, lane: usize) {
        self.armed_panic.store(lane, Ordering::SeqCst);
    }

    /// Number of parallel environments.
    #[must_use]
    pub fn n_envs(&self) -> usize {
        self.envs.len()
    }

    /// Observation length of the wrapped environments.
    #[must_use]
    pub fn obs_len(&self) -> usize {
        self.envs.first().map_or(0, |e| e.observation_len())
    }

    /// Collect an `len`-step rollout under `agent`'s stochastic policy.
    ///
    /// The batched policy forward runs on the calling thread; action
    /// sampling and environment stepping fan out per lane across the
    /// [`threadpool::current`] pool with bit-identical results for any
    /// thread count.
    pub fn collect(&mut self, agent: &ActorCritic, len: usize) -> Rollout {
        let _span = telemetry::span!("rollout");
        let n = self.envs.len();
        telemetry::ENV_STEPS.add((len * n) as u64);
        let n_actions = agent.n_actions();
        let obs_len = self.obs_len();
        let mut observations = Vec::with_capacity((len + 1) * n * obs_len);
        let mut actions = vec![0usize; len * n];
        let mut rewards = vec![0.0f32; len * n];
        let mut dones = vec![false; len * n];

        for t in 0..len {
            let mut step_obs = Vec::with_capacity(n * obs_len);
            for o in &self.current_obs {
                step_obs.extend_from_slice(o);
            }
            let probs = agent.policy_probs(&step_obs, n);
            observations.extend_from_slice(&step_obs);

            let step = t * n..(t + 1) * n;
            let (actions_t, rewards_t, dones_t) = (
                &mut actions[step.clone()],
                &mut rewards[step.clone()],
                &mut dones[step],
            );
            let mut slots: Vec<LaneSlot<'_>> = self
                .envs
                .iter_mut()
                .zip(self.lane_rngs.iter_mut())
                .zip(self.current_obs.iter_mut())
                .zip(
                    actions_t
                        .iter_mut()
                        .zip(rewards_t.iter_mut())
                        .zip(dones_t.iter_mut()),
                )
                .map(|(((env, rng), obs), ((action, reward), done))| LaneSlot {
                    env,
                    rng,
                    obs,
                    action,
                    reward,
                    done,
                })
                .collect();
            let pd = probs.data();
            let armed = &self.armed_panic;
            threadpool::current().parallel_chunks_mut(&mut slots, |start, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let lane = start + i;
                    // Injected lane fault: clears before unwinding, so it is
                    // transient by construction.
                    assert!(
                        armed
                            .compare_exchange(
                                lane,
                                NO_ARMED_PANIC,
                                Ordering::SeqCst,
                                Ordering::SeqCst
                            )
                            .is_err(),
                        "injected environment panic on lane {lane}"
                    );
                    let row = &pd[lane * n_actions..(lane + 1) * n_actions];
                    let a = sample_index(row, slot.rng);
                    let out = slot.env.step(a);
                    *slot.action = a;
                    *slot.reward = out.reward;
                    *slot.done = out.done;
                    *slot.obs = if out.done {
                        slot.env.reset()
                    } else {
                        out.observation
                    };
                }
            });
        }
        // Bootstrap observations (post-rollout states).
        for o in &self.current_obs {
            observations.extend_from_slice(o);
        }

        Rollout {
            n_envs: n,
            len,
            observations,
            obs_len,
            actions,
            rewards,
            dones,
        }
    }
}

/// Snapshot of a [`RolloutRunner`]: per-lane environment states, per-lane
/// action-sampling RNG streams, and the in-flight observations.
///
/// Restoring this into a runner built from the same factory/lane count
/// resumes rollout collection bit-exactly mid-episode.
#[derive(Debug, Clone, PartialEq)]
pub struct RunnerState {
    /// Per-lane environment snapshots.
    pub envs: Vec<EnvState>,
    /// Per-lane action-sampling RNG words (xoshiro256++ state).
    pub lane_rngs: Vec<[u64; 4]>,
    /// Per-lane observation the next policy forward will consume.
    pub current_obs: Vec<Vec<f32>>,
}

/// Why a [`RunnerState`] could not be imported.
#[derive(Debug)]
pub enum RunnerStateError {
    /// The state has a different lane count than the runner, or its
    /// per-lane vectors disagree with each other.
    LaneMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// A lane's environment rejected its snapshot.
    Env {
        /// Lane whose environment failed to restore.
        lane: usize,
        /// The environment's rejection.
        source: RestoreError,
    },
}

impl std::fmt::Display for RunnerStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunnerStateError::LaneMismatch { detail } => {
                write!(f, "runner state lane mismatch: {detail}")
            }
            RunnerStateError::Env { lane, source } => {
                write!(f, "lane {lane} environment rejected snapshot: {source}")
            }
        }
    }
}

impl std::error::Error for RunnerStateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunnerStateError::Env { source, .. } => Some(source),
            RunnerStateError::LaneMismatch { .. } => None,
        }
    }
}

impl RolloutRunner {
    /// Export the runner's complete mutable state for checkpointing.
    #[must_use]
    pub fn export_state(&self) -> RunnerState {
        RunnerState {
            envs: self.envs.iter().map(|e| e.snapshot()).collect(),
            lane_rngs: self.lane_rngs.iter().map(rand::rngs::StdRng::state).collect(),
            current_obs: self.current_obs.clone(),
        }
    }

    /// Restore state captured by [`RolloutRunner::export_state`] into a
    /// runner built from the same factory and lane count.
    ///
    /// # Errors
    ///
    /// [`RunnerStateError`] if the lane counts disagree or any lane's
    /// environment rejects its snapshot. Counts are validated before
    /// anything is modified; if an *environment* restore fails partway the
    /// runner is left in an unspecified (but memory-safe) state and should
    /// be rebuilt.
    pub fn import_state(&mut self, state: &RunnerState) -> Result<(), RunnerStateError> {
        let n = self.envs.len();
        if state.envs.len() != n || state.lane_rngs.len() != n || state.current_obs.len() != n {
            return Err(RunnerStateError::LaneMismatch {
                detail: format!(
                    "runner has {n} lanes, state has {} envs / {} rngs / {} obs",
                    state.envs.len(),
                    state.lane_rngs.len(),
                    state.current_obs.len()
                ),
            });
        }
        for (lane, (env, snap)) in self.envs.iter_mut().zip(&state.envs).enumerate() {
            env.restore(snap)
                .map_err(|source| RunnerStateError::Env { lane, source })?;
        }
        for (rng, words) in self.lane_rngs.iter_mut().zip(&state.lane_rngs) {
            *rng = StdRng::from_state(*words);
        }
        self.current_obs.clone_from(&state.current_obs);
        Ok(())
    }
}

/// One-shot convenience: build a runner and collect a single rollout.
#[must_use]
pub fn collect_rollout(
    agent: &ActorCritic,
    factory: &EnvFactory<'_>,
    n_envs: usize,
    len: usize,
    seed: u64,
) -> Rollout {
    RolloutRunner::new(factory, n_envs, seed).collect(agent, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_envs::Breakout;
    use a3cs_nn::vanilla;

    fn agent() -> ActorCritic {
        let backbone = vanilla(3, 12, 12, 16, 0);
        ActorCritic::new(Box::new(backbone), 16, (3, 12, 12), 3, 1)
    }

    fn factory(seed: u64) -> Box<dyn Environment> {
        Box::new(Breakout::new(seed))
    }

    #[test]
    fn rollout_dimensions() {
        let a = agent();
        let r = collect_rollout(&a, &factory, 3, 5, 7);
        assert_eq!(r.transitions(), 15);
        assert_eq!(r.actions.len(), 15);
        assert_eq!(r.rewards.len(), 15);
        assert_eq!(r.dones.len(), 15);
        assert_eq!(r.observations.len(), (5 + 1) * 3 * r.obs_len);
    }

    #[test]
    fn runner_persists_episode_state() {
        let a = agent();
        let mut runner = RolloutRunner::new(&factory, 2, 3);
        let r1 = runner.collect(&a, 4);
        let r2 = runner.collect(&a, 4);
        // Unless an episode ended exactly at the boundary, the second
        // rollout starts where the first stopped.
        let last_of_r1 = &r1.observations[(4 + 1) * 2 * r1.obs_len - 2 * r1.obs_len..];
        let first_of_r2 = &r2.observations[..2 * r2.obs_len];
        assert_eq!(last_of_r1, first_of_r2);
    }

    #[test]
    fn actions_are_legal() {
        let a = agent();
        let r = collect_rollout(&a, &factory, 2, 10, 11);
        assert!(r.actions.iter().all(|&x| x < 3));
    }

    #[test]
    fn lane_trajectories_independent_of_lane_count() {
        // Lane e's trajectory must depend only on (seed, e): collecting with
        // 2 lanes and with 4 lanes must produce bit-identical data for the
        // two lanes they share.
        let a = agent();
        let r2 = collect_rollout(&a, &factory, 2, 4, 9);
        let r4 = collect_rollout(&a, &factory, 4, 4, 9);
        for t in 0..4 {
            for e in 0..2 {
                assert_eq!(r2.actions[t * 2 + e], r4.actions[t * 4 + e], "t={t} e={e}");
                assert_eq!(
                    r2.rewards[t * 2 + e].to_bits(),
                    r4.rewards[t * 4 + e].to_bits(),
                    "t={t} e={e}"
                );
                assert_eq!(r2.dones[t * 2 + e], r4.dones[t * 4 + e], "t={t} e={e}");
            }
        }
    }

    #[test]
    fn collect_bit_identical_across_thread_counts() {
        let a = agent();
        let run = || collect_rollout(&a, &factory, 4, 5, 13);
        let seq = threadpool::with_threads(1, run);
        let par = threadpool::with_threads(4, run);
        assert_eq!(seq.actions, par.actions);
        assert_eq!(seq.dones, par.dones);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&seq.rewards), bits(&par.rewards));
        assert_eq!(bits(&seq.observations), bits(&par.observations));
    }

    #[test]
    fn runner_state_round_trip_resumes_bit_exactly() {
        let a = agent();
        let mut runner = RolloutRunner::new(&factory, 2, 3);
        runner.collect(&a, 4); // advance into mid-episode state
        let state = runner.export_state();
        let reference = runner.collect(&a, 4);

        // A runner built from a different seed, once restored, must replay
        // the identical continuation.
        let mut resumed = RolloutRunner::new(&factory, 2, 99);
        resumed.import_state(&state).unwrap();
        let replay = resumed.collect(&a, 4);
        assert_eq!(reference.actions, replay.actions);
        assert_eq!(reference.dones, replay.dones);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&reference.rewards), bits(&replay.rewards));
        assert_eq!(bits(&reference.observations), bits(&replay.observations));
    }

    #[test]
    fn runner_state_lane_mismatch_is_rejected() {
        let runner = RolloutRunner::new(&factory, 2, 3);
        let state = runner.export_state();
        let mut wrong = RolloutRunner::new(&factory, 3, 3);
        assert!(matches!(
            wrong.import_state(&state),
            Err(RunnerStateError::LaneMismatch { .. })
        ));
    }

    #[test]
    fn batch_to_tensor_shapes() {
        let t = batch_to_tensor(&vec![0.0; 2 * 3 * 4 * 4], 2, (3, 4, 4));
        assert_eq!(t.shape(), &[2, 3, 4, 4]);
    }
}
