//! The parameterised chunk-based accelerator template.

use serde::{Deserialize, Serialize};

/// PE-to-PE interconnect topology of one chunk. Affects sustained MAC
/// efficiency (pipeline fill, operand delivery) and on-chip energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NocTopology {
    /// Single broadcast bus: cheap, but operand delivery stalls.
    Broadcast,
    /// 2-D systolic mesh: high efficiency after pipeline fill.
    Systolic,
    /// Multicast tree: between the two.
    Multicast,
}

impl NocTopology {
    /// Sustained fraction of peak MACs the topology achieves.
    #[must_use]
    pub fn efficiency(self) -> f64 {
        match self {
            NocTopology::Broadcast => 0.80,
            NocTopology::Systolic => 0.95,
            NocTopology::Multicast => 0.90,
        }
    }

    /// Relative on-chip interconnect energy per MAC operand (pJ-scale).
    #[must_use]
    pub fn energy_per_hop(self) -> f64 {
        match self {
            NocTopology::Broadcast => 0.20,
            NocTopology::Systolic => 0.08,
            NocTopology::Multicast => 0.12,
        }
    }
}

/// MAC scheduling dataflow (which operand stays stationary), determining
/// off-chip traffic multipliers in the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Partial sums held locally until complete (no psum traffic).
    OutputStationary,
    /// Weights loaded once per layer.
    WeightStationary,
    /// Row-stationary compromise (Eyeriss-style).
    RowStationary,
}

/// Rectangular processing-element array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PeArray {
    /// Rows (mapped to output channels).
    pub rows: usize,
    /// Columns (mapped to output pixels).
    pub cols: usize,
}

impl PeArray {
    /// Total PE (≈ DSP) count.
    #[must_use]
    pub fn count(&self) -> usize {
        self.rows * self.cols
    }
}

/// Division of a chunk's on-chip buffer among operand types (KiB each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufferAlloc {
    /// Input-activation buffer, KiB.
    pub input_kb: usize,
    /// Weight buffer, KiB.
    pub weight_kb: usize,
    /// Output/psum buffer, KiB.
    pub output_kb: usize,
}

impl BufferAlloc {
    /// Total KiB.
    #[must_use]
    pub fn total_kb(&self) -> usize {
        self.input_kb + self.weight_kb + self.output_kb
    }
}

/// Loop-tiling factors (output channels, input channels, output rows and
/// columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tiling {
    /// Output-channel tile `Tm`.
    pub tm: usize,
    /// Input-channel tile `Tn`.
    pub tn: usize,
    /// Output-row tile `Tr`.
    pub tr: usize,
    /// Output-column tile `Tc`.
    pub tc: usize,
}

/// One pipeline stage (sub-accelerator) of the template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChunkConfig {
    /// PE array geometry.
    pub pe: PeArray,
    /// PE interconnect.
    pub noc: NocTopology,
    /// MAC scheduling dataflow.
    pub dataflow: Dataflow,
    /// Buffer allocation.
    pub buffers: BufferAlloc,
    /// Loop tiling.
    pub tiling: Tiling,
}

/// A complete accelerator instance: the chunk pipeline plus the
/// layer-to-chunk assignment (layer `i` of the target network runs on
/// `chunks[assignment[i]]`; layers in one chunk execute sequentially).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// The pipeline stages.
    pub chunks: Vec<ChunkConfig>,
    /// Layer → chunk index map (length = number of network layers).
    pub assignment: Vec<usize>,
}

impl AcceleratorConfig {
    /// Total PE (DSP) count across all instantiated chunks.
    #[must_use]
    pub fn total_pes(&self) -> usize {
        self.chunks.iter().map(|c| c.pe.count()).sum()
    }

    /// Total on-chip buffer KiB across chunks.
    #[must_use]
    pub fn total_buffer_kb(&self) -> usize {
        self.chunks.iter().map(|c| c.buffers.total_kb()).sum()
    }

    /// Validate that every assignment entry indexes an existing chunk.
    #[must_use]
    pub fn assignment_valid(&self) -> bool {
        self.assignment.iter().all(|&c| c < self.chunks.len())
    }

    /// `true` when the assignment is non-decreasing, i.e. every chunk owns
    /// one contiguous interval of layers in pipeline-stage order. Pipelined
    /// execution requires this: activations flow chunk-to-chunk, so a
    /// layer cannot run on an earlier stage than its predecessor.
    #[must_use]
    pub fn assignment_contiguous(&self) -> bool {
        self.assignment.windows(2).all(|w| w[0] <= w[1])
    }

    /// `true` when the design fits the target's DSP and BRAM budgets.
    #[must_use]
    pub fn within_budget(&self, target: &crate::zc706::FpgaTarget) -> bool {
        self.total_pes() <= target.dsp_limit && self.total_buffer_kb() <= target.bram_kb_limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk() -> ChunkConfig {
        ChunkConfig {
            pe: PeArray { rows: 8, cols: 8 },
            noc: NocTopology::Systolic,
            dataflow: Dataflow::OutputStationary,
            buffers: BufferAlloc {
                input_kb: 32,
                weight_kb: 32,
                output_kb: 16,
            },
            tiling: Tiling {
                tm: 8,
                tn: 8,
                tr: 4,
                tc: 4,
            },
        }
    }

    #[test]
    fn totals_aggregate_chunks() {
        let cfg = AcceleratorConfig {
            chunks: vec![chunk(), chunk(), chunk()],
            assignment: vec![0, 1, 2, 1],
        };
        assert_eq!(cfg.total_pes(), 3 * 64);
        assert_eq!(cfg.total_buffer_kb(), 3 * 80);
        assert!(cfg.assignment_valid());
    }

    #[test]
    fn contiguity_and_budget_predicates() {
        use crate::zc706::FpgaTarget;
        let ok = AcceleratorConfig {
            chunks: vec![chunk(), chunk()],
            assignment: vec![0, 0, 1, 1],
        };
        assert!(ok.assignment_contiguous());
        assert!(ok.within_budget(&FpgaTarget::zc706()));
        let interleaved = AcceleratorConfig {
            chunks: vec![chunk(), chunk()],
            assignment: vec![0, 1, 0, 1],
        };
        assert!(!interleaved.assignment_contiguous());
        let tiny_target = FpgaTarget {
            dsp_limit: 100,
            ..FpgaTarget::zc706()
        };
        assert!(!ok.within_budget(&tiny_target));
    }

    #[test]
    fn invalid_assignment_detected() {
        let cfg = AcceleratorConfig {
            chunks: vec![chunk()],
            assignment: vec![0, 1],
        };
        assert!(!cfg.assignment_valid());
    }

    #[test]
    fn noc_efficiencies_are_ordered() {
        assert!(NocTopology::Systolic.efficiency() > NocTopology::Multicast.efficiency());
        assert!(NocTopology::Multicast.efficiency() > NocTopology::Broadcast.efficiency());
        assert!(NocTopology::Systolic.energy_per_hop() < NocTopology::Broadcast.energy_per_hop());
    }

    #[test]
    fn serde_round_trip() {
        let cfg = AcceleratorConfig {
            chunks: vec![chunk()],
            assignment: vec![0, 0],
        };
        let json = serde_json::to_string(&cfg).expect("serialise");
        let back: AcceleratorConfig = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(cfg, back);
    }
}
