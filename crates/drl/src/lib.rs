//! Actor–critic deep reinforcement learning with AC-distillation.
//!
//! This crate implements the DRL substrate of the A3C-S reproduction
//! (paper Sections III and IV-B):
//!
//! - [`ActorCritic`]: a shared backbone with policy and value heads;
//! - [`a2c_losses`]: the synchronous advantage actor–critic objective with
//!   td-error advantages (Eq. 2–3), entropy regularisation (Eq. 15), and
//!   the paper's **AC-distillation** terms (Eq. 10–12);
//! - [`RmsProp`] / [`Adam`] optimisers and the paper's constant-then-linear
//!   learning-rate schedule ([`LrSchedule`]);
//! - [`collect_rollout`]: n-environment, L-step rollout collection
//!   (Alg. 1's inner loop);
//! - [`evaluate`]: the 30-episode null-op-start evaluation protocol;
//! - [`Trainer`]: the end-to-end training loop producing score curves.
//!
//! # Example
//!
//! ```
//! use a3cs_drl::{ActorCritic, Trainer, TrainerConfig};
//! use a3cs_envs::Breakout;
//! use a3cs_nn::vanilla;
//!
//! let backbone = vanilla(3, 12, 12, 32, 0);
//! let agent = ActorCritic::new(Box::new(backbone), 32, (3, 12, 12), 3, 1);
//! let config = TrainerConfig {
//!     total_steps: 200,
//!     eval_every: 200,
//!     eval_episodes: 2,
//!     ..TrainerConfig::default()
//! };
//! let mut trainer = Trainer::new(config, 5);
//! let curve = trainer.train(&agent, &|seed| Box::new(Breakout::new(seed)), None);
//! assert!(!curve.points.is_empty());
//! ```

#![deny(missing_docs)]

mod a2c;
mod agent;
mod checkpoint;
mod distill;
mod eval;
mod frame;
mod optim;
mod rollout;
mod trainer;

pub use a2c::{a2c_losses, A2cConfig, LossStats};
pub use agent::ActorCritic;
pub use checkpoint::{
    fnv1a64, seal_envelope, seal_envelope_bytes, unseal_envelope, unseal_envelope_bytes,
    write_atomic, write_atomic_bytes, write_atomic_bytes_with, Checkpoint, CheckpointStore,
    CompactReport, EnvelopeError, LoadCheckpointError, Recovery, SaveCheckpointError, ScrubReport,
};
pub use distill::{DistillConfig, DistillMode};
pub use eval::{evaluate, EvalProtocol};
pub use frame::{
    apply_delta_frame, compress, decode_base_frame, decode_delta_header, decompress,
    encode_base_frame, encode_delta_frame, is_base_frame, is_frame, CheckpointCodec, CheckpointIo,
    DeltaHeader, FrameError, StdIo, BASE_FRAME_MAGIC, DELTA_FRAME_MAGIC,
};
pub use optim::{
    clip_grad_norm, Adam, LrSchedule, OptimStateError, Optimizer, OptimizerState, RmsProp,
};
pub use rollout::{
    batch_to_tensor, collect_rollout, EnvFactory, Rollout, RolloutRunner, RunnerState,
    RunnerStateError,
};
pub use trainer::{Trainer, TrainerConfig, TrainingCurve};
