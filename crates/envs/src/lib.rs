//! Simulated Atari-style environments: the reproduction's substitute for
//! the Arcade Learning Environment (ALE).
//!
//! The A3C-S paper evaluates DRL agents on Atari 2600 games through ALE,
//! which needs proprietary ROMs and a hardware-scale training budget.
//! This crate provides from-scratch grid-world MDPs named after their
//! Atari counterparts. Each game:
//!
//! - is a genuine sequential decision problem (not a bandit) with
//!   deterministic dynamics driven by a seeded RNG for stochastic events;
//! - renders multi-plane "pixel" observations (`[planes, H, W]`, values in
//!   `[0, 1]`), so convolutional backbones see spatially structured input;
//! - has episode semantics (termination, score accumulation) and supports
//!   the paper's evaluation protocol (null-op starts, 30-episode averages)
//!   via [`wrappers`].
//!
//! # Example
//!
//! ```
//! use a3cs_envs::{make_env, Environment};
//!
//! let mut env = make_env("Breakout", 7)?;
//! let obs = env.reset();
//! assert_eq!(obs.len(), {
//!     let (p, h, w) = env.observation_shape();
//!     p * h * w
//! });
//! let outcome = env.step(0);
//! assert!(outcome.reward.is_finite());
//! # Ok::<(), a3cs_envs::UnknownGameError>(())
//! ```

#![deny(missing_docs)]

mod env;
mod games;
mod registry;
mod state;
pub mod wrappers;

pub use env::{Environment, StepOutcome};
pub use state::{EnvState, RestoreError, StateReader, StateWriter};
pub use games::{
    Alien, Assault, Asterix, Asteroids, Atlantis, BattleZone, BeamRider, Bowling, Boxing,
    Breakout, Centipede, ChopperCommand, CrazyClimber, DemonAttack, Pong, Qbert, Seaquest,
    SpaceInvaders, Tennis, TimePilot, WizardOfWor,
};
pub use registry::{game_names, make_env, UnknownGameError};
