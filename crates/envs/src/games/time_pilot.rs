//! Time Pilot: a pivoting centre gunship against converging raiders.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;
const CENTRE: (isize, isize) = (GRID as isize / 2, GRID as isize / 2);

const DIRS: [(isize, isize); 4] = [(-1, 0), (1, 0), (0, -1), (0, 1)];

/// Time Pilot stand-in: the plane holds the screen centre and pivots
/// between four headings while enemies converge from the edges; each era
/// (wave of 8 kills) pays a `+10` bonus and speeds spawns up. Contact
/// ends the episode.
///
/// Actions: `0` no-op, `1` face up, `2` face down, `3` face left,
/// `4` face right, `5` fire (along the current heading).
#[derive(Debug, Clone)]
pub struct TimePilot {
    rng: StdRng,
    facing: usize,
    enemies: Vec<(isize, isize)>,
    shot: Option<(isize, isize, usize)>,
    kills: u32,
    clock: u32,
    done: bool,
}

impl TimePilot {
    /// Create a seeded Time Pilot game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TimePilot {
            rng: StdRng::seed_from_u64(seed),
            facing: 0,
            enemies: Vec::new(),
            shot: None,
            kills: 0,
            clock: 0,
            done: true,
        }
    }

    fn spawn_period(&self) -> u32 {
        (6 - (self.kills / 8).min(4)) as u32
    }

    fn spawn_enemy(&mut self) {
        let edge = self.rng.gen_range(0..4);
        let along = self.rng.gen_range(0..GRID as isize);
        let pos = match edge {
            0 => (0, along),
            1 => (GRID as isize - 1, along),
            2 => (along, 0),
            _ => (along, GRID as isize - 1),
        };
        self.enemies.push(pos);
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(4, GRID, GRID);
        canvas.paint(0, CENTRE.0, CENTRE.1, 1.0);
        let (dr, dc) = DIRS[self.facing];
        canvas.paint(1, CENTRE.0 + dr, CENTRE.1 + dc, 1.0);
        for &(r, c) in &self.enemies {
            canvas.paint(2, r, c, 1.0);
        }
        if let Some((r, c, _)) = self.shot {
            canvas.paint(3, r, c, 1.0);
        }
        canvas.into_observation()
    }
}

impl Environment for TimePilot {
    fn name(&self) -> &str {
        "TimePilot"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (4, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        6
    }

    fn reset(&mut self) -> Vec<f32> {
        self.facing = 0;
        self.enemies.clear();
        self.shot = None;
        self.kills = 0;
        self.clock = 0;
        self.done = false;
        for _ in 0..2 {
            self.spawn_enemy();
        }
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        self.clock += 1;
        match action {
            1..=4 => self.facing = action - 1,
            5 => {
                if self.shot.is_none() {
                    let (dr, dc) = DIRS[self.facing];
                    self.shot = Some((CENTRE.0 + dr, CENTRE.1 + dc, self.facing));
                }
            }
            _ => {}
        }

        let mut reward = 0.0f32;

        // Shot: 2 cells/step along its heading.
        if let Some((mut r, mut c, heading)) = self.shot.take() {
            let (dr, dc) = DIRS[heading];
            let mut live = true;
            for _ in 0..2 {
                if !(0..GRID as isize).contains(&r) || !(0..GRID as isize).contains(&c) {
                    live = false;
                    break;
                }
                if let Some(i) = self.enemies.iter().position(|&e| e == (r, c)) {
                    self.enemies.swap_remove(i);
                    self.kills += 1;
                    reward += 1.0;
                    if self.kills % 8 == 0 {
                        reward += 10.0; // era cleared
                    }
                    live = false;
                    break;
                }
                r += dr;
                c += dc;
            }
            if live && (0..GRID as isize).contains(&r) && (0..GRID as isize).contains(&c) {
                self.shot = Some((r, c, heading));
            }
        }

        // Enemies converge on the centre every other step, with jitter.
        if self.clock % 2 == 0 {
            for e in &mut self.enemies {
                if self.rng.gen_bool(0.85) {
                    if (e.0 - CENTRE.0).abs() > (e.1 - CENTRE.1).abs() {
                        e.0 += (CENTRE.0 - e.0).signum();
                    } else {
                        e.1 += (CENTRE.1 - e.1).signum();
                    }
                }
            }
        }

        if self.clock % self.spawn_period().max(1) == 0 && self.enemies.len() < 5 {
            self.spawn_enemy();
        }

        if self.enemies.iter().any(|&e| e == CENTRE) {
            self.done = true;
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("TimePilot");
        w.rng(&self.rng);
        w.usize(self.facing);
        w.usize(self.enemies.len());
        for item in &self.enemies {
            w.isize(item.0);
            w.isize(item.1);
        }
        w.bool(self.shot.is_some());
        if let Some(item) = &self.shot {
            w.isize(item.0);
            w.isize(item.1);
            w.usize(item.2);
        }
        w.u32(self.kills);
        w.u32(self.clock);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "TimePilot")?;
        self.rng = r.rng()?;
        self.facing = r.usize()?;
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push((r.isize()?, r.isize()?));
        }
        self.enemies = items;
        self.shot = if r.bool()? {
            Some((r.isize()?, r.isize()?, r.usize()?))
        } else {
            None
        };
        self.kills = r.u32()?;
        self.clock = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(TimePilot::new(171), TimePilot::new(171), 300);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = TimePilot::new(1);
        let total = random_rollout(&mut env, 1000, 21);
        assert!(total >= 0.0);
    }

    #[test]
    fn spawn_rate_increases_with_kills() {
        let mut env = TimePilot::new(2);
        let _ = env.reset();
        let early = env.spawn_period();
        env.kills = 16;
        assert!(env.spawn_period() < early);
    }

    #[test]
    fn idle_pilot_is_rammed() {
        let mut env = TimePilot::new(3);
        let _ = env.reset();
        let mut steps = 0;
        loop {
            steps += 1;
            if env.step(0).done {
                break;
            }
            assert!(steps < 2000);
        }
    }

    #[test]
    fn rotating_fire_scores() {
        let mut env = TimePilot::new(4);
        let _ = env.reset();
        let mut total = 0.0;
        for i in 0..600 {
            let a = if i % 2 == 0 { 5 } else { 1 + (i / 2) % 4 };
            let out = env.step(a);
            total += out.reward;
            if out.done {
                let _ = env.reset();
            }
        }
        assert!(total > 0.0);
    }
}
