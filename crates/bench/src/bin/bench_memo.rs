//! Transposition-table cost-cache benchmark: sweep throughput of the
//! memoized predictor vs direct evaluation on a repeated-evaluation
//! workload (the shape every search engine produces — beam generations,
//! converged DAS sampling and exhaustive re-runs all revisit candidates).
//!
//! The workload draws a pool of single-knob-mutation neighbours around a
//! base design (beam/DAS locality) and sweeps the pool for several
//! rounds. The direct leg decodes and runs the analytical predictor for
//! every visit; the cached leg serves revisits from the full-config
//! table and first visits through the per-chunk partial table. Both legs
//! must produce bit-identical cost vectors.
//!
//! Emits `BENCH_memo.json` in the working directory.
//!
//! ```sh
//! cargo run --release -p a3cs-bench --bin bench_memo
//! ```

use a3cs_accel::{
    CachedCostModel, CostModel, CostWeights, DirectCost, FpgaTarget, MemoStats, SearchSpace,
};
use a3cs_bench::report::{status, warn};
use a3cs_nn::resnet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// Pipeline chunks (paper scale).
const CHUNKS: usize = 4;
/// Distinct candidates in the sweep pool.
const POOL: usize = 400;
/// Sweep rounds over the pool (round 1 is cold, the rest revisit).
const ROUNDS: usize = 12;
/// Cost-cache size exponent (the `DasConfig` default).
const MEMO_LOG2: u32 = 14;
/// Acceptance floor on cached/uncached throughput.
const MIN_SPEEDUP: f64 = 5.0;
/// Acceptance floor on the full-table hit rate.
const MIN_HIT_RATE: f64 = 0.5;

#[derive(Serialize)]
struct MemoBench {
    chunks: usize,
    layers: usize,
    pool: usize,
    rounds: usize,
    memo_log2: u32,
    uncached_ms: f64,
    cached_ms: f64,
    uncached_evals_per_sec: f64,
    cached_evals_per_sec: f64,
    speedup: f64,
    hit_rate: f64,
    bit_identical: bool,
    stats: MemoStats,
}

/// Sweep the whole pool once through `model`, appending each cost.
fn sweep(model: &mut dyn CostModel, pool: &[Vec<usize>], costs: &mut Vec<f64>) {
    for choices in pool {
        costs.push(model.cost_choices(choices));
    }
}

fn main() {
    let space = SearchSpace::default();
    let layers = resnet(14, 4, 12, 12, 8, 32, 0).layer_descs();
    let target = FpgaTarget::zc706();
    let weights = CostWeights::default();
    let sizes = space.knob_sizes(CHUNKS, layers.len());
    let split = space.chunk_knob_sizes().len() * CHUNKS;

    // Candidate pool: a base design plus single-knob-mutation neighbours
    // (every candidate distinct from the base in exactly one position).
    let mut rng = StdRng::seed_from_u64(42);
    let mut base: Vec<usize> = sizes.iter().map(|&s| rng.gen_range(0..s)).collect();
    base[split..].sort_unstable();
    let mut pool = vec![base.clone()];
    while pool.len() < POOL {
        let mut c = base.clone();
        let k = rng.gen_range(0..split);
        if sizes[k] <= 1 {
            continue;
        }
        let mut v = rng.gen_range(0..sizes[k] - 1);
        if v >= c[k] {
            v += 1;
        }
        c[k] = v;
        pool.push(c);
    }

    status(format!(
        "cost-cache sweep: {POOL} candidates x {ROUNDS} rounds, {CHUNKS} chunks, {} layers\n",
        layers.len()
    ));

    let mut direct = DirectCost::new();
    direct.begin(&space, CHUNKS, &layers, &target, &weights);
    let mut cached = CachedCostModel::new(MEMO_LOG2);
    cached.begin(&space, CHUNKS, &layers, &target, &weights);

    // Warm-up round per leg (CPU caches; the cost cache is then reset so
    // the timed leg still pays its cold round).
    let mut scratch = Vec::with_capacity(POOL);
    sweep(&mut direct, &pool, &mut scratch);
    scratch.clear();
    sweep(&mut cached, &pool, &mut scratch);
    cached = CachedCostModel::new(MEMO_LOG2);
    cached.begin(&space, CHUNKS, &layers, &target, &weights);

    let mut direct_costs = Vec::with_capacity(POOL * ROUNDS);
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        sweep(&mut direct, &pool, &mut direct_costs);
    }
    let uncached_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut cached_costs = Vec::with_capacity(POOL * ROUNDS);
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        sweep(&mut cached, &pool, &mut cached_costs);
    }
    let cached_ms = t0.elapsed().as_secs_f64() * 1e3;

    let evals = (POOL * ROUNDS) as f64;
    let uncached_eps = evals / (uncached_ms / 1e3);
    let cached_eps = evals / (cached_ms / 1e3);
    let speedup = uncached_ms / cached_ms;
    let stats = cached.stats();
    let hit_rate = stats.hit_rate();
    let bit_identical = direct_costs.len() == cached_costs.len()
        && direct_costs
            .iter()
            .zip(cached_costs.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());

    status(format!(
        "direct {uncached_ms:8.1} ms ({uncached_eps:9.0} evals/s)   cached {cached_ms:8.1} ms ({cached_eps:9.0} evals/s)"
    ));
    status(format!(
        "speedup {speedup:.1}x   hit rate {:.1}%   evals saved {}   bit-identical {bit_identical}",
        hit_rate * 100.0,
        stats.evals_saved()
    ));

    let bench = MemoBench {
        chunks: CHUNKS,
        layers: layers.len(),
        pool: POOL,
        rounds: ROUNDS,
        memo_log2: MEMO_LOG2,
        uncached_ms,
        cached_ms,
        uncached_evals_per_sec: uncached_eps,
        cached_evals_per_sec: cached_eps,
        speedup,
        hit_rate,
        bit_identical,
        stats,
    };
    match serde_json::to_string_pretty(&bench) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_memo.json", json + "\n") {
                warn(format!("cannot write BENCH_memo.json: {e}"));
            } else {
                status("\n(results written to BENCH_memo.json)");
            }
        }
        Err(e) => warn(format!("cannot serialise results: {e}")),
    }

    assert!(bit_identical, "cached and direct costs diverged");
    assert!(
        hit_rate > MIN_HIT_RATE,
        "hit rate {hit_rate:.3} at or below the {MIN_HIT_RATE} floor"
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "speedup {speedup:.2}x below the {MIN_SPEEDUP}x floor"
    );
}
