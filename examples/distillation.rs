//! AC-distillation in isolation: train the same student backbone on the
//! simulated Atlantis game with (a) no distillation, (b) policy-only
//! distillation and (c) the paper's AC-distillation, from the same teacher
//! — a miniature of the paper's Table II ablation.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example distillation
//! ```

use a3cs::drl::{ActorCritic, DistillConfig, Trainer, TrainerConfig};
use a3cs::envs::{Atlantis, Environment};
use a3cs::nn::{resnet, vanilla};

fn main() {
    let factory = |seed: u64| -> Box<dyn Environment> { Box::new(Atlantis::new(seed)) };
    let (planes, h, w, actions) = (3, 12, 12, 4);

    println!("training the teacher (ResNet-20)...");
    let teacher_backbone = resnet(20, planes, h, w, 8, 32, 1);
    let teacher = ActorCritic::new(Box::new(teacher_backbone), 32, (planes, h, w), actions, 1);
    let teacher_cfg = TrainerConfig {
        total_steps: 8_000,
        eval_every: 8_000,
        eval_episodes: 5,
        eval_max_steps: 200,
        ..TrainerConfig::default()
    };
    let tcurve = Trainer::new(teacher_cfg, 9).train(&teacher, &factory, None);
    println!("teacher score: {:.1}\n", tcurve.final_score());

    let student_cfg = TrainerConfig {
        total_steps: 6_000,
        eval_every: 2_000,
        eval_episodes: 8,
        eval_max_steps: 200,
        ..TrainerConfig::default()
    };
    let modes: [(&str, Option<DistillConfig>); 3] = [
        ("no distillation", None),
        ("policy only", Some(DistillConfig::policy_only())),
        ("AC-distillation", Some(DistillConfig::ac_distillation())),
    ];
    println!("{:<18} {:>12}", "mode", "best score");
    for (name, distill) in modes {
        let backbone = vanilla(planes, h, w, 32, 5);
        let student = ActorCritic::new(Box::new(backbone), 32, (planes, h, w), actions, 5);
        let curve = match &distill {
            Some(d) => Trainer::new(student_cfg, 11).train(&student, &factory, Some((d, &teacher))),
            None => Trainer::new(student_cfg, 11).train(&student, &factory, None),
        };
        println!("{:<18} {:>12.1}", name, curve.best_score());
    }
}
