//! Quickstart: train a small actor–critic agent on the simulated Breakout
//! environment and watch the evaluation score improve.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use a3cs::drl::{evaluate, ActorCritic, EvalProtocol, Trainer, TrainerConfig};
use a3cs::envs::{Breakout, Environment};
use a3cs::nn::{vanilla, Module};

fn main() {
    let factory = |seed: u64| -> Box<dyn Environment> { Box::new(Breakout::new(seed)) };

    // Observation shape of Breakout: 3 planes on a 12x12 grid, 3 actions.
    let backbone = vanilla(3, 12, 12, 32, 42);
    println!(
        "backbone: {} ({} params, {} MACs/frame)",
        backbone.name(),
        backbone.param_count(),
        backbone.total_macs()
    );
    let agent = ActorCritic::new(Box::new(backbone), 32, (3, 12, 12), 3, 42);

    let protocol = EvalProtocol {
        episodes: 10,
        max_steps: 300,
        ..EvalProtocol::default()
    };
    let before = evaluate(&agent, &factory, &protocol);
    println!("score before training: {before:.1}");

    let config = TrainerConfig {
        total_steps: 12_000,
        eval_every: 3_000,
        eval_episodes: 10,
        eval_max_steps: 300,
        ..TrainerConfig::default()
    };
    let mut trainer = Trainer::new(config, 7);
    let curve = trainer.train(&agent, &factory, None);
    for (step, score) in &curve.points {
        println!("  step {step:>6}: eval score {score:.1}");
    }

    let after = evaluate(&agent, &factory, &protocol);
    println!("score after training:  {after:.1}");
    println!("best during training:  {:.1}", curve.best_score());
}
