//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded PRNG: xoshiro256++ (Blackman/Vigna),
/// state-initialised with SplitMix64. Not the upstream `rand` `StdRng`
/// algorithm, but the same contract: deterministic, high-quality,
/// non-cryptographic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StdRng {
    /// The four xoshiro256++ state words, for checkpointing. Restoring
    /// them with [`StdRng::from_state`] resumes the stream exactly where
    /// it left off.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from saved [`StdRng::state`] words.
    ///
    /// An all-zero state is a fixed point of xoshiro256++ and is replaced
    /// by the same non-zero word `seed_from_u64` falls back to.
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return StdRng {
                s: [0x9e37_79b9_7f4a_7c15, 0, 0, 0],
            };
        }
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zeros from any seed, but keep the guard explicit.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = rng.next_u64();
        let saved = rng.state();
        let expect: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut resumed = StdRng::from_state(saved);
        let got: Vec<u64> = (0..4).map(|_| resumed.next_u64()).collect();
        assert_eq!(expect, got);
    }

    #[test]
    fn all_zero_state_is_replaced() {
        // An untouched all-zero state would emit zeros forever; the
        // replacement word must produce a live stream. (The first two
        // outputs of the replacement state coincide by construction, so
        // look a few draws deep.)
        let mut rng = StdRng::from_state([0; 4]);
        let vals: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
        assert!(vals.iter().any(|&v| v != vals[0]));
    }

    #[test]
    fn stream_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        let vals: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let mut uniq = vals.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), vals.len());
    }
}
