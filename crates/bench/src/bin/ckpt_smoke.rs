//! Checkpoint durability smoke check: run a co-search in delta mode until
//! the store holds one base frame plus eight chained deltas, kill it, rot
//! a byte in the middle delta on disk, and resume. The resumed run must
//! fall back to the verified chain prefix, quarantine the rotten frame
//! and everything downstream of it (renamed `.bad`, never deleted), and
//! still finish bit-identically to a run that never faulted. Exits
//! nonzero on any failure, so `scripts/check.sh` can use it as a gate.
//!
//! ```sh
//! cargo run --release -p a3cs-bench --bin ckpt_smoke
//! ```

use a3cs_bench::report::{or_exit, status, warn};
use a3cs_core::{CoSearch, CoSearchConfig, CoSearchResult, FaultPlan, RobustnessEventKind};
use a3cs_envs::{Breakout, Environment};
use std::path::{Path, PathBuf};

/// Delta frames the interrupted run must leave behind (iterations 1..=8).
const CHAIN_DELTAS: usize = 8;
/// The chain position whose on-disk frame gets a byte flipped.
const ROTTEN: u64 = 4;
/// Seed shared by the reference, interrupted and resumed runs.
const SEED: u64 = 23;

fn factory(seed: u64) -> Box<dyn Environment> {
    Box::new(Breakout::new(seed))
}

fn fail(problems: &[String]) -> ! {
    for p in problems {
        warn(p);
    }
    std::process::exit(1);
}

fn tiny_config() -> CoSearchConfig {
    let mut cfg = CoSearchConfig::tiny(3, 12, 12, 3);
    cfg.total_steps = 300;
    cfg.eval_every = 100;
    cfg.eval_episodes = 2;
    cfg.eval_max_steps = 40;
    cfg.das_final_iters = 50;
    cfg
}

fn count_ext(dir: &Path, ext: &str) -> usize {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == ext))
                .count()
        })
        .unwrap_or(0)
}

fn curve_bits(curve: &[(u64, f32)]) -> Vec<(u64, u32)> {
    curve.iter().map(|&(s, v)| (s, v.to_bits())).collect()
}

fn check_bit_identical(a: &CoSearchResult, b: &CoSearchResult, problems: &mut Vec<String>) {
    if format!("{:?}", a.arch) != format!("{:?}", b.arch) {
        problems.push("derived architectures differ".to_owned());
    }
    if format!("{:?}", a.accelerator) != format!("{:?}", b.accelerator) {
        problems.push("accelerator configs differ".to_owned());
    }
    if curve_bits(&a.score_curve) != curve_bits(&b.score_curve) {
        problems.push("score curves differ bit-for-bit".to_owned());
    }
    if a.steps != b.steps {
        problems.push(format!("step counts differ: {} vs {}", a.steps, b.steps));
    }
}

fn main() {
    status("ckpt smoke: fault-free solo reference run\n");
    let reference = or_exit(CoSearch::try_new(tiny_config(), SEED)).run(&factory, None);

    let dir: PathBuf =
        std::env::temp_dir().join(format!("a3cs_ckpt_smoke_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    status(format!(
        "ckpt smoke: delta-mode run, crash after base + {CHAIN_DELTAS} deltas\n"
    ));
    let mut cfg = tiny_config();
    cfg.fault.checkpoint_dir = Some(dir.clone());
    cfg.fault.durability.delta = true;
    cfg.fault.plan = FaultPlan::none().abort_at(CHAIN_DELTAS as u64 + 1);
    if or_exit(CoSearch::try_new(cfg.clone(), SEED))
        .run_guarded(&factory, None)
        .is_ok()
    {
        fail(&["the interrupted run finished before its abort fired".to_owned()]);
    }

    let mut problems = Vec::new();
    let bases = count_ext(&dir, "json");
    let deltas = count_ext(&dir, "delta");
    if bases != 1 || deltas != CHAIN_DELTAS {
        problems.push(format!(
            "expected 1 base + {CHAIN_DELTAS} deltas on disk, found {bases} + {deltas}"
        ));
    }

    // Bit rot: flip one byte in the middle delta frame, past the envelope
    // header so the frame body (not just the seal) is damaged.
    let rotten = dir.join(format!("ckpt-{ROTTEN:012}.delta"));
    let mut bytes = or_exit(std::fs::read(&rotten));
    if bytes.len() <= 40 {
        fail(&[format!("{} is too short to rot", rotten.display())]);
    }
    bytes[40] ^= 0xff;
    or_exit(std::fs::write(&rotten, bytes));
    status(format!(
        "ckpt smoke: flipped a byte in {}, resuming\n",
        rotten.display()
    ));

    cfg.fault.plan = FaultPlan::none();
    let resumed = match or_exit(CoSearch::try_new(cfg, SEED)).run_guarded(&factory, None) {
        Ok(result) => result,
        Err(e) => fail(&[format!("resume after bit rot failed: {e}")]),
    };

    // Scrub quarantined the rotten frame and every delta downstream of it
    // (positions ROTTEN..=CHAIN_DELTAS), renamed — never deleted.
    let expected_bad = CHAIN_DELTAS - ROTTEN as usize + 1;
    let bad = count_ext(&dir, "bad");
    if bad != expected_bad {
        problems.push(format!(
            "expected {expected_bad} quarantined .bad frames, found {bad}"
        ));
    }
    let log = &resumed.robustness;
    if log.count(RobustnessEventKind::Resumed) != 1 {
        problems.push("resumed run did not log a resume".to_owned());
    }
    if log.count(RobustnessEventKind::DeltaChainFallback) == 0 {
        problems.push("recovery never logged a delta-chain fallback".to_owned());
    }
    if log.count(RobustnessEventKind::CheckpointQuarantined) != expected_bad {
        problems.push(format!(
            "expected {expected_bad} quarantine events, saw {}",
            log.count(RobustnessEventKind::CheckpointQuarantined)
        ));
    }
    check_bit_identical(&reference, &resumed, &mut problems);

    if !problems.is_empty() {
        fail(&problems);
    }
    status(format!(
        "ckpt smoke: OK (fell back past the rotten frame, {bad} frames quarantined, \
         resumed run bit-identical over {} steps)\n",
        resumed.steps
    ));
    std::fs::remove_dir_all(&dir).ok();
}
