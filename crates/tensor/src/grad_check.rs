//! Finite-difference gradient verification.
//!
//! Used throughout the workspace's test-suites to validate the hand-written
//! backward passes in [`crate::Var`].

use crate::tape::Tape;
use crate::tensor::Tensor;
use crate::var::Var;

/// Outcome of a [`check_gradients`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_error: f32,
    /// Largest relative difference (`|a - n| / max(1, |a|, |n|)`).
    pub max_rel_error: f32,
    /// Flat index of the worst element.
    pub worst_index: usize,
}

impl GradCheckReport {
    /// `true` when both error measures are below `tol`.
    #[must_use]
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_error <= tol || self.max_rel_error <= tol
    }
}

/// Central-difference numeric gradient of `f` (a scalar-valued function of
/// one tensor input) at `x`.
///
/// `f` is called with fresh tapes, so it may freely build graphs internally.
#[must_use]
pub fn numeric_gradient(f: &dyn Fn(&Tensor) -> f32, x: &Tensor, eps: f32) -> Tensor {
    let mut grad = Tensor::zeros(x.shape());
    let mut probe = x.clone();
    for i in 0..x.len() {
        let orig = probe.data()[i];
        probe.data_mut()[i] = orig + eps;
        let up = f(&probe);
        probe.data_mut()[i] = orig - eps;
        let down = f(&probe);
        probe.data_mut()[i] = orig;
        grad.data_mut()[i] = (up - down) / (2.0 * eps);
    }
    grad
}

/// Verify the analytic gradient of `build` (mapping an input leaf to a
/// scalar loss `Var`) against central differences at `x`.
///
/// # Panics
///
/// Panics if `build` produces a non-scalar loss.
#[must_use]
pub fn check_gradients(build: &dyn Fn(&Tape, &Var) -> Var, x: &Tensor, eps: f32) -> GradCheckReport {
    // Analytic gradient.
    let tape = Tape::new();
    let leaf = tape.leaf(x.clone());
    let loss = build(&tape, &leaf);
    assert_eq!(
        loss.value().len(),
        1,
        "gradient check requires a scalar loss"
    );
    loss.backward();
    let analytic = leaf
        .grad()
        .unwrap_or_else(|| Tensor::zeros(x.shape()));

    // Numeric gradient.
    let f = |probe: &Tensor| -> f32 {
        let tape = Tape::new();
        let leaf = tape.leaf(probe.clone());
        build(&tape, &leaf).value().item()
    };
    let numeric = numeric_gradient(&f, x, eps);

    let mut report = GradCheckReport {
        max_abs_error: 0.0,
        max_rel_error: 0.0,
        worst_index: 0,
    };
    for i in 0..x.len() {
        let a = analytic.data()[i];
        let n = numeric.data()[i];
        let abs = (a - n).abs();
        let rel = abs / a.abs().max(n.abs()).max(1.0);
        if abs > report.max_abs_error {
            report.max_abs_error = abs;
            report.worst_index = i;
        }
        report.max_rel_error = report.max_rel_error.max(rel);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Conv2dGeometry;

    const TOL: f32 = 2e-2;
    const EPS: f32 = 1e-2;

    fn check(build: &dyn Fn(&Tape, &Var) -> Var, x: &Tensor) {
        let report = check_gradients(build, x, EPS);
        assert!(
            report.passes(TOL),
            "gradient check failed: {report:?} for input {x:?}"
        );
    }

    #[test]
    fn numeric_gradient_of_square() {
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        let g = numeric_gradient(&|t| t.sq_norm(), &x, 1e-3);
        assert!(g.max_abs_diff(&x.scale(2.0)) < 1e-2);
    }

    #[test]
    fn grad_check_elementwise_chain() {
        let x = Tensor::randn(&[6], 0.8, 41);
        check(
            &|_t, v| v.tanh().square().add_scalar(0.3).ln().sum(),
            &x.map(|a| a.abs() + 0.5),
        );
    }

    #[test]
    fn grad_check_relu_away_from_kink() {
        let x = Tensor::from_vec(vec![1.0, -1.0, 2.0, -2.0], &[4]).unwrap();
        check(&|_t, v| v.relu().sum(), &x);
    }

    #[test]
    fn grad_check_softmax_entropy() {
        let x = Tensor::randn(&[2, 4], 1.0, 42);
        check(
            &|_t, v| {
                let p = v.softmax_rows();
                let lp = v.log_softmax_rows();
                p.mul(&lp).sum().neg()
            },
            &x,
        );
    }

    #[test]
    fn grad_check_matmul() {
        let x = Tensor::randn(&[3, 4], 1.0, 43);
        check(
            &|t, v| {
                let w = t.leaf(Tensor::randn(&[4, 2], 1.0, 99));
                v.matmul(&w).square().sum()
            },
            &x,
        );
    }

    #[test]
    fn grad_check_conv2d_input_and_weight() {
        let geom = Conv2dGeometry {
            in_channels: 2,
            out_channels: 3,
            kernel: 3,
            stride: 2,
            padding: 1,
            in_h: 5,
            in_w: 5,
        };
        let x = Tensor::randn(&[2, 2, 5, 5], 0.5, 44);
        check(
            &|t, v| {
                let w = t.leaf(Tensor::randn(&[3, 2, 3, 3], 0.5, 100));
                v.conv2d(&w, geom).square().sum()
            },
            &x,
        );
        // And the weight side.
        let w0 = Tensor::randn(&[3, 2, 3, 3], 0.5, 101);
        check(
            &|t, v| {
                let x = t.leaf(Tensor::randn(&[1, 2, 5, 5], 0.5, 102));
                let w = v.reshape(&[3, 2, 3, 3]);
                x.conv2d(&w, geom).square().sum()
            },
            &w0.reshape(&[3 * 2 * 3 * 3]),
        );
    }

    #[test]
    fn grad_check_depthwise_conv() {
        let geom = Conv2dGeometry {
            in_channels: 3,
            out_channels: 3,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_h: 4,
            in_w: 4,
        };
        let x = Tensor::randn(&[1, 3, 4, 4], 0.5, 45);
        check(
            &|t, v| {
                let w = t.leaf(Tensor::randn(&[3, 3, 3], 0.5, 103));
                v.depthwise_conv2d(&w, geom).square().sum()
            },
            &x,
        );
    }

    #[test]
    fn grad_check_batch_norm() {
        let x = Tensor::randn(&[4, 2, 3, 3], 1.0, 46);
        check(
            &|t, v| {
                let gamma = t.leaf(Tensor::from_vec(vec![1.2, 0.8], &[2]).unwrap());
                let beta = t.leaf(Tensor::from_vec(vec![0.1, -0.2], &[2]).unwrap());
                v.batch_norm2d(&gamma, &beta, 1e-3).square().sum()
            },
            &x,
        );
    }

    #[test]
    fn grad_check_bias_broadcasts() {
        let x = Tensor::randn(&[3, 4], 1.0, 47);
        check(
            &|t, v| {
                let b = t.leaf(Tensor::randn(&[4], 1.0, 104));
                v.add_bias_row(&b).square().sum()
            },
            &x,
        );
        let x4 = Tensor::randn(&[2, 3, 2, 2], 1.0, 48);
        check(
            &|t, v| {
                let b = t.leaf(Tensor::randn(&[3], 1.0, 105));
                v.add_bias_channel(&b).square().sum()
            },
            &x4,
        );
    }

    #[test]
    fn grad_check_global_avg_pool() {
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, 49);
        check(&|_t, v| v.global_avg_pool().square().sum(), &x);
    }
}
