//! Wire-format rendering for the exposition service: Prometheus text
//! format for `/metrics` and the `/healthz` JSON body.
//!
//! Every render is a pure function of one [`ObsSnapshot`], so the output
//! is deterministic byte-for-byte: families appear in a fixed order
//! (obs/fleet series, then the telemetry catalog in catalog order, then
//! phase and session series sorted by name/id), every family carries
//! `# HELP` and `# TYPE` lines, and metric names are the stable `a3cs_*`
//! namespace pinned by the exposition golden test.

use crate::rollup::ObsSnapshot;
use std::fmt::Write as _;
use telemetry::quantile_from_counts;

/// Quantiles exposed per histogram, with their metric-name suffixes.
const QUANTILES: [(f64, &str); 3] = [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")];

/// Mangle a catalog metric name (`gemm.macs`) into the Prometheus
/// namespace (`a3cs_gemm_macs`): every non-alphanumeric byte becomes `_`.
#[must_use]
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("a3cs_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value per the Prometheus text format.
fn label_value(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Shortest-round-trip float for exposition lines (`NaN`/`inf` are kept —
/// Prometheus accepts them — but the aggregator never produces them).
fn num(v: f64) -> String {
    format!("{v}")
}

fn family(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn session_labels(id: u64, name: &str) -> String {
    let mut labels = format!("session=\"{id}\",name=\"");
    label_value(name, &mut labels);
    labels.push('"');
    labels
}

/// Render the full `/metrics` body for one snapshot.
#[must_use]
pub fn render_prometheus(snap: &ObsSnapshot) -> String {
    let mut out = String::new();

    family(
        &mut out,
        "a3cs_obs_publishes_total",
        "Snapshots published to the observability plane.",
        "counter",
    );
    let _ = writeln!(out, "a3cs_obs_publishes_total {}", snap.seq);

    family(
        &mut out,
        "a3cs_fleet_ticks",
        "Scheduler ticks consumed (outer-loop iterations for solo runs).",
        "gauge",
    );
    let _ = writeln!(out, "a3cs_fleet_ticks {}", snap.ticks);

    family(
        &mut out,
        "a3cs_fleet_pool_budget",
        "Shared worker-pool budget: the degradation ladder's current rung.",
        "gauge",
    );
    let _ = writeln!(out, "a3cs_fleet_pool_budget {}", snap.pool_budget);

    family(
        &mut out,
        "a3cs_fleet_faults_total",
        "Session faults observed fleet-wide.",
        "counter",
    );
    let _ = writeln!(out, "a3cs_fleet_faults_total {}", snap.total_faults);

    family(
        &mut out,
        "a3cs_fleet_sessions",
        "Sessions submitted to the fleet.",
        "gauge",
    );
    let _ = writeln!(out, "a3cs_fleet_sessions {}", snap.sessions_total);

    family(
        &mut out,
        "a3cs_fleet_sessions_terminal",
        "Sessions in a terminal state (done, failed or cancelled).",
        "gauge",
    );
    let _ = writeln!(out, "a3cs_fleet_sessions_terminal {}", snap.sessions_terminal);

    if let Some(rate) = snap.memo_hit_rate {
        family(
            &mut out,
            "a3cs_memo_hit_rate",
            "Memoisation hit rate over all lookups so far.",
            "gauge",
        );
        let _ = writeln!(out, "a3cs_memo_hit_rate {}", num(rate));
    }

    for c in &snap.metrics.counters {
        let name = format!("{}_total", prom_name(c.name));
        family(&mut out, &name, &format!("Telemetry counter `{}`.", c.name), "counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for g in &snap.metrics.gauges {
        let name = prom_name(g.name);
        family(&mut out, &name, &format!("Telemetry gauge `{}`.", g.name), "gauge");
        let _ = writeln!(out, "{name} {}", num(g.value));
    }
    for h in &snap.metrics.histograms {
        let base = prom_name(h.name);
        let total: u64 = h.counts.iter().sum();
        let count_name = format!("{base}_count");
        family(
            &mut out,
            &count_name,
            &format!("Samples recorded by telemetry histogram `{}`.", h.name),
            "counter",
        );
        let _ = writeln!(out, "{count_name} {total}");
        for (q, suffix) in QUANTILES {
            let name = format!("{base}_{suffix}");
            family(
                &mut out,
                &name,
                &format!(
                    "q={q} of `{}`, interpolated within power-of-two buckets.",
                    h.name
                ),
                "gauge",
            );
            match quantile_from_counts(&h.counts, q) {
                Some(v) => {
                    let _ = writeln!(out, "{name} {}", num(v));
                }
                None => {
                    let _ = writeln!(out, "{name} 0");
                }
            }
        }
    }

    if !snap.phases.is_empty() {
        family(
            &mut out,
            "a3cs_phase_spans_total",
            "Telemetry spans recorded per phase.",
            "counter",
        );
        for p in &snap.phases {
            let mut labels = String::from("phase=\"");
            label_value(&p.name, &mut labels);
            labels.push('"');
            let _ = writeln!(out, "a3cs_phase_spans_total{{{labels}}} {}", p.count);
        }
        family(
            &mut out,
            "a3cs_phase_latency_ns_total",
            "Cumulative span latency per phase, in nanoseconds.",
            "counter",
        );
        for p in &snap.phases {
            let mut labels = String::from("phase=\"");
            label_value(&p.name, &mut labels);
            labels.push('"');
            let _ = writeln!(out, "a3cs_phase_latency_ns_total{{{labels}}} {}", p.total_ns);
        }
        family(
            &mut out,
            "a3cs_phase_latency_ns_max",
            "Worst single span per phase, in nanoseconds.",
            "gauge",
        );
        for p in &snap.phases {
            let mut labels = String::from("phase=\"");
            label_value(&p.name, &mut labels);
            labels.push('"');
            let _ = writeln!(out, "a3cs_phase_latency_ns_max{{{labels}}} {}", p.max_ns);
        }
    }

    if !snap.sessions.is_empty() {
        family(
            &mut out,
            "a3cs_session_state",
            "Session lifecycle state (1 for the current state label).",
            "gauge",
        );
        for s in &snap.sessions {
            let labels = session_labels(s.id, &s.name);
            let _ = writeln!(out, "a3cs_session_state{{{labels},state=\"{}\"}} 1", s.state);
        }
        family(&mut out, "a3cs_session_steps", "Env steps consumed per session.", "gauge");
        for s in &snap.sessions {
            let _ = writeln!(
                out,
                "a3cs_session_steps{{{}}} {}",
                session_labels(s.id, &s.name),
                s.steps
            );
        }
        family(
            &mut out,
            "a3cs_session_restarts_total",
            "Restarts spent per session.",
            "counter",
        );
        for s in &snap.sessions {
            let _ = writeln!(
                out,
                "a3cs_session_restarts_total{{{}}} {}",
                session_labels(s.id, &s.name),
                s.restarts
            );
        }
        family(
            &mut out,
            "a3cs_session_checkpoint_bytes_total",
            "Checkpoint bytes persisted per session, across attempts.",
            "counter",
        );
        for s in &snap.sessions {
            let _ = writeln!(
                out,
                "a3cs_session_checkpoint_bytes_total{{{}}} {}",
                session_labels(s.id, &s.name),
                s.checkpoint_bytes_written
            );
        }
        family(
            &mut out,
            "a3cs_session_checkpoint_restores_total",
            "Checkpoint restores (auto-resumes and rollbacks) per session.",
            "counter",
        );
        for s in &snap.sessions {
            let _ = writeln!(
                out,
                "a3cs_session_checkpoint_restores_total{{{}}} {}",
                session_labels(s.id, &s.name),
                s.checkpoint_restores
            );
        }
        family(
            &mut out,
            "a3cs_session_checkpoint_delta_frames_total",
            "Delta checkpoint frames persisted per session, across attempts.",
            "counter",
        );
        for s in &snap.sessions {
            let _ = writeln!(
                out,
                "a3cs_session_checkpoint_delta_frames_total{{{}}} {}",
                session_labels(s.id, &s.name),
                s.checkpoint_delta_frames
            );
        }
        family(
            &mut out,
            "a3cs_session_checkpoint_quarantined_total",
            "Broken checkpoint frames quarantined per session by store scrubs.",
            "counter",
        );
        for s in &snap.sessions {
            let _ = writeln!(
                out,
                "a3cs_session_checkpoint_quarantined_total{{{}}} {}",
                session_labels(s.id, &s.name),
                s.checkpoint_quarantined
            );
        }
        family(
            &mut out,
            "a3cs_session_checkpoint_lag",
            "Publishes since the session's checkpoint bytes last advanced.",
            "gauge",
        );
        for s in &snap.sessions {
            let _ = writeln!(
                out,
                "a3cs_session_checkpoint_lag{{{}}} {}",
                session_labels(s.id, &s.name),
                s.checkpoint_lag
            );
        }
        family(
            &mut out,
            "a3cs_session_events_total",
            "Robustness events per session, by kind.",
            "counter",
        );
        for s in &snap.sessions {
            let labels = session_labels(s.id, &s.name);
            for (kind, n) in [
                ("fault", s.fault_events),
                ("quarantine", s.quarantine_events),
                ("stall", s.stall_events),
                ("retry", s.retry_events),
                ("rollback", s.rollback_events),
            ] {
                let _ = writeln!(
                    out,
                    "a3cs_session_events_total{{{labels},kind=\"{kind}\"}} {n}"
                );
            }
        }
    }

    out
}

/// Render the `/healthz` body. Returns `(ready, json)`: `ready` is `false`
/// until the first publish lands, which maps to HTTP 503.
#[must_use]
pub fn render_health(snap: Option<&ObsSnapshot>) -> (bool, String) {
    match snap {
        None => (false, "{\"ready\":false}".to_string()),
        Some(s) => {
            let json = format!(
                "{{\"ready\":true,\"publishes\":{},\"ticks\":{},\"pool_budget\":{},\"total_faults\":{},\"sessions\":{},\"sessions_terminal\":{}}}",
                s.seq, s.ticks, s.pool_budget, s.total_faults, s.sessions_total, s.sessions_terminal
            );
            (true, json)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rollup::{PhaseStats, SessionRollup};
    use telemetry::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot, HISTOGRAM_BUCKETS};

    fn sample_snapshot() -> ObsSnapshot {
        let mut counts = vec![0u64; HISTOGRAM_BUCKETS];
        counts[4] = 4; // all samples in [8, 16)
        ObsSnapshot {
            seq: 3,
            ticks: 17,
            pool_budget: 2,
            total_faults: 1,
            sessions_total: 1,
            sessions_terminal: 0,
            memo_hit_rate: Some(0.75),
            phases: vec![PhaseStats {
                name: "iteration".to_string(),
                count: 5,
                total_ns: 5000,
                max_ns: 2000,
            }],
            sessions: vec![SessionRollup {
                id: 0,
                name: "alpha".to_string(),
                state: "running".to_string(),
                steps: 120,
                restarts: 1,
                checkpoint_bytes_written: 2048,
                checkpoint_restores: 1,
                checkpoint_delta_frames: 6,
                checkpoint_quarantined: 2,
                checkpoint_lag: 2,
                fault_events: 1,
                quarantine_events: 0,
                stall_events: 0,
                retry_events: 2,
                rollback_events: 0,
            }],
            metrics: MetricsSnapshot {
                counters: vec![CounterSample {
                    name: "env.steps",
                    value: 1200,
                }],
                gauges: vec![GaugeSample {
                    name: "loss.total",
                    value: 0.5,
                }],
                histograms: vec![HistogramSample {
                    name: "gemm.macs.per_call",
                    counts,
                }],
            },
        }
    }

    /// The wire format is pinned byte-for-byte: renaming a metric, losing
    /// a HELP/TYPE line or reordering families is a breaking change and
    /// must show up here.
    #[test]
    fn prometheus_exposition_golden() {
        let want = concat!(
            "# HELP a3cs_obs_publishes_total Snapshots published to the observability plane.\n",
            "# TYPE a3cs_obs_publishes_total counter\n",
            "a3cs_obs_publishes_total 3\n",
            "# HELP a3cs_fleet_ticks Scheduler ticks consumed (outer-loop iterations for solo runs).\n",
            "# TYPE a3cs_fleet_ticks gauge\n",
            "a3cs_fleet_ticks 17\n",
            "# HELP a3cs_fleet_pool_budget Shared worker-pool budget: the degradation ladder's current rung.\n",
            "# TYPE a3cs_fleet_pool_budget gauge\n",
            "a3cs_fleet_pool_budget 2\n",
            "# HELP a3cs_fleet_faults_total Session faults observed fleet-wide.\n",
            "# TYPE a3cs_fleet_faults_total counter\n",
            "a3cs_fleet_faults_total 1\n",
            "# HELP a3cs_fleet_sessions Sessions submitted to the fleet.\n",
            "# TYPE a3cs_fleet_sessions gauge\n",
            "a3cs_fleet_sessions 1\n",
            "# HELP a3cs_fleet_sessions_terminal Sessions in a terminal state (done, failed or cancelled).\n",
            "# TYPE a3cs_fleet_sessions_terminal gauge\n",
            "a3cs_fleet_sessions_terminal 0\n",
            "# HELP a3cs_memo_hit_rate Memoisation hit rate over all lookups so far.\n",
            "# TYPE a3cs_memo_hit_rate gauge\n",
            "a3cs_memo_hit_rate 0.75\n",
            "# HELP a3cs_env_steps_total Telemetry counter `env.steps`.\n",
            "# TYPE a3cs_env_steps_total counter\n",
            "a3cs_env_steps_total 1200\n",
            "# HELP a3cs_loss_total Telemetry gauge `loss.total`.\n",
            "# TYPE a3cs_loss_total gauge\n",
            "a3cs_loss_total 0.5\n",
            "# HELP a3cs_gemm_macs_per_call_count Samples recorded by telemetry histogram `gemm.macs.per_call`.\n",
            "# TYPE a3cs_gemm_macs_per_call_count counter\n",
            "a3cs_gemm_macs_per_call_count 4\n",
            "# HELP a3cs_gemm_macs_per_call_p50 q=0.5 of `gemm.macs.per_call`, interpolated within power-of-two buckets.\n",
            "# TYPE a3cs_gemm_macs_per_call_p50 gauge\n",
            "a3cs_gemm_macs_per_call_p50 12\n",
            "# HELP a3cs_gemm_macs_per_call_p95 q=0.95 of `gemm.macs.per_call`, interpolated within power-of-two buckets.\n",
            "# TYPE a3cs_gemm_macs_per_call_p95 gauge\n",
            "a3cs_gemm_macs_per_call_p95 15.6\n",
            "# HELP a3cs_gemm_macs_per_call_p99 q=0.99 of `gemm.macs.per_call`, interpolated within power-of-two buckets.\n",
            "# TYPE a3cs_gemm_macs_per_call_p99 gauge\n",
            "a3cs_gemm_macs_per_call_p99 15.92\n",
            "# HELP a3cs_phase_spans_total Telemetry spans recorded per phase.\n",
            "# TYPE a3cs_phase_spans_total counter\n",
            "a3cs_phase_spans_total{phase=\"iteration\"} 5\n",
            "# HELP a3cs_phase_latency_ns_total Cumulative span latency per phase, in nanoseconds.\n",
            "# TYPE a3cs_phase_latency_ns_total counter\n",
            "a3cs_phase_latency_ns_total{phase=\"iteration\"} 5000\n",
            "# HELP a3cs_phase_latency_ns_max Worst single span per phase, in nanoseconds.\n",
            "# TYPE a3cs_phase_latency_ns_max gauge\n",
            "a3cs_phase_latency_ns_max{phase=\"iteration\"} 2000\n",
            "# HELP a3cs_session_state Session lifecycle state (1 for the current state label).\n",
            "# TYPE a3cs_session_state gauge\n",
            "a3cs_session_state{session=\"0\",name=\"alpha\",state=\"running\"} 1\n",
            "# HELP a3cs_session_steps Env steps consumed per session.\n",
            "# TYPE a3cs_session_steps gauge\n",
            "a3cs_session_steps{session=\"0\",name=\"alpha\"} 120\n",
            "# HELP a3cs_session_restarts_total Restarts spent per session.\n",
            "# TYPE a3cs_session_restarts_total counter\n",
            "a3cs_session_restarts_total{session=\"0\",name=\"alpha\"} 1\n",
            "# HELP a3cs_session_checkpoint_bytes_total Checkpoint bytes persisted per session, across attempts.\n",
            "# TYPE a3cs_session_checkpoint_bytes_total counter\n",
            "a3cs_session_checkpoint_bytes_total{session=\"0\",name=\"alpha\"} 2048\n",
            "# HELP a3cs_session_checkpoint_restores_total Checkpoint restores (auto-resumes and rollbacks) per session.\n",
            "# TYPE a3cs_session_checkpoint_restores_total counter\n",
            "a3cs_session_checkpoint_restores_total{session=\"0\",name=\"alpha\"} 1\n",
            "# HELP a3cs_session_checkpoint_delta_frames_total Delta checkpoint frames persisted per session, across attempts.\n",
            "# TYPE a3cs_session_checkpoint_delta_frames_total counter\n",
            "a3cs_session_checkpoint_delta_frames_total{session=\"0\",name=\"alpha\"} 6\n",
            "# HELP a3cs_session_checkpoint_quarantined_total Broken checkpoint frames quarantined per session by store scrubs.\n",
            "# TYPE a3cs_session_checkpoint_quarantined_total counter\n",
            "a3cs_session_checkpoint_quarantined_total{session=\"0\",name=\"alpha\"} 2\n",
            "# HELP a3cs_session_checkpoint_lag Publishes since the session's checkpoint bytes last advanced.\n",
            "# TYPE a3cs_session_checkpoint_lag gauge\n",
            "a3cs_session_checkpoint_lag{session=\"0\",name=\"alpha\"} 2\n",
            "# HELP a3cs_session_events_total Robustness events per session, by kind.\n",
            "# TYPE a3cs_session_events_total counter\n",
            "a3cs_session_events_total{session=\"0\",name=\"alpha\",kind=\"fault\"} 1\n",
            "a3cs_session_events_total{session=\"0\",name=\"alpha\",kind=\"quarantine\"} 0\n",
            "a3cs_session_events_total{session=\"0\",name=\"alpha\",kind=\"stall\"} 0\n",
            "a3cs_session_events_total{session=\"0\",name=\"alpha\",kind=\"retry\"} 2\n",
            "a3cs_session_events_total{session=\"0\",name=\"alpha\",kind=\"rollback\"} 0\n",
        );
        assert_eq!(render_prometheus(&sample_snapshot()), want);
    }

    #[test]
    fn prom_name_mangles_into_the_a3cs_namespace() {
        assert_eq!(prom_name("gemm.macs"), "a3cs_gemm_macs");
        assert_eq!(prom_name("checkpoint.bytes_written"), "a3cs_checkpoint_bytes_written");
        assert_eq!(prom_name("per-call"), "a3cs_per_call");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut out = String::new();
        label_value("a\"b\\c\nd", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn health_renders_ready_and_unready() {
        let (ready, body) = render_health(None);
        assert!(!ready);
        assert_eq!(body, "{\"ready\":false}");
        let (ready, body) = render_health(Some(&sample_snapshot()));
        assert!(ready);
        assert_eq!(
            body,
            "{\"ready\":true,\"publishes\":3,\"ticks\":17,\"pool_budget\":2,\"total_faults\":1,\"sessions\":1,\"sessions_terminal\":0}"
        );
    }
}
