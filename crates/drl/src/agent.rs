//! The actor–critic agent: shared backbone, policy head, value head.

use a3cs_nn::{Linear, Module, Param};
use a3cs_tensor::{Tape, Tensor, Var};
use rand::rngs::StdRng;
use rand::Rng;

/// An actor–critic agent (paper Section III): a feature-extractor backbone
/// shared by a softmax policy head (the actor, `θ_π`) and a scalar value
/// head (the critic, `θ_v`).
///
/// The policy head is initialised near zero so the initial policy is close
/// to uniform, which the entropy term then maintains early in training.
pub struct ActorCritic {
    backbone: Box<dyn Module>,
    policy_head: Linear,
    value_head: Linear,
    obs_shape: (usize, usize, usize),
    n_actions: usize,
}

impl ActorCritic {
    /// Assemble an agent around `backbone` (which must map observations to
    /// `feat_dim` features).
    ///
    /// # Panics
    ///
    /// Panics if `n_actions == 0` or `feat_dim == 0`.
    #[must_use]
    pub fn new(
        backbone: Box<dyn Module>,
        feat_dim: usize,
        obs_shape: (usize, usize, usize),
        n_actions: usize,
        seed: u64,
    ) -> Self {
        assert!(n_actions > 0, "agent needs at least one action");
        let policy_head =
            Linear::new("policy_head", feat_dim, n_actions, seed).with_init_scale(0.01);
        let value_head =
            Linear::new("value_head", feat_dim, 1, seed.wrapping_add(1)).with_init_scale(0.1);
        ActorCritic {
            backbone,
            policy_head,
            value_head,
            obs_shape,
            n_actions,
        }
    }

    /// The observation shape `(planes, height, width)` this agent consumes.
    #[must_use]
    pub fn obs_shape(&self) -> (usize, usize, usize) {
        self.obs_shape
    }

    /// Number of discrete actions.
    #[must_use]
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// The underlying backbone module.
    #[must_use]
    pub fn backbone(&self) -> &dyn Module {
        self.backbone.as_ref()
    }

    /// Forward a batch of observations, returning `(logits [N, A],
    /// values [N])`.
    ///
    /// # Panics
    ///
    /// Panics if `obs` is not `[N, planes, height, width]` for this agent's
    /// observation shape.
    #[must_use]
    pub fn forward(&self, tape: &Tape, obs: &Var, train: bool) -> (Var, Var) {
        let s = obs.shape();
        let (p, h, w) = self.obs_shape;
        assert_eq!(
            &s[1..],
            &[p, h, w],
            "observation batch shape mismatch: got {s:?}"
        );
        let features = self.backbone.forward(tape, obs, train);
        let logits = self.policy_head.forward(tape, &features, train);
        let values = self.value_head.forward(tape, &features, train);
        let n = s[0];
        (logits, values.reshape(&[n]))
    }

    /// Policy probabilities for a batch of raw observations (no grad use).
    ///
    /// # Panics
    ///
    /// Panics if `obs_batch` length is not a multiple of the observation
    /// length.
    #[must_use]
    pub fn policy_probs(&self, obs_batch: &[f32], n: usize) -> Tensor {
        let tape = Tape::new();
        let obs = self.obs_tensor(obs_batch, n);
        let (logits, _) = self.forward(&tape, &tape.leaf(obs), false);
        logits.softmax_rows().value().as_ref().clone()
    }

    /// Sample one action per observation from the current policy.
    #[must_use]
    pub fn act(&self, obs_batch: &[f32], n: usize, rng: &mut StdRng) -> Vec<usize> {
        let probs = self.policy_probs(obs_batch, n);
        (0..n)
            .map(|r| {
                let row = &probs.data()[r * self.n_actions..(r + 1) * self.n_actions];
                sample_index(row, rng)
            })
            .collect()
    }

    /// Greedy (argmax) actions for a batch of observations.
    #[must_use]
    pub fn act_greedy(&self, obs_batch: &[f32], n: usize) -> Vec<usize> {
        self.policy_probs(obs_batch, n).argmax_rows()
    }

    /// Build an observation batch tensor `[n, planes, h, w]` from raw data.
    ///
    /// # Panics
    ///
    /// Panics if the data length does not equal `n * planes * h * w`.
    #[must_use]
    pub fn obs_tensor(&self, obs_batch: &[f32], n: usize) -> Tensor {
        let (p, h, w) = self.obs_shape;
        assert_eq!(
            obs_batch.len(),
            n * p * h * w,
            "observation batch length {} does not match [{n}, {p}, {h}, {w}]",
            obs_batch.len()
        );
        match Tensor::from_vec(obs_batch.to_vec(), &[n, p, h, w]) {
            Ok(t) => t,
            Err(e) => unreachable!("length asserted above: {e:?}"),
        }
    }

    /// All learnable parameters (backbone + both heads).
    #[must_use]
    pub fn params(&self) -> Vec<Param> {
        let mut p = self.backbone.params();
        p.extend(self.policy_head.params());
        p.extend(self.value_head.params());
        p
    }

    /// Non-learnable state tensors (e.g. batch-norm running statistics)
    /// that checkpoints must capture alongside [`ActorCritic::params`] for
    /// evaluation forwards to resume bit-exactly.
    #[must_use]
    pub fn state(&self) -> Vec<Param> {
        let mut s = self.backbone.state();
        s.extend(self.policy_head.state());
        s.extend(self.value_head.state());
        s
    }

    /// Zero all accumulated gradients.
    pub fn zero_grad(&self) {
        for p in self.params() {
            p.zero_grad();
        }
    }

    /// Copy every parameter value from `source` (shapes must match; used
    /// to snapshot teacher agents).
    ///
    /// # Panics
    ///
    /// Panics if the parameter lists differ in length or shapes.
    pub fn copy_params_from(&self, source: &ActorCritic) {
        let mine = self.params();
        let theirs = source.params();
        assert_eq!(
            mine.len(),
            theirs.len(),
            "agents have different parameter lists"
        );
        for (m, t) in mine.iter().zip(theirs.iter()) {
            m.set_value(t.value());
        }
    }
}

/// Sample an index proportional to `weights` (assumed non-negative, not
/// all zero; falls back to argmax on degenerate rows).
pub(crate) fn sample_index(weights: &[f32], rng: &mut StdRng) -> usize {
    let total: f32 = weights.iter().sum();
    if !(total > 0.0) || !total.is_finite() {
        // Degenerate distribution: be deterministic (first maximum) rather
        // than panic.
        let mut best = 0;
        for (i, &w) in weights.iter().enumerate() {
            if w > weights[best] {
                best = i;
            }
        }
        return best;
    }
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_nn::vanilla;
    use rand::SeedableRng;

    fn tiny_agent(seed: u64) -> ActorCritic {
        let backbone = vanilla(3, 12, 12, 16, seed);
        ActorCritic::new(Box::new(backbone), 16, (3, 12, 12), 4, seed)
    }

    #[test]
    fn forward_shapes() {
        let agent = tiny_agent(1);
        let tape = Tape::new();
        let obs = tape.leaf(Tensor::randn(&[5, 3, 12, 12], 0.3, 2));
        let (logits, values) = agent.forward(&tape, &obs, true);
        assert_eq!(logits.shape(), vec![5, 4]);
        assert_eq!(values.shape(), vec![5]);
    }

    #[test]
    fn initial_policy_is_near_uniform() {
        let agent = tiny_agent(2);
        let obs = vec![0.5; 3 * 12 * 12];
        let probs = agent.policy_probs(&obs, 1);
        for &p in probs.data() {
            assert!((p - 0.25).abs() < 0.1, "initial policy too peaked: {p}");
        }
    }

    #[test]
    fn act_samples_all_actions_over_time() {
        let agent = tiny_agent(3);
        let obs = vec![0.1; 3 * 12 * 12];
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let a = agent.act(&obs, 1, &mut rng)[0];
            seen[a] = true;
        }
        assert!(seen.iter().all(|&s| s), "near-uniform policy must explore");
    }

    #[test]
    fn copy_params_transfers_behaviour() {
        let a = tiny_agent(4);
        let b = tiny_agent(5);
        let obs = vec![0.3; 3 * 12 * 12];
        assert_ne!(a.policy_probs(&obs, 1), b.policy_probs(&obs, 1));
        b.copy_params_from(&a);
        assert_eq!(a.policy_probs(&obs, 1), b.policy_probs(&obs, 1));
    }

    #[test]
    fn sample_index_degenerate_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_index(&[0.0, 0.0, 0.0], &mut rng), 0);
        assert_eq!(sample_index(&[0.0, 1.0, 0.0], &mut rng), 1);
    }

    #[test]
    fn sample_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 2];
        for _ in 0..1000 {
            counts[sample_index(&[0.9, 0.1], &mut rng)] += 1;
        }
        assert!(counts[0] > 700, "heavy side undersampled: {counts:?}");
    }
}
