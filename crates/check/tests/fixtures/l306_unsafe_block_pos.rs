//! Positive fixture: an unwaived `unsafe` block must fire A3CS-L306.
pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
