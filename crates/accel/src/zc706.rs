//! FPGA resource/clock targets; the paper's board is the Xilinx ZC706.

use serde::{Deserialize, Serialize};

/// Resource and performance envelope of the target FPGA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaTarget {
    /// DSP slice budget (the binding constraint in the paper: 900 on
    /// ZC706).
    pub dsp_limit: usize,
    /// On-chip BRAM budget in KiB (ZC706: 19.1 Mb ≈ 2385 KiB).
    pub bram_kb_limit: usize,
    /// Achievable clock in MHz.
    pub clock_mhz: f64,
    /// Off-chip DRAM bandwidth in GiB/s, shared by all chunks.
    pub dram_gbps: f64,
}

impl FpgaTarget {
    /// The Xilinx ZC706 evaluation board used throughout the paper's
    /// Section V (900 DSPs — "the largest resource in our ZC706").
    #[must_use]
    pub fn zc706() -> Self {
        FpgaTarget {
            dsp_limit: 900,
            bram_kb_limit: 2385,
            clock_mhz: 200.0,
            dram_gbps: 12.8,
        }
    }

    /// Clock cycles per second.
    #[must_use]
    pub fn clock_hz(&self) -> f64 {
        self.clock_mhz * 1e6
    }

    /// DRAM bytes deliverable per clock cycle.
    #[must_use]
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_gbps * 1024.0 * 1024.0 * 1024.0 / self.clock_hz()
    }
}

impl Default for FpgaTarget {
    fn default() -> Self {
        Self::zc706()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zc706_matches_paper_constants() {
        let t = FpgaTarget::zc706();
        assert_eq!(t.dsp_limit, 900);
        assert!(t.clock_hz() > 1e8);
    }

    #[test]
    fn bandwidth_per_cycle_is_sane() {
        let t = FpgaTarget::zc706();
        // 12.8 GiB/s at 200 MHz ≈ 68.7 bytes per cycle.
        let bpc = t.dram_bytes_per_cycle();
        assert!((60.0..80.0).contains(&bpc), "{bpc}");
    }
}
