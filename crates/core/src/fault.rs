//! Deterministic fault injection for the co-search loop, plus the
//! fault-tolerance configuration knobs.
//!
//! A [`FaultPlan`] schedules one-shot faults at exact co-search iterations,
//! so robustness tests are reproducible: a crash at iteration `N` is a
//! crash at iteration `N` on every run, at every thread count. Faults
//! never fire unless explicitly configured — the default plan is empty.

use crate::fault::io_faults::{flip_byte, truncate_file};
use std::path::{Path, PathBuf};

/// One scheduled fault. Each fires at most once, at the start (or, for
/// checkpoint corruption, the checkpoint write) of the given co-search
/// iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Return [`crate::SearchError::Aborted`] from `run_guarded` at the
    /// start of the iteration — simulating the process dying between two
    /// iterations (the checkpoint on disk is whatever was last written).
    Abort {
        /// Iteration to abort at.
        at_iteration: u64,
    },
    /// Poison the task loss with `NaN` before backward on this iteration,
    /// exercising the divergence sentinel and rollback path.
    NanLoss {
        /// Iteration whose loss is poisoned.
        at_iteration: u64,
    },
    /// After the checkpoint for this iteration is written, truncate the
    /// file to its first `keep_bytes` bytes — simulating a torn write.
    TruncateCheckpoint {
        /// Iteration whose checkpoint file is truncated.
        at_iteration: u64,
        /// Bytes of the file to keep.
        keep_bytes: usize,
    },
    /// After the checkpoint for this iteration is written, XOR one byte at
    /// `offset` (clamped into the file) — simulating bit rot.
    FlipCheckpointByte {
        /// Iteration whose checkpoint file is corrupted.
        at_iteration: u64,
        /// Byte offset to flip.
        offset: usize,
    },
    /// Arm a one-shot panic on the supervised thread pool at the start of
    /// the named phase: the next task a worker dequeues panics before
    /// running its closure. In a restartable region the pool contains it
    /// (quarantine + re-execution); in a stateful region the phase
    /// supervisor restores the phase-entry snapshot and retries.
    WorkerPanic {
        /// Supervised phase (`"das_sweep"`, `"rollout"`, `"update"` or
        /// `"eval"`) in which to arm the panic.
        phase: String,
        /// Iteration at which to arm it.
        at_iteration: u64,
    },
    /// Poison one environment lane so its next `step` panics (the arm flag
    /// clears before the panic, so the fault is transient and a phase retry
    /// replays cleanly).
    EnvPanic {
        /// Environment lane (index into the rollout runner's lanes).
        lane: usize,
        /// Iteration whose rollout is poisoned.
        at_iteration: u64,
    },
    /// Sleep on the supervised thread for `millis` at the start of the
    /// named phase, tripping the stall watchdog's soft deadline.
    Stall {
        /// Supervised phase to stall.
        phase: String,
        /// Iteration at which to stall.
        at_iteration: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Fail the checkpoint write at this iteration before any bytes reach
    /// disk — simulating an I/O error (EIO, failed fsync) mid-frame.
    CheckpointIoError {
        /// Iteration whose checkpoint write fails.
        at_iteration: u64,
    },
    /// Short-write the checkpoint at this iteration: only the first
    /// `keep_bytes` bytes land before the write errors — simulating a full
    /// disk. The partial temporary file is cleaned up best-effort, exactly
    /// as the real path would.
    CheckpointDiskFull {
        /// Iteration whose checkpoint write is cut short.
        at_iteration: u64,
        /// Bytes that make it to disk before the failure.
        keep_bytes: usize,
    },
    /// Tear the atomic rename at this iteration: the temporary file is
    /// written in full, the rename fails, and the cleanup unlink fails too
    /// — leaving a stray `.tmp` behind, exactly what a crash between write
    /// and rename produces.
    CheckpointTornRename {
        /// Iteration whose rename is torn.
        at_iteration: u64,
    },
}

impl Fault {
    fn at_iteration(&self) -> u64 {
        match self {
            Fault::Abort { at_iteration }
            | Fault::NanLoss { at_iteration }
            | Fault::TruncateCheckpoint { at_iteration, .. }
            | Fault::FlipCheckpointByte { at_iteration, .. }
            | Fault::WorkerPanic { at_iteration, .. }
            | Fault::EnvPanic { at_iteration, .. }
            | Fault::Stall { at_iteration, .. }
            | Fault::CheckpointIoError { at_iteration }
            | Fault::CheckpointDiskFull { at_iteration, .. }
            | Fault::CheckpointTornRename { at_iteration } => *at_iteration,
        }
    }
}

/// A deterministic schedule of one-shot faults (empty by default — no
/// faults ever fire unless asked for).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a simulated crash at the start of `iteration`.
    #[must_use]
    pub fn abort_at(mut self, iteration: u64) -> Self {
        self.faults.push(Fault::Abort {
            at_iteration: iteration,
        });
        self
    }

    /// Add a `NaN` loss injection at `iteration`.
    #[must_use]
    pub fn nan_loss_at(mut self, iteration: u64) -> Self {
        self.faults.push(Fault::NanLoss {
            at_iteration: iteration,
        });
        self
    }

    /// Truncate the checkpoint written at `iteration` to `keep_bytes`.
    #[must_use]
    pub fn truncate_checkpoint_at(mut self, iteration: u64, keep_bytes: usize) -> Self {
        self.faults.push(Fault::TruncateCheckpoint {
            at_iteration: iteration,
            keep_bytes,
        });
        self
    }

    /// Flip one byte of the checkpoint written at `iteration`.
    #[must_use]
    pub fn flip_checkpoint_byte_at(mut self, iteration: u64, offset: usize) -> Self {
        self.faults.push(Fault::FlipCheckpointByte {
            at_iteration: iteration,
            offset,
        });
        self
    }

    /// Arm a one-shot worker panic on the supervised pool at the start of
    /// `phase` at `iteration` (see [`Fault::WorkerPanic`]).
    #[must_use]
    pub fn worker_panic_at(mut self, phase: &str, iteration: u64) -> Self {
        self.faults.push(Fault::WorkerPanic {
            phase: phase.to_string(),
            at_iteration: iteration,
        });
        self
    }

    /// Poison environment lane `lane` so its next step at `iteration`
    /// panics once (see [`Fault::EnvPanic`]).
    #[must_use]
    pub fn env_panic_at(mut self, lane: usize, iteration: u64) -> Self {
        self.faults.push(Fault::EnvPanic {
            lane,
            at_iteration: iteration,
        });
        self
    }

    /// Stall `phase` at `iteration` for `millis` milliseconds, tripping the
    /// watchdog's soft deadline (see [`Fault::Stall`]).
    #[must_use]
    pub fn stall_at(mut self, phase: &str, iteration: u64, millis: u64) -> Self {
        self.faults.push(Fault::Stall {
            phase: phase.to_string(),
            at_iteration: iteration,
            millis,
        });
        self
    }

    /// Fail the checkpoint write at `iteration` with an I/O error before
    /// any bytes land (see [`Fault::CheckpointIoError`]).
    #[must_use]
    pub fn io_error_at(mut self, iteration: u64) -> Self {
        self.faults.push(Fault::CheckpointIoError {
            at_iteration: iteration,
        });
        self
    }

    /// Short-write the checkpoint at `iteration` to `keep_bytes` before the
    /// write errors, as a full disk would (see
    /// [`Fault::CheckpointDiskFull`]).
    #[must_use]
    pub fn disk_full_at(mut self, iteration: u64, keep_bytes: usize) -> Self {
        self.faults.push(Fault::CheckpointDiskFull {
            at_iteration: iteration,
            keep_bytes,
        });
        self
    }

    /// Tear the atomic rename of the checkpoint at `iteration`, leaving a
    /// stray `.tmp` behind (see [`Fault::CheckpointTornRename`]).
    #[must_use]
    pub fn torn_rename_at(mut self, iteration: u64) -> Self {
        self.faults.push(Fault::CheckpointTornRename {
            at_iteration: iteration,
        });
        self
    }

    /// `true` if the plan contains an [`Fault::Abort`] (which only
    /// `run_guarded` can surface).
    #[must_use]
    pub fn has_abort(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::Abort { .. }))
    }

    /// `true` if the plan schedules any in-process fault that needs the
    /// supervision layer to fire or be contained ([`Fault::WorkerPanic`],
    /// [`Fault::EnvPanic`] or [`Fault::Stall`]). `run_guarded` enables
    /// supervision automatically for such plans.
    #[must_use]
    pub fn has_supervised_fault(&self) -> bool {
        self.faults.iter().any(|f| {
            matches!(
                f,
                Fault::WorkerPanic { .. } | Fault::EnvPanic { .. } | Fault::Stall { .. }
            )
        })
    }
}

/// Runtime driver over a [`FaultPlan`]: tracks which faults have fired so
/// each is one-shot even when the surrounding iteration replays after a
/// rollback.
pub(crate) struct FaultDriver {
    faults: Vec<(Fault, bool)>,
}

impl FaultDriver {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultDriver {
            faults: plan.faults.into_iter().map(|f| (f, false)).collect(),
        }
    }

    /// Fire (at most once) the first unfired fault matching `pred` at
    /// `iteration`, returning it.
    fn fire(&mut self, iteration: u64, pred: impl Fn(&Fault) -> bool) -> Option<Fault> {
        for (fault, fired) in &mut self.faults {
            if !*fired && fault.at_iteration() == iteration && pred(fault) {
                *fired = true;
                return Some(fault.clone());
            }
        }
        None
    }

    /// Should the loop simulate a crash right now?
    pub(crate) fn abort_now(&mut self, iteration: u64) -> bool {
        self.fire(iteration, |f| matches!(f, Fault::Abort { .. }))
            .is_some()
    }

    /// Should this iteration's loss be poisoned?
    pub(crate) fn nan_loss_now(&mut self, iteration: u64) -> bool {
        self.fire(iteration, |f| matches!(f, Fault::NanLoss { .. }))
            .is_some()
    }

    /// Should a worker panic be armed for `phase` right now? Each scheduled
    /// [`Fault::WorkerPanic`] fires once, so a retried phase only panics
    /// again if the plan schedules another one.
    pub(crate) fn worker_panic_now(&mut self, phase: &str, iteration: u64) -> bool {
        self.fire(
            iteration,
            |f| matches!(f, Fault::WorkerPanic { phase: p, .. } if p == phase),
        )
        .is_some()
    }

    /// Environment lane to poison for this iteration's rollout, if any.
    pub(crate) fn env_panic_now(&mut self, iteration: u64) -> Option<usize> {
        match self.fire(iteration, |f| matches!(f, Fault::EnvPanic { .. })) {
            Some(Fault::EnvPanic { lane, .. }) => Some(lane),
            _ => None,
        }
    }

    /// Milliseconds to stall `phase` for right now, if scheduled.
    pub(crate) fn stall_now(&mut self, phase: &str, iteration: u64) -> Option<u64> {
        match self.fire(
            iteration,
            |f| matches!(f, Fault::Stall { phase: p, .. } if p == phase),
        ) {
            Some(Fault::Stall { millis, .. }) => Some(millis),
            _ => None,
        }
    }

    /// Apply every scheduled corruption to the checkpoint file just written
    /// for `iteration`, returning a description of each applied fault.
    pub(crate) fn corrupt_checkpoint_now(&mut self, iteration: u64, path: &Path) -> Vec<String> {
        let mut applied = Vec::new();
        loop {
            let fault = self.fire(iteration, |f| {
                matches!(
                    f,
                    Fault::TruncateCheckpoint { .. } | Fault::FlipCheckpointByte { .. }
                )
            });
            let Some(fault) = fault else { break };
            let outcome = match &fault {
                Fault::TruncateCheckpoint { keep_bytes, .. } => truncate_file(path, *keep_bytes),
                Fault::FlipCheckpointByte { offset, .. } => flip_byte(path, *offset),
                Fault::Abort { .. }
                | Fault::NanLoss { .. }
                | Fault::WorkerPanic { .. }
                | Fault::EnvPanic { .. }
                | Fault::Stall { .. }
                | Fault::CheckpointIoError { .. }
                | Fault::CheckpointDiskFull { .. }
                | Fault::CheckpointTornRename { .. } => {
                    unreachable!("fire() matched only checkpoint corruptions")
                }
            };
            match outcome {
                Ok(()) => applied.push(format!("{fault:?} applied to {}", path.display())),
                Err(e) => applied.push(format!("{fault:?} failed: {e}")),
            }
        }
        applied
    }

    /// The injected I/O failure mode (if any) armed for the checkpoint
    /// write at `iteration`. One-shot, like every fault. The returned mode
    /// plugs into [`FaultyIo`] so the failure happens *inside* the durable
    /// write path, not as post-hoc file surgery.
    pub(crate) fn io_fault_now(&mut self, iteration: u64) -> Option<IoFaultMode> {
        let fault = self.fire(iteration, |f| {
            matches!(
                f,
                Fault::CheckpointIoError { .. }
                    | Fault::CheckpointDiskFull { .. }
                    | Fault::CheckpointTornRename { .. }
            )
        })?;
        Some(match fault {
            Fault::CheckpointIoError { .. } => IoFaultMode::Error,
            Fault::CheckpointDiskFull { keep_bytes, .. } => IoFaultMode::ShortWrite(keep_bytes),
            Fault::CheckpointTornRename { .. } => IoFaultMode::TornRename,
            _ => unreachable!("fire() matched only io faults"),
        })
    }
}

/// How [`FaultyIo`] sabotages the next durable write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IoFaultMode {
    /// `write_file` fails immediately; nothing reaches disk.
    Error,
    /// `write_file` persists only the first N bytes, then fails (disk
    /// full).
    ShortWrite(usize),
    /// `write_file` succeeds, `rename` fails, and `remove_file` fails too,
    /// stranding the temporary file (torn rename).
    TornRename,
}

impl IoFaultMode {
    pub(crate) fn describe(self) -> &'static str {
        match self {
            IoFaultMode::Error => "checkpoint write failed with an injected io error",
            IoFaultMode::ShortWrite(_) => "checkpoint write cut short by an injected full disk",
            IoFaultMode::TornRename => "checkpoint rename torn by injection, tmp file stranded",
        }
    }
}

/// A [`CheckpointIo`](a3cs_drl::CheckpointIo) that applies at most one
/// [`IoFaultMode`] and passes everything else through to `std::fs` — so an
/// injected failure exercises exactly the code path a real one would.
pub(crate) struct FaultyIo {
    mode: Option<IoFaultMode>,
}

impl FaultyIo {
    pub(crate) fn new(mode: Option<IoFaultMode>) -> Self {
        FaultyIo { mode }
    }
}

impl a3cs_drl::CheckpointIo for FaultyIo {
    fn write_file(&mut self, path: &Path, contents: &[u8]) -> std::io::Result<()> {
        match self.mode {
            Some(IoFaultMode::Error) => {
                self.mode = None;
                Err(std::io::Error::other("injected checkpoint io error"))
            }
            Some(IoFaultMode::ShortWrite(keep)) => {
                self.mode = None;
                std::fs::write(path, &contents[..keep.min(contents.len())])?;
                Err(std::io::Error::new(
                    std::io::ErrorKind::StorageFull,
                    "injected disk-full short write",
                ))
            }
            Some(IoFaultMode::TornRename) | None => std::fs::write(path, contents),
        }
    }

    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()> {
        if matches!(self.mode, Some(IoFaultMode::TornRename)) {
            // Keep the mode armed: the cleanup remove_file must fail too,
            // otherwise the tmp file would not be stranded.
            return Err(std::io::Error::other("injected torn rename"));
        }
        std::fs::rename(from, to)
    }

    fn remove_file(&mut self, path: &Path) -> std::io::Result<()> {
        if matches!(self.mode, Some(IoFaultMode::TornRename)) {
            self.mode = None;
            return Err(std::io::Error::other(
                "injected torn rename: cleanup unlink fails too",
            ));
        }
        std::fs::remove_file(path)
    }
}

mod io_faults {
    use std::fs;
    use std::path::Path;

    pub(crate) fn truncate_file(path: &Path, keep_bytes: usize) -> std::io::Result<()> {
        let bytes = fs::read(path)?;
        let keep = keep_bytes.min(bytes.len());
        fs::write(path, &bytes[..keep])
    }

    pub(crate) fn flip_byte(path: &Path, offset: usize) -> std::io::Result<()> {
        let mut bytes = fs::read(path)?;
        if bytes.is_empty() {
            return Ok(());
        }
        let at = offset.min(bytes.len() - 1);
        bytes[at] ^= 0xff;
        fs::write(path, bytes)
    }
}

/// On-disk encoding of a search checkpoint payload (inside the checksummed
/// envelope). Both formats are bit-safe; `recover()` detects either, so the
/// knob can change between runs without invalidating old checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointFormat {
    /// Human-readable JSON with every float stored as its raw bits (the
    /// default, unchanged from PR 3).
    #[default]
    Json,
    /// Length-prefixed little-endian binary framing — substantially smaller
    /// for large supernets, still byte-exact (NaN payloads included).
    Binary,
}

/// Durability knobs for the delta-checkpoint layer (DESIGN.md §17).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Write incremental delta frames between full base frames instead of
    /// a full checkpoint every time. Off by default: solo runs keep the
    /// PR 3 format unless opted in (the fleet opts in for every session).
    pub delta: bool,
    /// Per-frame compression codec.
    pub codec: a3cs_drl::CheckpointCodec,
    /// Maximum deltas per chain before the writer rolls a fresh base
    /// inline, bounding recovery replay cost.
    pub max_chain_len: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            delta: false,
            codec: a3cs_drl::CheckpointCodec::RleZero,
            max_chain_len: 16,
        }
    }
}

/// Fault-tolerance configuration of a co-search run. The default disables
/// everything — no checkpoints are written, no sentinel checks run, and no
/// faults are injected — so existing behaviour is unchanged unless opted
/// into.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Directory for resumable search checkpoints (`None`: checkpointing
    /// off). `run_guarded` auto-resumes from the newest valid checkpoint
    /// found here.
    pub checkpoint_dir: Option<PathBuf>,
    /// Write (and, for the sentinel, capture) a checkpoint every this many
    /// co-search iterations.
    pub checkpoint_every: u64,
    /// On-disk checkpoints to retain (older ones are pruned; keep ≥ 2 to
    /// survive corruption of the newest).
    pub keep: usize,
    /// Enable divergence sentinels: after backward and after each `θ`/`α`
    /// update, check loss and parameters for non-finite values and roll
    /// back to the last good checkpoint when tripped.
    pub sentinel: bool,
    /// How many rollbacks the sentinel may perform before degrading to
    /// skip-and-continue.
    pub max_rollbacks: u32,
    /// Multiply the effective learning rates by this factor on every
    /// rollback (1.0: no back-off). Values < 1.0 trade replay fidelity for
    /// stability, so bit-identity with an uninterrupted run only holds at
    /// 1.0.
    pub lr_backoff: f32,
    /// Deterministic fault-injection schedule (empty: no faults).
    pub plan: FaultPlan,
    /// Payload encoding for on-disk checkpoints (JSON by default; recovery
    /// reads either format regardless of this knob).
    pub format: CheckpointFormat,
    /// Enable the supervision layer: phase-entry snapshots with bounded
    /// retries, an isolation-mode thread pool (lane quarantine + chunk
    /// re-execution + worker respawn), stall watchdogs and the degradation
    /// ladder. Implied when the plan schedules a supervised fault.
    pub supervision: bool,
    /// How many times a failed (panicked) phase is retried from its entry
    /// snapshot before the run surfaces
    /// [`crate::SearchError::RunAbort`].
    pub max_phase_retries: u32,
    /// Degradation ladder: after this many lane faults at the current
    /// thread count, halve it (N → N/2 → … → 1) instead of aborting.
    /// `0` disables the ladder.
    pub ladder_fault_threshold: u32,
    /// Stall watchdog: a phase's soft deadline is
    /// `max(stall_min_ms, stall_multiplier × EWMA of its past durations)`.
    pub stall_multiplier: u32,
    /// Floor (in milliseconds) for the watchdog's soft deadline, so fast
    /// phases with sub-millisecond EWMAs don't trip on scheduler jitter.
    pub stall_min_ms: u64,
    /// Delta-frame durability knobs (delta mode, codec, chain length).
    pub durability: DurabilityConfig,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            checkpoint_dir: None,
            checkpoint_every: 1,
            keep: 3,
            sentinel: false,
            max_rollbacks: 3,
            lr_backoff: 1.0,
            plan: FaultPlan::none(),
            format: CheckpointFormat::Json,
            supervision: false,
            max_phase_retries: 2,
            ladder_fault_threshold: 4,
            stall_multiplier: 8,
            stall_min_ms: 40,
            durability: DurabilityConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_exactly_once_at_their_iteration() {
        let plan = FaultPlan::none().abort_at(3).nan_loss_at(5);
        let mut driver = FaultDriver::new(plan);
        assert!(!driver.abort_now(2));
        assert!(!driver.nan_loss_now(3)); // wrong kind
        assert!(driver.abort_now(3));
        assert!(!driver.abort_now(3), "one-shot");
        assert!(driver.nan_loss_now(5));
        assert!(!driver.nan_loss_now(5), "one-shot");
    }

    #[test]
    fn corruption_faults_modify_the_file() {
        let dir = std::env::temp_dir().join(format!("a3cs_fault_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("ckpt.json");
        std::fs::write(&path, "0123456789").expect("seed file");

        let plan = FaultPlan::none()
            .truncate_checkpoint_at(1, 4)
            .flip_checkpoint_byte_at(2, 0);
        let mut driver = FaultDriver::new(plan);
        assert!(driver.corrupt_checkpoint_now(0, &path).is_empty());
        let applied = driver.corrupt_checkpoint_now(1, &path);
        assert_eq!(applied.len(), 1, "{applied:?}");
        assert_eq!(std::fs::read(&path).expect("read"), b"0123");
        let applied = driver.corrupt_checkpoint_now(2, &path);
        assert_eq!(applied.len(), 1, "{applied:?}");
        assert_eq!(std::fs::read(&path).expect("read")[0], b'0' ^ 0xff);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_config_is_fully_disabled() {
        let cfg = FaultConfig::default();
        assert!(cfg.checkpoint_dir.is_none());
        assert!(!cfg.sentinel);
        assert!(cfg.plan.faults.is_empty());
        assert!(!cfg.plan.has_abort());
        assert_eq!(cfg.lr_backoff, 1.0);
        assert!(!cfg.supervision);
        assert!(!cfg.plan.has_supervised_fault());
        assert_eq!(cfg.format, CheckpointFormat::Json);
        assert!(!cfg.durability.delta, "delta frames are opt-in");
    }

    #[test]
    fn io_faults_arm_once_at_their_iteration() {
        let plan = FaultPlan::none()
            .io_error_at(2)
            .disk_full_at(3, 10)
            .torn_rename_at(4);
        let mut driver = FaultDriver::new(plan);
        assert_eq!(driver.io_fault_now(1), None);
        assert_eq!(driver.io_fault_now(2), Some(IoFaultMode::Error));
        assert_eq!(driver.io_fault_now(2), None, "one-shot");
        assert_eq!(driver.io_fault_now(3), Some(IoFaultMode::ShortWrite(10)));
        assert_eq!(driver.io_fault_now(4), Some(IoFaultMode::TornRename));
    }

    #[test]
    fn faulty_io_modes_fail_like_the_real_failure() {
        use a3cs_drl::write_atomic_bytes_with;
        let dir = std::env::temp_dir().join(format!("a3cs_faulty_io_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("temp dir");
        let target = dir.join("frame.json");

        // Injected write error: nothing lands, no tmp remains.
        let mut io = FaultyIo::new(Some(IoFaultMode::Error));
        assert!(write_atomic_bytes_with(&mut io, &target, b"payload").is_err());
        assert!(!target.exists());
        assert!(!dir.join("frame.json.tmp").exists());

        // Disk full: the short write fails and the partial tmp is cleaned
        // up (the fault is spent by the time cleanup runs).
        let mut io = FaultyIo::new(Some(IoFaultMode::ShortWrite(3)));
        assert!(write_atomic_bytes_with(&mut io, &target, b"payload").is_err());
        assert!(!target.exists());
        assert!(!dir.join("frame.json.tmp").exists());

        // Torn rename: the tmp file is stranded in full.
        let mut io = FaultyIo::new(Some(IoFaultMode::TornRename));
        assert!(write_atomic_bytes_with(&mut io, &target, b"payload").is_err());
        assert!(!target.exists());
        assert_eq!(
            std::fs::read(dir.join("frame.json.tmp")).expect("stranded tmp"),
            b"payload"
        );

        // A spent (or absent) fault passes everything through.
        let mut io = FaultyIo::new(None);
        write_atomic_bytes_with(&mut io, &target, b"payload").expect("clean write");
        assert_eq!(std::fs::read(&target).expect("read"), b"payload");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn supervised_faults_fire_once_per_schedule_entry() {
        let plan = FaultPlan::none()
            .worker_panic_at("rollout", 3)
            .worker_panic_at("rollout", 3)
            .env_panic_at(1, 4)
            .stall_at("update", 5, 250);
        assert!(plan.has_supervised_fault());
        assert!(!plan.has_abort());
        let mut driver = FaultDriver::new(plan);

        assert!(!driver.worker_panic_now("update", 3), "wrong phase");
        assert!(driver.worker_panic_now("rollout", 3));
        assert!(driver.worker_panic_now("rollout", 3), "second entry fires");
        assert!(!driver.worker_panic_now("rollout", 3), "both spent");

        assert_eq!(driver.env_panic_now(3), None);
        assert_eq!(driver.env_panic_now(4), Some(1));
        assert_eq!(driver.env_panic_now(4), None, "one-shot");

        assert_eq!(driver.stall_now("rollout", 5), None, "wrong phase");
        assert_eq!(driver.stall_now("update", 5), Some(250));
        assert_eq!(driver.stall_now("update", 5), None, "one-shot");
    }
}
