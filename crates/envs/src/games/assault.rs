//! Assault: drone waves with a weapon-heat mechanic.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::games::clamp;
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;
const PLAYER_ROW: isize = GRID as isize - 1;
const HEAT_LIMIT: u32 = 6;

#[derive(Debug, Clone, Copy)]
struct Drone {
    row: isize,
    col: isize,
    dir: isize,
}

/// Assault stand-in: a mothership deploys drones that strafe and descend,
/// dropping bombs. Shooting pays `+1`, but the cannon heats up: each shot
/// adds heat, idle steps cool it, and an overheated cannon cannot fire
/// (the game's signature mechanic — reckless firing throttles itself).
///
/// Actions: `0` no-op, `1` left, `2` right, `3` fire.
#[derive(Debug, Clone)]
pub struct Assault {
    rng: StdRng,
    player: isize,
    drones: Vec<Drone>,
    bombs: Vec<(isize, isize)>,
    shots: Vec<(isize, isize)>,
    heat: u32,
    clock: u32,
    done: bool,
}

impl Assault {
    /// Create a seeded Assault game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Assault {
            rng: StdRng::seed_from_u64(seed),
            player: GRID as isize / 2,
            drones: Vec::new(),
            bombs: Vec::new(),
            shots: Vec::new(),
            heat: 0,
            clock: 0,
            done: true,
        }
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(5, GRID, GRID);
        canvas.paint(0, PLAYER_ROW, self.player, 1.0);
        for d in &self.drones {
            canvas.paint(1, d.row, d.col, 1.0);
        }
        for &(r, c) in &self.bombs {
            canvas.paint(2, r, c, 1.0);
        }
        for &(r, c) in &self.shots {
            canvas.paint(3, r, c, 1.0);
        }
        // Heat gauge along the top row.
        for h in 0..self.heat.min(GRID as u32) {
            canvas.paint(4, 0, h as isize, 1.0);
        }
        canvas.into_observation()
    }
}

impl Environment for Assault {
    fn name(&self) -> &str {
        "Assault"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (5, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        4
    }

    fn reset(&mut self) -> Vec<f32> {
        self.player = GRID as isize / 2;
        self.drones.clear();
        self.bombs.clear();
        self.shots.clear();
        self.heat = 0;
        self.clock = 0;
        self.done = false;
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        self.clock += 1;
        match action {
            1 => self.player = clamp(self.player - 1, 0, GRID as isize - 1),
            2 => self.player = clamp(self.player + 1, 0, GRID as isize - 1),
            3 => {
                if self.heat < HEAT_LIMIT {
                    self.shots.push((PLAYER_ROW - 1, self.player));
                    self.heat += 2;
                }
            }
            _ => {}
        }
        self.heat = self.heat.saturating_sub(1);

        let mut reward = 0.0f32;

        // Shots travel up 2 cells/step.
        let mut surviving = Vec::with_capacity(self.shots.len());
        for (mut r, c) in std::mem::take(&mut self.shots) {
            let mut live = true;
            for _ in 0..2 {
                if r < 0 {
                    live = false;
                    break;
                }
                if let Some(i) = self
                    .drones
                    .iter()
                    .position(|d| d.row == r && d.col == c)
                {
                    self.drones.swap_remove(i);
                    reward += 1.0;
                    live = false;
                    break;
                }
                r -= 1;
            }
            if live && r >= 0 {
                surviving.push((r, c));
            }
        }
        self.shots = surviving;

        // Drones strafe; occasionally descend and bomb.
        for d in &mut self.drones {
            d.col += d.dir;
            if d.col <= 0 || d.col >= GRID as isize - 1 {
                d.dir = -d.dir;
                d.row += 1;
            }
        }
        if self.clock % 5 == 0 {
            if let Some(d) = self.drones.first() {
                self.bombs.push((d.row + 1, d.col));
            }
        }
        let player = self.player;
        let mut hit = false;
        self.bombs.retain_mut(|(r, c)| {
            *r += 1;
            if *r == PLAYER_ROW && *c == player {
                hit = true;
            }
            *r < GRID as isize
        });

        if self.clock % 4 == 0 && self.drones.len() < 5 {
            let dir = if self.rng.gen_bool(0.5) { 1 } else { -1 };
            self.drones.push(Drone {
                row: self.rng.gen_range(1..4),
                col: self.rng.gen_range(1..GRID as isize - 1),
                dir,
            });
        }

        if hit || self.drones.iter().any(|d| d.row >= PLAYER_ROW) {
            self.done = true;
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("Assault");
        w.rng(&self.rng);
        w.isize(self.player);
        w.usize(self.drones.len());
        for item in &self.drones {
            w.isize(item.row);
            w.isize(item.col);
            w.isize(item.dir);
        }
        w.usize(self.bombs.len());
        for item in &self.bombs {
            w.isize(item.0);
            w.isize(item.1);
        }
        w.usize(self.shots.len());
        for item in &self.shots {
            w.isize(item.0);
            w.isize(item.1);
        }
        w.u32(self.heat);
        w.u32(self.clock);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "Assault")?;
        self.rng = r.rng()?;
        self.player = r.isize()?;
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(Drone { row: r.isize()?, col: r.isize()?, dir: r.isize()? });
        }
        self.drones = items;
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push((r.isize()?, r.isize()?));
        }
        self.bombs = items;
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push((r.isize()?, r.isize()?));
        }
        self.shots = items;
        self.heat = r.u32()?;
        self.clock = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(Assault::new(111), Assault::new(111), 300);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = Assault::new(1);
        let total = random_rollout(&mut env, 1000, 15);
        assert!(total >= 0.0);
    }

    #[test]
    fn overheating_blocks_fire() {
        let mut env = Assault::new(2);
        let _ = env.reset();
        // Sustained fire builds heat (+2 per shot, -1 per step).
        for _ in 0..12 {
            let _ = env.step(3);
            if env.done {
                let _ = env.reset();
            }
        }
        assert!(env.heat > 0, "sustained fire must accumulate heat");
        let heat_before = env.heat;
        let _ = env.step(0);
        assert!(env.heat < heat_before, "idling must cool the cannon");
    }

    #[test]
    fn spray_fire_eventually_scores() {
        let mut env = Assault::new(3);
        let _ = env.reset();
        let mut total = 0.0;
        for i in 0..500 {
            let a = match i % 4 {
                0 => 3,
                1 => 1,
                2 => 3,
                _ => 2,
            };
            let out = env.step(a);
            total += out.reward;
            if out.done {
                let _ = env.reset();
            }
        }
        assert!(total > 0.0);
    }
}
