//! Serialisable environment state snapshots.
//!
//! [`EnvState`] is a self-describing bundle of integers, floats, and
//! nested child states. Every game and wrapper packs its complete
//! dynamic state (including RNG words) into one via [`StateWriter`] and
//! unpacks it via [`StateReader`], so `snapshot → restore` resumes an
//! episode bit-exactly. The representation is deliberately flat and
//! typed so higher layers can serialise it without knowing game
//! internals.

use rand::rngs::StdRng;
use std::fmt;

/// A snapshot of one environment's dynamic state.
///
/// `ints` carries counters, positions, booleans, and RNG words (as
/// bit-cast `i64`); `floats` carries observation buffers and other real
/// values; `inner` carries the states of wrapped environments. The `tag`
/// names the producing type and guards against restoring a snapshot
/// into the wrong environment.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvState {
    tag: String,
    ints: Vec<i64>,
    floats: Vec<f32>,
    inner: Vec<EnvState>,
}

impl EnvState {
    /// Rebuild a snapshot from its raw parts (used by deserialisers).
    #[must_use]
    pub fn from_parts(tag: String, ints: Vec<i64>, floats: Vec<f32>, inner: Vec<EnvState>) -> Self {
        EnvState {
            tag,
            ints,
            floats,
            inner,
        }
    }

    /// The producing environment's tag.
    #[must_use]
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// The integer payload.
    #[must_use]
    pub fn ints(&self) -> &[i64] {
        &self.ints
    }

    /// The float payload.
    #[must_use]
    pub fn floats(&self) -> &[f32] {
        &self.floats
    }

    /// Nested child states (wrapped environments).
    #[must_use]
    pub fn inner(&self) -> &[EnvState] {
        &self.inner
    }
}

/// Why an [`EnvState`] could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The snapshot was produced by a different environment type.
    WrongTag {
        /// Tag the restoring environment expected.
        expected: String,
        /// Tag found in the snapshot.
        found: String,
    },
    /// The snapshot ran out of payload before the environment finished
    /// reading (a truncated or mismatched snapshot).
    Truncated {
        /// Tag of the snapshot being read.
        tag: String,
        /// Which payload stream was exhausted.
        stream: &'static str,
    },
    /// A value was present but outside the legal range for its field
    /// (e.g. an unknown enum discriminant).
    OutOfRange {
        /// Tag of the snapshot being read.
        tag: String,
        /// Human-readable description of the offending value.
        detail: String,
    },
    /// The environment finished restoring but payload was left over —
    /// the snapshot does not match this environment's layout.
    Leftover {
        /// Tag of the snapshot being read.
        tag: String,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::WrongTag { expected, found } => {
                write!(f, "snapshot tag {found:?} does not match environment {expected:?}")
            }
            RestoreError::Truncated { tag, stream } => {
                write!(f, "snapshot {tag:?} exhausted its {stream} payload early")
            }
            RestoreError::OutOfRange { tag, detail } => {
                write!(f, "snapshot {tag:?} holds an illegal value: {detail}")
            }
            RestoreError::Leftover { tag } => {
                write!(f, "snapshot {tag:?} has unread payload left over")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// Builds an [`EnvState`] field by field.
#[derive(Debug)]
pub struct StateWriter {
    state: EnvState,
}

impl StateWriter {
    /// Start a snapshot for the environment tagged `tag`.
    #[must_use]
    pub fn new(tag: &str) -> Self {
        StateWriter {
            state: EnvState {
                tag: tag.to_string(),
                ints: Vec::new(),
                floats: Vec::new(),
                inner: Vec::new(),
            },
        }
    }

    /// Append one integer.
    pub fn int(&mut self, v: i64) {
        self.state.ints.push(v);
    }

    /// Append one `isize` (games use `isize` coordinates throughout).
    pub fn isize(&mut self, v: isize) {
        // a3cs::allow(lossy-cast): isize→i64 widens losslessly on every
        // supported platform (isize ≤ 64 bits).
        self.int(v as i64);
    }

    /// Append one `usize`.
    pub fn usize(&mut self, v: usize) {
        debug_assert!(
            i64::try_from(v).is_ok(),
            "usize state word {v} overflows the i64 slot"
        );
        // a3cs::allow(lossy-cast): guarded above; game state sizes are
        // nowhere near i64::MAX.
        self.int(v as i64);
    }

    /// Append one `u32`.
    pub fn u32(&mut self, v: u32) {
        self.int(i64::from(v));
    }

    /// Append one boolean as `0`/`1`.
    pub fn bool(&mut self, v: bool) {
        self.int(i64::from(v));
    }

    /// Append the four state words of a PRNG (bit-cast to `i64`).
    pub fn rng(&mut self, rng: &StdRng) {
        for word in rng.state() {
            // a3cs::allow(lossy-cast): u64→i64 keeps the two's-complement
            // bits; `Restore::rng` inverts it exactly.
            self.int(word as i64);
        }
    }

    /// Append one float.
    pub fn float(&mut self, v: f32) {
        self.state.floats.push(v);
    }

    /// Append a float slice (length is *not* recorded; prefix with
    /// [`StateWriter::usize`] when the length varies).
    pub fn floats(&mut self, vs: &[f32]) {
        self.state.floats.extend_from_slice(vs);
    }

    /// Append a wrapped environment's snapshot.
    pub fn child(&mut self, s: EnvState) {
        self.state.inner.push(s);
    }

    /// Finish and return the snapshot.
    #[must_use]
    pub fn finish(self) -> EnvState {
        self.state
    }
}

/// Reads an [`EnvState`] back in writer order, enforcing the tag up
/// front and full consumption at the end.
#[derive(Debug)]
pub struct StateReader<'a> {
    state: &'a EnvState,
    int_pos: usize,
    float_pos: usize,
    inner_pos: usize,
}

impl<'a> StateReader<'a> {
    /// Open `state` for reading, failing if its tag is not `expect_tag`.
    pub fn new(state: &'a EnvState, expect_tag: &str) -> Result<Self, RestoreError> {
        if state.tag != expect_tag {
            return Err(RestoreError::WrongTag {
                expected: expect_tag.to_string(),
                found: state.tag.clone(),
            });
        }
        Ok(StateReader {
            state,
            int_pos: 0,
            float_pos: 0,
            inner_pos: 0,
        })
    }

    fn truncated(&self, stream: &'static str) -> RestoreError {
        RestoreError::Truncated {
            tag: self.state.tag.clone(),
            stream,
        }
    }

    /// Error constructor for illegal field values, for use by callers
    /// decoding enums or validating ranges.
    #[must_use = "the Result reports failure and must be checked"]
    pub fn out_of_range(&self, detail: impl Into<String>) -> RestoreError {
        RestoreError::OutOfRange {
            tag: self.state.tag.clone(),
            detail: detail.into(),
        }
    }

    /// Read one integer.
    pub fn int(&mut self) -> Result<i64, RestoreError> {
        let v = *self
            .state
            .ints
            .get(self.int_pos)
            .ok_or_else(|| self.truncated("int"))?;
        self.int_pos += 1;
        Ok(v)
    }

    /// Read one `isize`.
    pub fn isize(&mut self) -> Result<isize, RestoreError> {
        // a3cs::allow(lossy-cast): round-trips what `Snapshot::isize`
        // wrote; i64→isize is the exact inverse on 64-bit targets.
        Ok(self.int()? as isize)
    }

    /// Read one `usize`, rejecting negatives.
    pub fn usize(&mut self) -> Result<usize, RestoreError> {
        let v = self.int()?;
        usize::try_from(v).map_err(|_| self.out_of_range(format!("expected usize, got {v}")))
    }

    /// Read one `u32`, rejecting out-of-range values.
    pub fn u32(&mut self) -> Result<u32, RestoreError> {
        let v = self.int()?;
        u32::try_from(v).map_err(|_| self.out_of_range(format!("expected u32, got {v}")))
    }

    /// Read one `i32`, rejecting out-of-range values.
    pub fn i32(&mut self) -> Result<i32, RestoreError> {
        let v = self.int()?;
        i32::try_from(v).map_err(|_| self.out_of_range(format!("expected i32, got {v}")))
    }

    /// Read a collection length, rejecting values above `max` so a
    /// corrupt snapshot cannot trigger a huge allocation.
    pub fn len(&mut self, max: usize) -> Result<usize, RestoreError> {
        let v = self.usize()?;
        if v > max {
            return Err(self.out_of_range(format!("length {v} exceeds cap {max}")));
        }
        Ok(v)
    }

    /// Read one boolean (`0` or `1`).
    pub fn bool(&mut self) -> Result<bool, RestoreError> {
        match self.int()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(self.out_of_range(format!("expected bool (0/1), got {v}"))),
        }
    }

    /// Read four PRNG state words back into a generator.
    pub fn rng(&mut self) -> Result<StdRng, RestoreError> {
        let mut s = [0u64; 4];
        for slot in &mut s {
            // a3cs::allow(lossy-cast): i64→u64 is the exact inverse of the
            // two's-complement cast in `Snapshot::rng`.
            *slot = self.int()? as u64;
        }
        Ok(StdRng::from_state(s))
    }

    /// Read one float.
    pub fn float(&mut self) -> Result<f32, RestoreError> {
        let v = *self
            .state
            .floats
            .get(self.float_pos)
            .ok_or_else(|| self.truncated("float"))?;
        self.float_pos += 1;
        Ok(v)
    }

    /// Read `n` floats.
    pub fn floats(&mut self, n: usize) -> Result<Vec<f32>, RestoreError> {
        let end = self
            .float_pos
            .checked_add(n)
            .filter(|&e| e <= self.state.floats.len())
            .ok_or_else(|| self.truncated("float"))?;
        let out = self.state.floats[self.float_pos..end].to_vec();
        self.float_pos = end;
        Ok(out)
    }

    /// Read the next wrapped environment's snapshot.
    pub fn child(&mut self) -> Result<&'a EnvState, RestoreError> {
        let s = self
            .state
            .inner
            .get(self.inner_pos)
            .ok_or_else(|| self.truncated("inner"))?;
        self.inner_pos += 1;
        Ok(s)
    }

    /// Assert every payload element was consumed.
    pub fn finish(self) -> Result<(), RestoreError> {
        if self.int_pos != self.state.ints.len()
            || self.float_pos != self.state.floats.len()
            || self.inner_pos != self.state.inner.len()
        {
            return Err(RestoreError::Leftover {
                tag: self.state.tag.clone(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn writer_reader_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.next_u64();
        let mut w = StateWriter::new("test");
        w.isize(-4);
        w.usize(9);
        w.bool(true);
        w.u32(77);
        w.rng(&rng);
        w.float(1.5);
        w.floats(&[0.0, -2.0]);
        let state = w.finish();

        let mut r = StateReader::new(&state, "test").expect("tag matches");
        assert_eq!(r.isize().unwrap(), -4);
        assert_eq!(r.usize().unwrap(), 9);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 77);
        let mut restored = r.rng().unwrap();
        assert_eq!(restored.next_u64(), rng.next_u64());
        assert_eq!(r.float().unwrap(), 1.5);
        assert_eq!(r.floats(2).unwrap(), vec![0.0, -2.0]);
        r.finish().expect("fully consumed");
    }

    #[test]
    fn wrong_tag_is_rejected() {
        let state = StateWriter::new("a").finish();
        assert!(matches!(
            StateReader::new(&state, "b"),
            Err(RestoreError::WrongTag { .. })
        ));
    }

    #[test]
    fn truncation_and_leftover_are_detected() {
        let mut w = StateWriter::new("t");
        w.int(1);
        let state = w.finish();

        let mut r = StateReader::new(&state, "t").unwrap();
        assert_eq!(r.int().unwrap(), 1);
        assert!(matches!(r.int(), Err(RestoreError::Truncated { .. })));

        let r = StateReader::new(&state, "t").unwrap();
        assert!(matches!(r.finish(), Err(RestoreError::Leftover { .. })));
    }

    #[test]
    fn bool_out_of_range_is_rejected() {
        let mut w = StateWriter::new("t");
        w.int(2);
        let state = w.finish();
        let mut r = StateReader::new(&state, "t").unwrap();
        assert!(matches!(r.bool(), Err(RestoreError::OutOfRange { .. })));
    }
}
