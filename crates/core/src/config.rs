//! Co-search configuration.

use crate::fault::FaultConfig;
use a3cs_accel::{DasConfig, FpgaTarget};
use a3cs_drl::{A2cConfig, DistillConfig};
use a3cs_nas::SupernetConfig;

/// Which search scheme drives the architecture parameters — the three
/// curves of the paper's Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchScheme {
    /// A3C-S proper: one-level optimisation of `(θ, α)` with
    /// AC-distillation (the scheme the paper adopts).
    #[default]
    OneLevel,
    /// Bi-level (DARTS-style) ablation: `α` is updated on held-out
    /// rollouts with the one-step weight approximation, which the paper
    /// shows fails under DRL's gradient variance.
    BiLevel,
    /// Direct NAS without distillation (vanilla DNAS on DRL).
    DirectNas,
}

/// Which engine derives the final matched accelerator `φ*` after the
/// co-search loop finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeriveEngine {
    /// DAS alone: `das_final_iters` Gumbel-Softmax refinement iterations
    /// and the argmax `φ` (the paper's derivation).
    #[default]
    Das,
    /// DAS followed by beam-search refinement seeded with the DAS argmax
    /// vector: the beam's local moves (single-knob mutations +
    /// assignment-boundary shifts) polish the design through the
    /// transposition-table cost cache. Never returns a design worse than
    /// the DAS argmax (the seed stays in the beam).
    DasThenBeam {
        /// Beam width.
        width: usize,
        /// Beam generations.
        generations: usize,
        /// Random single-knob mutations per beam member per generation.
        mutations: usize,
    },
}

/// Full configuration of a co-search run.
#[derive(Debug, Clone, PartialEq)]
pub struct CoSearchConfig {
    /// Supernet structure (cells, widths, Gumbel schedule).
    pub supernet: SupernetConfig,
    /// Accelerator search engine settings.
    pub das: DasConfig,
    /// Engine deriving the final accelerator (DAS alone, or DAS + beam
    /// refinement).
    pub derive_engine: DeriveEngine,
    /// FPGA resource/clock target.
    pub target: FpgaTarget,
    /// Search scheme (Fig. 2 ablation axis).
    pub scheme: SearchScheme,
    /// Distillation settings (ignored for [`SearchScheme::DirectNas`]).
    pub distill: DistillConfig,
    /// A2C objective settings.
    pub a2c: A2cConfig,
    /// Number of actions of the target game.
    pub n_actions: usize,
    /// Parallel environments.
    pub n_envs: usize,
    /// Rollout length `L` (paper: 5).
    pub rollout_len: usize,
    /// Total environment steps of search.
    pub total_steps: u64,
    /// Learning rate for the supernet weights `θ` (RMSProp).
    pub weight_lr: f32,
    /// Learning rate for the architecture parameters `α` (Adam; paper:
    /// 1e-3).
    pub alpha_lr: f32,
    /// Hardware-cost weight `λ` of Eq. 4.
    pub lambda: f32,
    /// DAS iterations per co-search iteration (the inner `φ` update of
    /// Alg. 1).
    pub das_steps_per_iter: usize,
    /// Final DAS iterations when deriving the matched accelerator.
    pub das_final_iters: usize,
    /// Global gradient-norm clip for `θ`.
    pub max_grad_norm: f32,
    /// Cap on training-episode length.
    pub episode_cap: usize,
    /// Evaluate the argmax network every this many steps (Fig. 2 curve).
    pub eval_every: u64,
    /// Episodes per evaluation.
    pub eval_episodes: usize,
    /// Step cap per evaluation episode.
    pub eval_max_steps: usize,
    /// Worker threads for rollout/eval/conv fan-out (`None`: keep the
    /// process default — `A3CS_THREADS` or the core count). Results are
    /// bit-identical for every setting; this only trades wall-clock.
    pub threads: Option<usize>,
    /// Fault-tolerance knobs: resumable checkpoints, divergence sentinels
    /// and deterministic fault injection (all disabled by default).
    pub fault: FaultConfig,
}

impl CoSearchConfig {
    /// Paper-scale (12-cell) configuration for a game with the given
    /// observation shape and action count.
    #[must_use]
    pub fn paper(planes: usize, height: usize, width: usize, n_actions: usize) -> Self {
        CoSearchConfig {
            supernet: SupernetConfig::paper(planes, height, width),
            das: DasConfig::default(),
            derive_engine: DeriveEngine::default(),
            target: FpgaTarget::zc706(),
            scheme: SearchScheme::OneLevel,
            distill: DistillConfig::ac_distillation(),
            a2c: A2cConfig::default(),
            n_actions,
            n_envs: 4,
            rollout_len: 5,
            total_steps: 20_000,
            weight_lr: 1e-3,
            alpha_lr: 1e-3,
            lambda: 0.1,
            das_steps_per_iter: 1,
            das_final_iters: 400,
            max_grad_norm: 1.0,
            episode_cap: 400,
            eval_every: 2_000,
            eval_episodes: 10,
            eval_max_steps: 300,
            threads: None,
            fault: FaultConfig::default(),
        }
    }

    /// Miniature configuration (6 cells, 2 chunks) for tests and demos.
    #[must_use]
    pub fn tiny(planes: usize, height: usize, width: usize, n_actions: usize) -> Self {
        let mut cfg = Self::paper(planes, height, width, n_actions);
        cfg.supernet = SupernetConfig::tiny(planes, height, width);
        cfg.das.num_chunks = 2;
        cfg.total_steps = 1_000;
        cfg.eval_every = 500;
        cfg.eval_episodes = 3;
        cfg.eval_max_steps = 80;
        cfg.das_final_iters = 100;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_uses_paper_constants() {
        let cfg = CoSearchConfig::paper(4, 12, 12, 6);
        assert_eq!(cfg.supernet.num_cells, 12);
        assert_eq!(cfg.rollout_len, 5);
        assert_eq!(cfg.a2c.gamma, 0.99);
        assert_eq!(cfg.alpha_lr, 1e-3);
        assert_eq!(cfg.target.dsp_limit, 900);
        assert_eq!(cfg.scheme, SearchScheme::OneLevel);
    }

    #[test]
    fn tiny_config_is_smaller() {
        let cfg = CoSearchConfig::tiny(4, 12, 12, 6);
        assert_eq!(cfg.supernet.num_cells, 6);
        assert!(cfg.total_steps < CoSearchConfig::paper(4, 12, 12, 6).total_steps);
    }
}
