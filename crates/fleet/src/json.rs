//! Schema-versioned, byte-stable JSON persistence for [`FleetReport`]
//! (DESIGN.md §16).
//!
//! The rendering is hand-rolled (no serde) so every byte is under this
//! module's control: object keys appear in a fixed order, maps are
//! `BTreeMap`-sorted, optional values serialize as `null`, and floats are
//! printed with Rust's shortest-round-trip `Display` (identical bits in →
//! identical bytes out, with non-finite values mapped to `null`). Two
//! bit-identical fleet runs therefore persist byte-identical reports —
//! which is also what makes the live `/fleet` endpoint of `a3cs-obs`
//! directly comparable against a run's own final report.
//!
//! The schema is versioned by the top-level `"schema"` field; additions
//! bump [`FLEET_REPORT_SCHEMA`] and may only append keys.

use crate::{FleetReport, SessionReport, SessionState};
use a3cs_core::{CoSearchResult, RobustnessEvent};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Version stamped into the `"schema"` field of every serialized report.
/// v2 appended the per-session `checkpoint_delta_frames` and
/// `checkpoint_quarantined` counters (durable delta checkpointing).
pub const FLEET_REPORT_SCHEMA: u32 = 2;

impl FleetReport {
    /// Serialize the report as schema-versioned, byte-stable JSON (one
    /// line, no trailing newline). See the module docs for the stability
    /// contract.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":{FLEET_REPORT_SCHEMA},\"ticks\":{},\"pool_budget\":{},\"total_faults\":{},\"sessions\":[",
            self.ticks, self.pool_budget, self.total_faults
        );
        for (i, s) in self.sessions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            session_json(s, &mut out);
        }
        out.push_str("],\"event_totals\":{");
        for (i, (label, n)) in self.event_totals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(label, &mut out);
            let _ = write!(out, ":{n}");
        }
        out.push_str("}}");
        out
    }

    /// Write [`FleetReport::to_json`] (plus a trailing newline) to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors from the write.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        let mut json = self.to_json();
        json.push('\n');
        std::fs::write(path, json)
    }
}

fn session_json(s: &SessionReport, out: &mut String) {
    let _ = write!(out, "{{\"id\":{},\"name\":", s.id.index());
    json_string(&s.name, out);
    out.push_str(",\"state\":");
    json_string(s.state.label(), out);
    out.push_str(",\"failure\":");
    match &s.state {
        SessionState::Failed(failure) => json_string(&failure.to_string(), out),
        _ => out.push_str("null"),
    }
    out.push_str(",\"backoff_until\":");
    match s.state {
        SessionState::Backoff { until_tick } => {
            let _ = write!(out, "{until_tick}");
        }
        _ => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"steps\":{},\"restarts\":{},\"checkpoint_bytes_written\":{},\"checkpoint_restores\":{},\"checkpoint_delta_frames\":{},\"checkpoint_quarantined\":{},\"result\":",
        s.steps,
        s.restarts,
        s.checkpoint_bytes_written,
        s.checkpoint_restores,
        s.checkpoint_delta_frames,
        s.checkpoint_quarantined
    );
    match &s.result {
        Some(result) => result_json(result, out),
        None => out.push_str("null"),
    }
    out.push_str(",\"robustness\":");
    events_json(&s.robustness.events, out);
    out.push_str(",\"fleet_events\":");
    events_json(&s.fleet_events.events, out);
    out.push('}');
}

fn result_json(r: &CoSearchResult, out: &mut String) {
    let _ = write!(out, "{{\"steps\":{},\"best_score\":{},\"final_score\":{}", r.steps, json_f64(f64::from(r.best_score())), json_f64(f64::from(r.final_score())));
    let _ = write!(
        out,
        ",\"fps\":{},\"dsp_used\":{},\"bram_kb_used\":{},\"feasible\":{},\"chunks\":{}",
        json_f64(r.report.fps),
        r.report.dsp_used,
        r.report.bram_kb_used,
        r.report.feasible,
        r.accelerator.chunks.len()
    );
    out.push_str(",\"arch\":[");
    for (i, op) in r.arch.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(&op.to_string(), out);
    }
    out.push_str("],\"score_curve\":");
    curve_json(&r.score_curve, out);
    out.push_str(",\"alpha_entropy_curve\":");
    curve_json(&r.alpha_entropy_curve, out);
    out.push('}');
}

fn curve_json(curve: &[(u64, f32)], out: &mut String) {
    out.push('[');
    for (i, &(steps, value)) in curve.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{steps},{}]", json_f64(f64::from(value)));
    }
    out.push(']');
}

fn events_json(events: &[RobustnessEvent], out: &mut String) {
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"iteration\":{},\"kind\":", e.iteration);
        json_string(e.kind.label(), out);
        out.push_str(",\"detail\":");
        json_string(&e.detail, out);
        out.push('}');
    }
    out.push(']');
}

/// Shortest-round-trip decimal for a finite float, `null` otherwise.
/// `f32` values are widened through `f64` losslessly before formatting, so
/// identical `f32` bits always print identical bytes.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping, byte-compatible with the telemetry
/// crate's serializer.
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SessionFailure, SessionId};
    use a3cs_core::{RobustnessEventKind, RobustnessLog};
    use std::collections::BTreeMap;

    fn sample_report() -> FleetReport {
        let mut robustness = RobustnessLog::new();
        robustness.push(7, RobustnessEventKind::FaultInjected, "abort at 7");
        let mut fleet_events = RobustnessLog::new();
        fleet_events.push(
            9,
            RobustnessEventKind::SessionRestarted,
            "restart 1 of 1 scheduled for tick 10",
        );
        let mut event_totals = BTreeMap::new();
        event_totals.insert("fault-injected".to_string(), 1);
        event_totals.insert("session-restarted".to_string(), 1);
        FleetReport {
            sessions: vec![
                SessionReport {
                    id: SessionId::new(0),
                    name: "alpha \"one\"".to_string(),
                    state: SessionState::Failed(SessionFailure::Panicked("boom".to_string())),
                    steps: 120,
                    restarts: 1,
                    result: None,
                    robustness,
                    fleet_events,
                    checkpoint_bytes_written: 2048,
                    checkpoint_restores: 1,
                    checkpoint_delta_frames: 6,
                    checkpoint_quarantined: 2,
                },
                SessionReport {
                    id: SessionId::new(1),
                    name: "beta".to_string(),
                    state: SessionState::Backoff { until_tick: 12 },
                    steps: 0,
                    restarts: 0,
                    result: None,
                    robustness: RobustnessLog::new(),
                    fleet_events: RobustnessLog::new(),
                    checkpoint_bytes_written: 0,
                    checkpoint_restores: 0,
                    checkpoint_delta_frames: 0,
                    checkpoint_quarantined: 0,
                },
            ],
            ticks: 42,
            pool_budget: 2,
            total_faults: 1,
            event_totals,
        }
    }

    #[test]
    fn fleet_report_json_golden() {
        let want = concat!(
            "{\"schema\":2,\"ticks\":42,\"pool_budget\":2,\"total_faults\":1,\"sessions\":[",
            "{\"id\":0,\"name\":\"alpha \\\"one\\\"\",\"state\":\"failed\",",
            "\"failure\":\"panicked: boom\",\"backoff_until\":null,\"steps\":120,\"restarts\":1,",
            "\"checkpoint_bytes_written\":2048,\"checkpoint_restores\":1,",
            "\"checkpoint_delta_frames\":6,\"checkpoint_quarantined\":2,\"result\":null,",
            "\"robustness\":[{\"iteration\":7,\"kind\":\"fault-injected\",\"detail\":\"abort at 7\"}],",
            "\"fleet_events\":[{\"iteration\":9,\"kind\":\"session-restarted\",",
            "\"detail\":\"restart 1 of 1 scheduled for tick 10\"}]},",
            "{\"id\":1,\"name\":\"beta\",\"state\":\"backoff\",\"failure\":null,",
            "\"backoff_until\":12,\"steps\":0,\"restarts\":0,\"checkpoint_bytes_written\":0,",
            "\"checkpoint_restores\":0,\"checkpoint_delta_frames\":0,\"checkpoint_quarantined\":0,",
            "\"result\":null,\"robustness\":[],\"fleet_events\":[]}],",
            "\"event_totals\":{\"fault-injected\":1,\"session-restarted\":1}}",
        );
        assert_eq!(sample_report().to_json(), want);
    }

    #[test]
    fn json_is_deterministic_and_write_appends_newline() {
        let report = sample_report();
        assert_eq!(report.to_json(), report.to_json());
        let path = std::env::temp_dir()
            .join(format!("a3cs_fleet_json_{}.json", std::process::id()));
        report.write_json(&path).expect("temp write succeeds");
        let bytes = std::fs::read_to_string(&path).expect("readable back");
        assert_eq!(bytes, format!("{}\n", report.to_json()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
