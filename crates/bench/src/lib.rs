//! Shared harness for the A3C-S experiment binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it on the simulated substrate:
//!
//! | paper artefact | binary |
//! |---|---|
//! | Fig. 1 (training curves, 5 backbones) | `fig1_training_curves` |
//! | Table I (best scores, 5 backbones) | `table1_model_sizes` |
//! | Table II (distillation ablation) | `table2_distillation` |
//! | Fig. 2 (search schemes) | `fig2_search_schemes` |
//! | Fig. 3 (score/FPS trade-off) | `fig3_fps_tradeoff` |
//! | Table III (vs FA3C) | `table3_vs_fa3c` |
//!
//! Binaries honour the `A3CS_SCALE` environment variable
//! (`smoke`/`short`/`full`, default `short`) so the same code runs in
//! seconds for CI smoke checks or minutes for report-quality numbers.
//! Results are printed as aligned tables and dumped as JSON under
//! `results/`.

#![deny(missing_docs)]

pub mod cli;
pub mod paper_data;
pub mod report;
pub mod scale;
pub mod setup;
