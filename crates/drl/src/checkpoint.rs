//! Parameter checkpointing: persist and restore agent weights as JSON,
//! plus the durable-write machinery shared by all checkpoint producers —
//! atomic writes, a checksummed envelope format, and a rotating on-disk
//! store with corruption fallback.
//!
//! The harnesses use [`Checkpoint`] to train a teacher once and reuse it
//! across experiments, mirroring how the paper pretrains one ResNet-20
//! teacher per task. The co-search loop's fault-tolerance layer builds its
//! resumable search checkpoints on [`write_atomic`], [`seal_envelope`] /
//! [`unseal_envelope`] and [`CheckpointStore`].

use crate::agent::ActorCritic;
use crate::frame::{
    apply_delta_frame, decode_base_frame, encode_base_frame, is_frame, CheckpointCodec,
    CheckpointIo, StdIo,
};
use a3cs_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// A serialisable snapshot of one agent's parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    entries: Vec<ParamEntry>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ParamEntry {
    name: String,
    shape: Vec<usize>,
    data: Vec<f32>,
}

/// Error loading or applying a checkpoint.
#[derive(Debug)]
pub enum LoadCheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a valid checkpoint.
    Parse(serde_json::Error),
    /// The checkpoint does not match the agent's parameter list.
    Mismatch(String),
}

impl fmt::Display for LoadCheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadCheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            LoadCheckpointError::Parse(e) => write!(f, "checkpoint parse error: {e}"),
            LoadCheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl Error for LoadCheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadCheckpointError::Io(e) => Some(e),
            LoadCheckpointError::Parse(e) => Some(e),
            LoadCheckpointError::Mismatch(_) => None,
        }
    }
}

impl From<std::io::Error> for LoadCheckpointError {
    fn from(e: std::io::Error) -> Self {
        LoadCheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for LoadCheckpointError {
    fn from(e: serde_json::Error) -> Self {
        LoadCheckpointError::Parse(e)
    }
}

/// Error saving a checkpoint.
#[derive(Debug)]
pub enum SaveCheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The checkpoint could not be serialised.
    Serialize(serde_json::Error),
}

impl fmt::Display for SaveCheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaveCheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            SaveCheckpointError::Serialize(e) => {
                write!(f, "checkpoint serialise error: {e}")
            }
        }
    }
}

impl Error for SaveCheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SaveCheckpointError::Io(e) => Some(e),
            SaveCheckpointError::Serialize(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for SaveCheckpointError {
    fn from(e: std::io::Error) -> Self {
        SaveCheckpointError::Io(e)
    }
}

/// Write `contents` to `path` atomically: write a sibling `*.tmp` file and
/// rename it into place, so readers never observe a half-written file even
/// if the process dies mid-write.
///
/// # Errors
///
/// Returns any filesystem error encountered; the temporary file is removed
/// on failure when possible.
pub fn write_atomic(path: &Path, contents: &str) -> Result<(), std::io::Error> {
    write_atomic_bytes(path, contents.as_bytes())
}

/// [`write_atomic`] for binary contents.
///
/// # Errors
///
/// Returns any filesystem error encountered; the temporary file is removed
/// on failure when possible.
pub fn write_atomic_bytes(path: &Path, contents: &[u8]) -> Result<(), std::io::Error> {
    write_atomic_bytes_with(&mut StdIo, path, contents)
}

/// [`write_atomic_bytes`] through an explicit [`CheckpointIo`], so tests
/// can fail the write, short-write it, or tear the rename deterministically.
/// Cleanup of the temporary file is best-effort — a torn rename can leave
/// it behind, which is exactly what [`CheckpointStore::scrub`] quarantines.
///
/// # Errors
///
/// Returns any I/O error the injected (or real) filesystem reports.
pub fn write_atomic_bytes_with(
    io: &mut dyn CheckpointIo,
    path: &Path,
    contents: &[u8],
) -> Result<(), std::io::Error> {
    let mut tmp_name = path
        .file_name()
        .map_or_else(|| std::ffi::OsString::from("checkpoint"), ToOwned::to_owned);
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    if let Err(e) = io.write_file(&tmp, contents) {
        io.remove_file(&tmp).ok();
        return Err(e);
    }
    match io.rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            io.remove_file(&tmp).ok();
            Err(e)
        }
    }
}

/// FNV-1a 64-bit hash — the integrity checksum used by the checkpoint
/// envelope. Not cryptographic; it detects truncation and bit corruption.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Magic/version prefix of the checkpoint envelope header line.
const ENVELOPE_MAGIC: &str = "A3CS-CKPT v2";

/// Wrap `payload` in the checkpoint envelope: a single header line
/// `A3CS-CKPT v2 fnv1a=<16 hex digits>` followed by the payload verbatim.
/// [`unseal_envelope`] verifies the checksum over the payload bytes.
#[must_use]
pub fn seal_envelope(payload: &str) -> String {
    format!(
        "{ENVELOPE_MAGIC} fnv1a={:016x}\n{payload}",
        fnv1a64(payload.as_bytes())
    )
}

/// [`seal_envelope`] for binary payloads: the same ASCII header line
/// followed by the payload bytes verbatim.
#[must_use]
pub fn seal_envelope_bytes(payload: &[u8]) -> Vec<u8> {
    let mut sealed = format!("{ENVELOPE_MAGIC} fnv1a={:016x}\n", fnv1a64(payload)).into_bytes();
    sealed.extend_from_slice(payload);
    sealed
}

/// Why an envelope failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// The header line is missing, has the wrong magic/version, or carries
    /// an unparsable checksum.
    Malformed {
        /// Description of what was wrong with the header.
        detail: String,
    },
    /// The payload bytes do not hash to the checksum in the header —
    /// the file was truncated or corrupted.
    Checksum {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the payload actually present.
        computed: u64,
    },
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeError::Malformed { detail } => {
                write!(f, "malformed checkpoint envelope: {detail}")
            }
            EnvelopeError::Checksum { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: header says {stored:016x}, \
                 payload hashes to {computed:016x} (truncated or corrupted)"
            ),
        }
    }
}

impl Error for EnvelopeError {}

/// Verify and strip the envelope added by [`seal_envelope`], returning the
/// payload.
///
/// # Errors
///
/// [`EnvelopeError`] when the header is malformed or the checksum does not
/// match the payload.
pub fn unseal_envelope(text: &str) -> Result<&str, EnvelopeError> {
    let payload = unseal_envelope_bytes(text.as_bytes())?;
    // The header split happens at an ASCII newline, so the payload is a
    // char-boundary suffix of the UTF-8 input.
    std::str::from_utf8(payload).map_err(|_| EnvelopeError::Malformed {
        detail: "payload is not UTF-8".to_string(),
    })
}

/// [`unseal_envelope`] for binary payloads.
///
/// # Errors
///
/// [`EnvelopeError`] when the header is malformed or the checksum does not
/// match the payload.
pub fn unseal_envelope_bytes(bytes: &[u8]) -> Result<&[u8], EnvelopeError> {
    let Some(newline) = bytes.iter().position(|&b| b == b'\n') else {
        return Err(EnvelopeError::Malformed {
            detail: "no header line".to_string(),
        });
    };
    let (header_bytes, payload) = (&bytes[..newline], &bytes[newline + 1..]);
    let Ok(header) = std::str::from_utf8(header_bytes) else {
        return Err(EnvelopeError::Malformed {
            detail: "header line is not UTF-8".to_string(),
        });
    };
    let Some(rest) = header.strip_prefix(ENVELOPE_MAGIC) else {
        return Err(EnvelopeError::Malformed {
            detail: format!("header {header:?} does not start with {ENVELOPE_MAGIC:?}"),
        });
    };
    let Some(hex) = rest.trim().strip_prefix("fnv1a=") else {
        return Err(EnvelopeError::Malformed {
            detail: format!("header {header:?} lacks a fnv1a= checksum"),
        });
    };
    let Ok(stored) = u64::from_str_radix(hex, 16) else {
        return Err(EnvelopeError::Malformed {
            detail: format!("unparsable checksum {hex:?}"),
        });
    };
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(EnvelopeError::Checksum { stored, computed });
    }
    Ok(payload)
}

/// A rotating directory of sealed checkpoints: `ckpt-<iteration>.json`
/// files written atomically, pruned to the most recent `keep`, and read
/// back newest-first with automatic fallback past corrupt or truncated
/// files.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

/// Outcome of [`CheckpointStore::recover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// `(iteration, payload)` of the newest checkpoint that verified, if
    /// any did. Payloads are opaque bytes — the producer decides the
    /// format (JSON or a binary frame).
    pub checkpoint: Option<(u64, Vec<u8>)>,
    /// One human-readable diagnostic per file that was skipped (unreadable,
    /// malformed, or failed its checksum), newest first.
    pub skipped: Vec<String>,
    /// Diagnostics from delta-chain replay: each entry records a delta
    /// frame that failed verification, forcing recovery to stop at the
    /// verified chain prefix (or fall back to an older base). Only
    /// populated by [`CheckpointStore::recover_checkpoint`].
    pub fallbacks: Vec<String>,
}

/// Outcome of [`CheckpointStore::scrub`]: what was examined and what was
/// quarantined. Nothing is ever deleted — broken frames are renamed with a
/// `.bad` suffix so a human (or a later forensic pass) can inspect them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Number of base frames (chains) examined.
    pub chains: usize,
    /// Total frames examined: bases, deltas, and stray temporary files.
    pub frames: usize,
    /// Original paths of every file quarantined (renamed to `<name>.bad`),
    /// with a reason, formatted `"<path>: <reason>"`.
    pub quarantined: Vec<String>,
}

/// Outcome of [`CheckpointStore::compact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactReport {
    /// Chains folded into a fresh base.
    pub folded_chains: usize,
    /// Delta frames removed after their content was folded into a base.
    /// Removal (not quarantine) is legitimate here: the bytes live on in
    /// the new base, verified before anything is touched.
    pub removed_frames: usize,
}

impl CheckpointStore {
    /// A store rooted at `dir`, retaining the newest `keep` checkpoints
    /// (clamped to at least 1).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> Self {
        CheckpointStore {
            dir: dir.into(),
            keep: keep.max(1),
        }
    }

    /// The directory this store writes into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the checkpoint for `iteration`.
    #[must_use]
    pub fn path_for(&self, iteration: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{iteration:012}.json"))
    }

    /// Seal `payload` and write it atomically as the checkpoint for
    /// `iteration`, then prune files beyond the newest `keep`.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error from creating the directory or writing
    /// the file. Pruning failures are ignored — stale files cost disk, not
    /// correctness.
    #[must_use = "the Result reports failure and must be checked"]
    pub fn write(&self, iteration: u64, payload: &[u8]) -> Result<PathBuf, std::io::Error> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path_for(iteration);
        write_atomic_bytes(&path, &seal_envelope_bytes(payload))?;
        let files = self.candidates();
        for (_, stale) in files.iter().skip(self.keep) {
            fs::remove_file(stale).ok();
        }
        Ok(path)
    }

    /// All checkpoint files currently in the store as `(iteration, path)`,
    /// newest first. Files whose names do not parse are ignored.
    #[must_use]
    pub fn candidates(&self) -> Vec<(u64, PathBuf)> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut files: Vec<(u64, PathBuf)> = entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let path = e.path();
                let name = path.file_name()?.to_str()?;
                let iter = name.strip_prefix("ckpt-")?.strip_suffix(".json")?;
                Some((iter.parse::<u64>().ok()?, path))
            })
            .collect();
        files.sort_by(|a, b| b.0.cmp(&a.0));
        files
    }

    /// Find the newest checkpoint that reads back and passes its checksum,
    /// collecting a diagnostic for every newer file that had to be skipped.
    /// Never panics: corruption, truncation and unreadable files all
    /// degrade to fallback.
    #[must_use]
    pub fn recover(&self) -> Recovery {
        let mut skipped = Vec::new();
        for (iteration, path) in self.candidates() {
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    skipped.push(format!("{}: unreadable: {e}", path.display()));
                    continue;
                }
            };
            match unseal_envelope_bytes(&bytes) {
                Ok(payload) => {
                    return Recovery {
                        checkpoint: Some((iteration, payload.to_vec())),
                        skipped,
                        fallbacks: Vec::new(),
                    };
                }
                Err(e) => skipped.push(format!("{}: {e}", path.display())),
            }
        }
        Recovery {
            checkpoint: None,
            skipped,
            fallbacks: Vec::new(),
        }
    }

    /// Path of the delta frame for `iteration`.
    #[must_use]
    pub fn delta_path_for(&self, iteration: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{iteration:012}.delta"))
    }

    /// [`CheckpointStore::write`] through an explicit [`CheckpointIo`].
    ///
    /// # Errors
    ///
    /// Returns any filesystem error from creating the directory or writing
    /// the file.
    #[must_use = "the Result reports failure and must be checked"]
    pub fn write_with(
        &self,
        io: &mut dyn CheckpointIo,
        iteration: u64,
        payload: &[u8],
    ) -> Result<PathBuf, std::io::Error> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path_for(iteration);
        write_atomic_bytes_with(io, &path, &seal_envelope_bytes(payload))?;
        self.prune_chains();
        Ok(path)
    }

    /// Seal `frame` (an encoded base frame) and write it atomically as the
    /// base checkpoint for `iteration`, then prune whole chains beyond the
    /// newest `keep` bases. Returns the path and the sealed on-disk size.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error from creating the directory or writing
    /// the file. Pruning failures are ignored.
    #[must_use = "the Result reports failure and must be checked"]
    pub fn write_base_frame(
        &self,
        io: &mut dyn CheckpointIo,
        iteration: u64,
        frame: &[u8],
    ) -> Result<(PathBuf, u64), std::io::Error> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path_for(iteration);
        let sealed = seal_envelope_bytes(frame);
        write_atomic_bytes_with(io, &path, &sealed)?;
        self.prune_chains();
        // a3cs::allow(lossy-cast): usize → u64 widens, a frame length is exact
        Ok((path, sealed.len() as u64))
    }

    /// Seal `frame` (an encoded delta frame) and write it atomically as
    /// the delta checkpoint for `iteration`. Deltas are never pruned on
    /// their own — they live and die with the base of their chain.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error from creating the directory or writing
    /// the file.
    #[must_use = "the Result reports failure and must be checked"]
    pub fn write_delta_frame(
        &self,
        io: &mut dyn CheckpointIo,
        iteration: u64,
        frame: &[u8],
    ) -> Result<(PathBuf, u64), std::io::Error> {
        fs::create_dir_all(&self.dir)?;
        let path = self.delta_path_for(iteration);
        let sealed = seal_envelope_bytes(frame);
        write_atomic_bytes_with(io, &path, &sealed)?;
        // a3cs::allow(lossy-cast): usize → u64 widens, a frame length is exact
        Ok((path, sealed.len() as u64))
    }

    /// Remove every `.json`/`.delta` file older than the oldest of the
    /// newest `keep` base checkpoints. Whole chains go together: a delta
    /// is attributed to the newest base at or below its iteration, so the
    /// cutoff at a base iteration never strands a kept base's deltas.
    fn prune_chains(&self) {
        let bases = self.candidates();
        let Some(&(cutoff, _)) = bases.get(self.keep - 1).or(bases.last()) else {
            return;
        };
        for (iter, stale) in bases.iter().skip(self.keep) {
            debug_assert!(*iter < cutoff || bases.len() <= self.keep);
            fs::remove_file(stale).ok();
        }
        for (iter, stale) in self.delta_candidates() {
            if iter < cutoff {
                fs::remove_file(stale).ok();
            }
        }
    }

    /// All delta frames currently in the store as `(iteration, path)`,
    /// **oldest first** (replay order). Files whose names do not parse are
    /// ignored.
    #[must_use]
    pub fn delta_candidates(&self) -> Vec<(u64, PathBuf)> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut files: Vec<(u64, PathBuf)> = entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let path = e.path();
                let name = path.file_name()?.to_str()?;
                let iter = name.strip_prefix("ckpt-")?.strip_suffix(".delta")?;
                Some((iter.parse::<u64>().ok()?, path))
            })
            .collect();
        files.sort_by(|a, b| a.0.cmp(&b.0));
        files
    }

    /// Read and verify one sealed frame file, returning the frame bytes.
    fn read_sealed(path: &Path) -> Result<Vec<u8>, String> {
        let bytes = fs::read(path).map_err(|e| format!("{}: unreadable: {e}", path.display()))?;
        unseal_envelope_bytes(&bytes)
            .map(<[u8]>::to_vec)
            .map_err(|e| format!("{}: {e}", path.display()))
    }

    /// The deltas attributed to the base at `base_iter`, given the bases
    /// newest-first and all deltas oldest-first: every delta strictly newer
    /// than the base and strictly older than the next newer base.
    fn deltas_for<'d>(
        base_iter: u64,
        next_base_iter: Option<u64>,
        deltas: &'d [(u64, PathBuf)],
    ) -> impl Iterator<Item = &'d (u64, PathBuf)> {
        deltas.iter().filter(move |(i, _)| {
            *i > base_iter && next_base_iter.is_none_or(|nb| *i < nb)
        })
    }

    /// Find the newest checkpoint payload that verifies end-to-end,
    /// replaying delta chains: for each base newest-first, decode the base
    /// frame and apply its attributed deltas in order, verifying chain id,
    /// position, parent checksum and target checksum at every link. A
    /// failed link stops the replay at the verified prefix (recorded in
    /// [`Recovery::fallbacks`]); a failed base falls back to the next older
    /// one (recorded in [`Recovery::skipped`]). Legacy payloads (not
    /// frame-encoded) pass through verbatim. Never panics.
    #[must_use]
    pub fn recover_checkpoint(&self) -> Recovery {
        let mut skipped = Vec::new();
        let mut fallbacks = Vec::new();
        let bases = self.candidates();
        let deltas = self.delta_candidates();
        for (idx, (base_iter, base_path)) in bases.iter().enumerate() {
            let frame = match Self::read_sealed(base_path) {
                Ok(f) => f,
                Err(e) => {
                    skipped.push(e);
                    continue;
                }
            };
            let base_payload = if is_frame(&frame) {
                match decode_base_frame(&frame) {
                    Ok(p) => p,
                    Err(e) => {
                        skipped.push(format!("{}: {e}", base_path.display()));
                        continue;
                    }
                }
            } else {
                frame // legacy raw payload: the envelope already verified it
            };
            let chain_id = fnv1a64(&base_payload);
            let next_base = idx.checked_sub(1).map(|i| bases[i].0);
            let mut current = base_payload;
            let mut current_iter = *base_iter;
            let mut position = 1u32;
            for (d_iter, d_path) in Self::deltas_for(*base_iter, next_base, &deltas) {
                let applied = Self::read_sealed(d_path).and_then(|f| {
                    apply_delta_frame(&f, &current, chain_id, position)
                        .map_err(|e| format!("{}: {e}", d_path.display()))
                });
                match applied {
                    Ok(target) => {
                        current = target;
                        current_iter = *d_iter;
                        position += 1;
                    }
                    Err(e) => {
                        // Later deltas in this chain cannot verify either;
                        // resume from the longest verified prefix.
                        fallbacks.push(e);
                        break;
                    }
                }
            }
            return Recovery {
                checkpoint: Some((current_iter, current)),
                skipped,
                fallbacks,
            };
        }
        Recovery {
            checkpoint: None,
            skipped,
            fallbacks,
        }
    }

    /// Validate every chain on disk and quarantine what fails: broken base
    /// frames (and their now-unreachable deltas), the first broken link of
    /// each chain plus everything downstream of it, orphan deltas older
    /// than the oldest base, and stray `.tmp` files left by torn renames.
    /// Quarantine renames the file to `<name>.bad` — nothing is deleted,
    /// so no scrub bug can destroy the last good copy of anything.
    #[must_use = "the report says what was quarantined and must be surfaced"]
    pub fn scrub(&self, io: &mut dyn CheckpointIo) -> ScrubReport {
        let mut report = ScrubReport::default();
        let mut quarantine = |io: &mut dyn CheckpointIo, path: &Path, reason: &str| {
            let mut bad = path.file_name().map_or_else(
                || std::ffi::OsString::from("frame"),
                ToOwned::to_owned,
            );
            bad.push(".bad");
            if io.rename(path, &path.with_file_name(bad)).is_ok() {
                report.quarantined.push(format!("{}: {reason}", path.display()));
            }
        };
        let bases = self.candidates();
        let deltas = self.delta_candidates();
        report.chains = bases.len();
        report.frames = bases.len() + deltas.len();
        for (idx, (base_iter, base_path)) in bases.iter().enumerate() {
            let next_base = idx.checked_sub(1).map(|i| bases[i].0);
            let chain_deltas: Vec<&(u64, PathBuf)> =
                Self::deltas_for(*base_iter, next_base, &deltas).collect();
            let base_payload = Self::read_sealed(base_path).and_then(|frame| {
                if is_frame(&frame) {
                    decode_base_frame(&frame)
                        .map_err(|e| format!("{}: {e}", base_path.display()))
                } else {
                    Ok(frame)
                }
            });
            let mut current = match base_payload {
                Ok(p) => p,
                Err(e) => {
                    quarantine(io, base_path, &e);
                    for (_, d_path) in chain_deltas {
                        quarantine(io, d_path, "chain base quarantined");
                    }
                    continue;
                }
            };
            let chain_id = fnv1a64(&current);
            let mut position = 1u32;
            let mut broken = false;
            for (_, d_path) in chain_deltas {
                if broken {
                    quarantine(io, d_path, "downstream of a quarantined delta");
                    continue;
                }
                let applied = Self::read_sealed(d_path).and_then(|f| {
                    apply_delta_frame(&f, &current, chain_id, position)
                        .map_err(|e| format!("{}: {e}", d_path.display()))
                });
                match applied {
                    Ok(target) => {
                        current = target;
                        position += 1;
                    }
                    Err(e) => {
                        quarantine(io, d_path, &e);
                        broken = true;
                    }
                }
            }
        }
        // Orphan deltas older than the oldest base can never replay.
        if let Some(&(oldest_base, _)) = bases.last() {
            for (d_iter, d_path) in &deltas {
                if *d_iter <= oldest_base {
                    quarantine(io, d_path, "orphan delta with no base");
                }
            }
        } else {
            for (_, d_path) in &deltas {
                quarantine(io, d_path, "orphan delta with no base");
            }
        }
        // Stray temporaries are evidence of a torn rename.
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for path in entries.filter_map(Result::ok).map(|e| e.path()) {
                if path.extension().is_some_and(|e| e == "tmp") {
                    report.frames += 1;
                    quarantine(io, &path, "stray temporary from a torn rename");
                }
            }
        }
        report
    }

    /// Fold every chain with more than `max_chain_len` deltas into a fresh
    /// base frame at the chain tip's iteration (encoded with `codec`), then
    /// remove the folded deltas — their content lives on in the new base,
    /// which is written and verified before anything is removed. Chains
    /// that fail verification are left untouched (that is [`Self::scrub`]'s
    /// job).
    ///
    /// # Errors
    ///
    /// Returns the first filesystem error from writing a new base; removal
    /// failures are ignored (stale frames cost disk, not correctness).
    #[must_use = "the Result reports failure and must be checked"]
    pub fn compact(
        &self,
        io: &mut dyn CheckpointIo,
        max_chain_len: usize,
        codec: CheckpointCodec,
    ) -> Result<CompactReport, std::io::Error> {
        let mut report = CompactReport::default();
        let bases = self.candidates();
        let deltas = self.delta_candidates();
        for (idx, (base_iter, base_path)) in bases.iter().enumerate() {
            let next_base = idx.checked_sub(1).map(|i| bases[i].0);
            let chain_deltas: Vec<&(u64, PathBuf)> =
                Self::deltas_for(*base_iter, next_base, &deltas).collect();
            if chain_deltas.len() <= max_chain_len {
                continue;
            }
            let Ok(frame) = Self::read_sealed(base_path) else {
                continue;
            };
            let mut current = if is_frame(&frame) {
                match decode_base_frame(&frame) {
                    Ok(p) => p,
                    Err(_) => continue,
                }
            } else {
                frame
            };
            let chain_id = fnv1a64(&current);
            let mut tip_iter = *base_iter;
            let mut position = 1u32;
            let mut verified = true;
            for (d_iter, d_path) in &chain_deltas {
                let applied = Self::read_sealed(d_path)
                    .ok()
                    .and_then(|f| apply_delta_frame(&f, &current, chain_id, position).ok());
                match applied {
                    Some(target) => {
                        current = target;
                        tip_iter = *d_iter;
                        position += 1;
                    }
                    None => {
                        verified = false;
                        break;
                    }
                }
            }
            if !verified {
                continue;
            }
            let (_, _) =
                self.write_base_frame(io, tip_iter, &encode_base_frame(&current, codec))?;
            report.folded_chains += 1;
            for (_, d_path) in chain_deltas {
                if io.remove_file(d_path).is_ok() {
                    report.removed_frames += 1;
                }
            }
        }
        Ok(report)
    }
}

impl Checkpoint {
    /// Capture the current parameter values of `agent`.
    #[must_use]
    pub fn capture(agent: &ActorCritic) -> Self {
        let entries = agent
            .params()
            .iter()
            .map(|p| {
                let value = p.value();
                ParamEntry {
                    name: p.name().to_owned(),
                    shape: value.shape().to_vec(),
                    data: value.data().to_vec(),
                }
            })
            .collect();
        Checkpoint { entries }
    }

    /// Number of parameter tensors stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the checkpoint stores no parameters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Write the checkpoint as JSON to `path`, atomically (tmp + rename),
    /// so a crash mid-save never leaves a truncated checkpoint behind.
    ///
    /// # Errors
    ///
    /// Returns [`SaveCheckpointError`] on serialisation or filesystem
    /// failure.
    #[must_use = "the Result reports failure and must be checked"]
    pub fn save(&self, path: &Path) -> Result<(), SaveCheckpointError> {
        let json = serde_json::to_string(self).map_err(SaveCheckpointError::Serialize)?;
        write_atomic(path, &json)?;
        Ok(())
    }

    /// Read a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`LoadCheckpointError`] on IO or parse failure.
    pub fn load(path: &Path) -> Result<Self, LoadCheckpointError> {
        let json = fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }

    /// Apply the stored values to `agent` (parameter lists must match in
    /// order, name and shape).
    ///
    /// # Errors
    ///
    /// Returns [`LoadCheckpointError::Mismatch`] when the agent's
    /// architecture differs from the checkpointed one.
    #[must_use = "the Result reports failure and must be checked"]
    pub fn apply(&self, agent: &ActorCritic) -> Result<(), LoadCheckpointError> {
        let params = agent.params();
        if params.len() != self.entries.len() {
            return Err(LoadCheckpointError::Mismatch(format!(
                "agent has {} parameters, checkpoint has {}",
                params.len(),
                self.entries.len()
            )));
        }
        for (p, e) in params.iter().zip(self.entries.iter()) {
            if p.name() != e.name {
                return Err(LoadCheckpointError::Mismatch(format!(
                    "parameter {} vs checkpoint entry {}",
                    p.name(),
                    e.name
                )));
            }
            let tensor = Tensor::from_vec(e.data.clone(), &e.shape).map_err(|err| {
                LoadCheckpointError::Mismatch(format!("entry {}: {err}", e.name))
            })?;
            if tensor.shape() != p.value().shape() {
                return Err(LoadCheckpointError::Mismatch(format!(
                    "parameter {} shape {:?} vs checkpoint {:?}",
                    p.name(),
                    p.value().shape(),
                    tensor.shape()
                )));
            }
            p.set_value(tensor);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_nn::vanilla;

    fn agent(seed: u64) -> ActorCritic {
        let backbone = vanilla(3, 12, 12, 16, seed);
        ActorCritic::new(Box::new(backbone), 16, (3, 12, 12), 3, seed)
    }

    #[test]
    fn capture_apply_round_trip() {
        let a = agent(1);
        let b = agent(2);
        let obs = vec![0.4; 3 * 12 * 12];
        assert_ne!(a.policy_probs(&obs, 1), b.policy_probs(&obs, 1));
        Checkpoint::capture(&a).apply(&b).expect("compatible agents");
        assert_eq!(a.policy_probs(&obs, 1), b.policy_probs(&obs, 1));
    }

    /// A per-test, per-process scratch directory: tests used to share one
    /// fixed path and could race each other (or stale state from a killed
    /// run) when the suite ran concurrently.
    fn test_dir(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("a3cs_ckpt_{}_{test}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let a = agent(3);
        let dir = test_dir("save_load_round_trip");
        let path = dir.join("agent.json");
        let ck = Checkpoint::capture(&a);
        ck.save(&path).expect("save");
        let loaded = Checkpoint::load(&path).expect("load");
        assert_eq!(ck, loaded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_leaves_no_tmp_file_behind() {
        let dir = test_dir("save_leaves_no_tmp_file_behind");
        let path = dir.join("agent.json");
        Checkpoint::capture(&agent(6)).save(&path).expect("save");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["agent.json".to_string()], "{names:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn envelope_round_trip_and_rejection() {
        let payload = r#"{"hello": [1, 2, 3]}"#;
        let sealed = seal_envelope(payload);
        assert_eq!(unseal_envelope(&sealed).expect("round trip"), payload);

        // Flip one payload byte: checksum must catch it.
        let mut bytes = sealed.clone().into_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        let flipped = String::from_utf8(bytes).expect("ascii payload");
        assert!(matches!(
            unseal_envelope(&flipped),
            Err(EnvelopeError::Checksum { .. })
        ));

        // Truncate mid-payload: checksum must catch it.
        let truncated = &sealed[..sealed.len() - 4];
        assert!(matches!(
            unseal_envelope(truncated),
            Err(EnvelopeError::Checksum { .. })
        ));

        // Not an envelope at all.
        assert!(matches!(
            unseal_envelope("random junk\nmore junk"),
            Err(EnvelopeError::Malformed { .. })
        ));
        assert!(matches!(
            unseal_envelope("no newline at all"),
            Err(EnvelopeError::Malformed { .. })
        ));
    }

    #[test]
    fn binary_envelope_round_trips_non_utf8_payloads() {
        let payload: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        let sealed = seal_envelope_bytes(&payload);
        assert_eq!(
            unseal_envelope_bytes(&sealed).expect("round trip"),
            payload.as_slice()
        );
        // A flipped payload byte fails the checksum.
        let mut corrupt = sealed.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        assert!(matches!(
            unseal_envelope_bytes(&corrupt),
            Err(EnvelopeError::Checksum { .. })
        ));
        // The text API rejects binary payloads instead of panicking.
        let lossy = String::from_utf8_lossy(&sealed).into_owned();
        assert!(unseal_envelope(&lossy).is_err());
    }

    #[test]
    fn store_rotates_and_recovers_newest() {
        let dir = test_dir("store_rotates_and_recovers_newest");
        let store = CheckpointStore::new(&dir, 2);
        for i in [3u64, 7, 11] {
            store.write(i, format!("payload-{i}").as_bytes()).expect("write");
        }
        let files = store.candidates();
        assert_eq!(
            files.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![11, 7],
            "oldest checkpoint must be pruned"
        );
        let rec = store.recover();
        assert_eq!(rec.checkpoint, Some((11, b"payload-11".to_vec())));
        assert!(rec.skipped.is_empty(), "{:?}", rec.skipped);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_falls_back_past_corrupt_checkpoints() {
        let dir = test_dir("store_falls_back_past_corrupt_checkpoints");
        let store = CheckpointStore::new(&dir, 3);
        store.write(1, b"good-old").expect("write");
        store.write(2, b"good-new").expect("write");
        // Corrupt the newest on disk (simulating a torn write from a
        // pre-atomic producer or disk corruption).
        std::fs::write(store.path_for(2), "A3CS-CKPT v2 fnv1a=0000000000000000\nbad")
            .expect("corrupt");
        let rec = store.recover();
        assert_eq!(rec.checkpoint, Some((1, b"good-old".to_vec())));
        assert_eq!(rec.skipped.len(), 1, "{:?}", rec.skipped);
        assert!(rec.skipped[0].contains("checksum"), "{:?}", rec.skipped);

        // Truncate the survivor too: recovery degrades to None, no panic.
        let text = std::fs::read_to_string(store.path_for(1)).expect("read");
        std::fs::write(store.path_for(1), &text[..text.len() - 2]).expect("truncate");
        let rec = store.recover();
        assert_eq!(rec.checkpoint, None);
        assert_eq!(rec.skipped.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_recover_on_missing_dir_is_empty() {
        let store = CheckpointStore::new("/nonexistent/a3cs-ckpt-store", 2);
        let rec = store.recover();
        assert_eq!(rec.checkpoint, None);
        assert!(rec.skipped.is_empty());
        let rec = store.recover_checkpoint();
        assert_eq!(rec.checkpoint, None);
        assert!(rec.skipped.is_empty() && rec.fallbacks.is_empty());
    }

    #[test]
    fn store_recover_on_existing_empty_dir_is_empty() {
        let dir = test_dir("store_recover_on_existing_empty_dir_is_empty");
        let store = CheckpointStore::new(&dir, 2);
        assert_eq!(store.recover().checkpoint, None);
        assert_eq!(store.recover_checkpoint().checkpoint, None);
        assert_eq!(store.scrub(&mut StdIo), ScrubReport::default());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_rotation_with_keep_one_retains_only_newest() {
        let dir = test_dir("store_rotation_with_keep_one_retains_only_newest");
        // keep = 0 clamps to 1: rotation may never delete every checkpoint.
        let store = CheckpointStore::new(&dir, 0);
        for i in 1u64..=5 {
            store.write(i, format!("p{i}").as_bytes()).expect("write");
        }
        let files = store.candidates();
        assert_eq!(
            files.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![5],
            "keep=1 must retain exactly the newest checkpoint"
        );
        assert_eq!(store.recover().checkpoint, Some((5, b"p5".to_vec())));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn two_stores_sharing_a_parent_dir_stay_isolated() {
        let parent = test_dir("two_stores_sharing_a_parent_dir_stay_isolated");
        let a = CheckpointStore::new(parent.join("session-0000"), 2);
        let b = CheckpointStore::new(parent.join("session-0001"), 2);
        a.write(10, b"a-ten").expect("write");
        b.write(20, b"b-twenty").expect("write");
        b.write(21, b"b-twentyone").expect("write");
        // Each store sees only its own files; writes and pruning in one
        // never touch the sibling.
        assert_eq!(a.recover().checkpoint, Some((10, b"a-ten".to_vec())));
        assert_eq!(b.recover().checkpoint, Some((21, b"b-twentyone".to_vec())));
        assert_eq!(a.candidates().len(), 1);
        assert_eq!(b.candidates().len(), 2);
        std::fs::remove_dir_all(&parent).ok();
    }

    #[test]
    fn recover_orders_by_name_not_mtime() {
        let dir = test_dir("recover_orders_by_name_not_mtime");
        let store = CheckpointStore::new(&dir, 4);
        // Write the *higher* iteration first, so its mtime is older (or
        // tied, on coarse-granularity filesystems). Recovery must still
        // pick iteration 5: ordering is by parsed iteration in the file
        // name, never by mtime, for determinism across filesystems.
        store.write(5, b"newest-by-name").expect("write");
        store.write(3, b"newest-by-mtime").expect("write");
        assert_eq!(
            store.recover().checkpoint,
            Some((5, b"newest-by-name".to_vec()))
        );
        assert_eq!(
            store.recover_checkpoint().checkpoint,
            Some((5, b"newest-by-name".to_vec()))
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Build a base + delta chain of `payloads` at iterations 10, 11, …
    /// through the store API, returning the (base, deltas) payloads.
    fn write_chain(store: &CheckpointStore, payloads: &[&[u8]]) {
        use crate::frame::{encode_delta_frame, CheckpointCodec};
        let base = payloads[0];
        let chain_id = fnv1a64(base);
        store
            .write_base_frame(&mut StdIo, 10, &encode_base_frame(base, CheckpointCodec::RleZero))
            .expect("base");
        let mut parent = base.to_vec();
        for (i, &target) in payloads.iter().enumerate().skip(1) {
            let frame = encode_delta_frame(
                &parent,
                target,
                chain_id,
                i as u32,
                10 + i as u64 - 1,
                CheckpointCodec::RleZero,
            );
            store
                .write_delta_frame(&mut StdIo, 10 + i as u64, &frame)
                .expect("delta");
            parent = target.to_vec();
        }
    }

    #[test]
    fn chain_recovery_replays_base_and_deltas() {
        let dir = test_dir("chain_recovery_replays_base_and_deltas");
        let store = CheckpointStore::new(&dir, 2);
        write_chain(&store, &[b"state-a!", b"state-b!", b"state-c!"]);
        let rec = store.recover_checkpoint();
        assert_eq!(rec.checkpoint, Some((12, b"state-c!".to_vec())));
        assert!(rec.skipped.is_empty() && rec.fallbacks.is_empty(), "{rec:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_delta_falls_back_to_verified_prefix() {
        let dir = test_dir("corrupt_delta_falls_back_to_verified_prefix");
        let store = CheckpointStore::new(&dir, 2);
        write_chain(&store, &[b"state-a!", b"state-b!", b"state-c!"]);
        // Flip a byte in the middle delta: recovery must stop at the base.
        let path = store.delta_path_for(11);
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).expect("corrupt");
        let rec = store.recover_checkpoint();
        assert_eq!(rec.checkpoint, Some((10, b"state-a!".to_vec())));
        assert_eq!(rec.fallbacks.len(), 1, "{rec:?}");
        // Scrub quarantines the broken delta and everything downstream.
        let report = store.scrub(&mut StdIo);
        assert_eq!(report.quarantined.len(), 2, "{report:?}");
        assert!(store.delta_path_for(11).with_extension("delta.bad").exists()
            || !store.delta_path_for(11).exists());
        // After the scrub, recovery is clean (prefix only, no fallbacks).
        let rec = store.recover_checkpoint();
        assert_eq!(rec.checkpoint, Some((10, b"state-a!".to_vec())));
        assert!(rec.fallbacks.is_empty(), "{rec:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_base_quarantines_orphan_deltas() {
        let dir = test_dir("missing_base_quarantines_orphan_deltas");
        let store = CheckpointStore::new(&dir, 2);
        write_chain(&store, &[b"state-a!", b"state-b!"]);
        std::fs::remove_file(store.path_for(10)).expect("drop base");
        let rec = store.recover_checkpoint();
        assert_eq!(rec.checkpoint, None, "{rec:?}");
        let report = store.scrub(&mut StdIo);
        assert_eq!(report.quarantined.len(), 1, "{report:?}");
        assert!(report.quarantined[0].contains("orphan"), "{report:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scrub_quarantines_stray_tmp_files() {
        let dir = test_dir("scrub_quarantines_stray_tmp_files");
        let store = CheckpointStore::new(&dir, 2);
        store.write(1, b"good").expect("write");
        std::fs::write(dir.join("ckpt-000000000002.json.tmp"), b"torn").expect("tmp");
        let report = store.scrub(&mut StdIo);
        assert_eq!(report.quarantined.len(), 1, "{report:?}");
        assert!(report.quarantined[0].contains("torn rename"), "{report:?}");
        assert!(dir.join("ckpt-000000000002.json.tmp.bad").exists());
        assert_eq!(store.recover().checkpoint, Some((1, b"good".to_vec())));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_folds_long_chains_into_a_fresh_base() {
        use crate::frame::CheckpointCodec;
        let dir = test_dir("compact_folds_long_chains_into_a_fresh_base");
        let store = CheckpointStore::new(&dir, 4);
        write_chain(&store, &[b"state-a!", b"state-b!", b"state-c!", b"state-d!"]);
        let report = store
            .compact(&mut StdIo, 1, CheckpointCodec::RleZero)
            .expect("compact");
        assert_eq!(report.folded_chains, 1);
        assert_eq!(report.removed_frames, 3);
        // The tip is now a base of its own; recovery still lands on it.
        assert!(store.path_for(13).exists());
        assert!(store.delta_candidates().is_empty());
        let rec = store.recover_checkpoint();
        assert_eq!(rec.checkpoint, Some((13, b"state-d!".to_vec())));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pruning_removes_whole_chains_together() {
        use crate::frame::{encode_delta_frame, CheckpointCodec};
        let dir = test_dir("pruning_removes_whole_chains_together");
        let store = CheckpointStore::new(&dir, 1);
        write_chain(&store, &[b"old-base", b"old-tip!"]); // base 10, delta 11
        // A new base at 20 with keep=1 must remove base 10 *and* delta 11.
        store
            .write_base_frame(
                &mut StdIo,
                20,
                &encode_base_frame(b"new-base", CheckpointCodec::RleZero),
            )
            .expect("base");
        let frame = encode_delta_frame(
            b"new-base",
            b"new-tip!",
            fnv1a64(b"new-base"),
            1,
            20,
            CheckpointCodec::RleZero,
        );
        store.write_delta_frame(&mut StdIo, 21, &frame).expect("delta");
        assert_eq!(store.candidates().len(), 1);
        assert_eq!(store.delta_candidates().len(), 1);
        let rec = store.recover_checkpoint();
        assert_eq!(rec.checkpoint, Some((21, b"new-tip!".to_vec())));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let a = agent(4);
        let bigger = {
            let backbone = vanilla(3, 12, 12, 32, 5);
            ActorCritic::new(Box::new(backbone), 32, (3, 12, 12), 3, 5)
        };
        let err = Checkpoint::capture(&a).apply(&bigger).unwrap_err();
        assert!(matches!(err, LoadCheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Checkpoint::load(Path::new("/nonexistent/a3cs.json")).unwrap_err();
        assert!(matches!(err, LoadCheckpointError::Io(_)));
    }
}
