//! Shared learnable parameters.

use a3cs_tensor::{Tape, Tensor, Var};
use std::cell::RefCell;
use std::rc::Rc;

/// A named learnable parameter: a value tensor plus an accumulated-gradient
/// tensor, both shared (`Rc`) so that a module, its optimiser and any
/// recorded tape all observe the same storage.
///
/// Gradients accumulate across backward passes until [`Param::zero_grad`]
/// is called, matching the usual deep-learning optimiser contract.
///
/// # Example
///
/// ```
/// use a3cs_nn::Param;
/// use a3cs_tensor::{Tape, Tensor};
///
/// let p = Param::new("w", Tensor::scalar(3.0));
/// let tape = Tape::new();
/// let w = p.bind(&tape);
/// w.mul(&w).backward(); // d(w^2)/dw = 6
/// assert_eq!(p.grad().item(), 6.0);
/// p.zero_grad();
/// assert_eq!(p.grad().item(), 0.0);
/// ```
#[derive(Clone)]
pub struct Param {
    name: Rc<str>,
    value: Rc<RefCell<Tensor>>,
    grad: Rc<RefCell<Tensor>>,
}

impl std::fmt::Debug for Param {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Param({}, shape={:?})",
            self.name,
            self.value.borrow().shape()
        )
    }
}

impl Param {
    /// Create a parameter with an initial value.
    #[must_use]
    pub fn new(name: &str, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param {
            name: Rc::from(name),
            value: Rc::new(RefCell::new(value)),
            grad: Rc::new(RefCell::new(grad)),
        }
    }

    /// The parameter's diagnostic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of scalar elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.value.borrow().len()
    }

    /// `true` when the parameter holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shape of the value tensor (without cloning it).
    #[must_use]
    pub fn shape(&self) -> Vec<usize> {
        self.value.borrow().shape().to_vec()
    }

    /// Snapshot of the current value.
    #[must_use]
    pub fn value(&self) -> Tensor {
        self.value.borrow().clone()
    }

    /// Replace the current value.
    ///
    /// # Panics
    ///
    /// Panics if `value` changes the parameter's shape.
    pub fn set_value(&self, value: Tensor) {
        let mut v = self.value.borrow_mut();
        assert_eq!(
            v.shape(),
            value.shape(),
            "parameter {} cannot change shape",
            self.name
        );
        *v = value;
    }

    /// Apply an in-place update to the value (used by optimisers).
    pub fn update(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.value.borrow_mut());
    }

    /// Snapshot of the accumulated gradient.
    #[must_use]
    pub fn grad(&self) -> Tensor {
        self.grad.borrow().clone()
    }

    /// Replace the accumulated gradient (used by gradient clipping).
    ///
    /// # Panics
    ///
    /// Panics if `grad` does not match the parameter's shape.
    pub fn set_grad(&self, grad: Tensor) {
        let mut g = self.grad.borrow_mut();
        assert_eq!(
            g.shape(),
            grad.shape(),
            "parameter {} gradient cannot change shape",
            self.name
        );
        *g = grad;
    }

    /// Add `grad` into the accumulated gradient (used by manual gradient
    /// injection, e.g. straight-through estimators in the co-search loop).
    ///
    /// # Panics
    ///
    /// Panics if `grad` does not match the parameter's shape.
    pub fn accumulate_grad(&self, grad: &Tensor) {
        let mut g = self.grad.borrow_mut();
        assert_eq!(
            g.shape(),
            grad.shape(),
            "parameter {} gradient cannot change shape",
            self.name
        );
        g.add_assign(grad);
    }

    /// Reset the accumulated gradient to zero.
    pub fn zero_grad(&self) {
        let mut g = self.grad.borrow_mut();
        let shape = g.shape().to_vec();
        *g = Tensor::zeros(&shape);
    }

    /// Record this parameter on `tape`, returning a [`Var`] whose backward
    /// pass accumulates into this parameter's gradient storage.
    #[must_use]
    pub fn bind(&self, tape: &Tape) -> Var {
        tape.param(self.value(), Rc::clone(&self.grad))
    }

    /// `true` if `other` shares this parameter's storage.
    #[must_use]
    pub fn same_storage(&self, other: &Param) -> bool {
        Rc::ptr_eq(&self.value, &other.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let p = Param::new("p", Tensor::scalar(1.0));
        let q = p.clone();
        q.set_value(Tensor::scalar(2.0));
        assert_eq!(p.value().item(), 2.0);
        assert!(p.same_storage(&q));
    }

    #[test]
    fn distinct_params_do_not_share() {
        let p = Param::new("p", Tensor::scalar(1.0));
        let q = Param::new("p", Tensor::scalar(1.0));
        assert!(!p.same_storage(&q));
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let p = Param::new("w", Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        for _ in 0..3 {
            let tape = Tape::new();
            let w = p.bind(&tape);
            w.sum().backward();
        }
        assert_eq!(p.grad().data(), &[3.0, 3.0]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "cannot change shape")]
    fn set_value_rejects_shape_change() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        p.set_value(Tensor::zeros(&[3]));
    }

    #[test]
    fn set_grad_replaces_and_accumulate_adds() {
        let p = Param::new("w", Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        p.set_grad(Tensor::from_vec(vec![5.0, 6.0], &[2]).unwrap());
        assert_eq!(p.grad().data(), &[5.0, 6.0]);
        p.accumulate_grad(&Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap());
        assert_eq!(p.grad().data(), &[6.0, 7.0]);
        // Optimiser-visible: the next bind/backward accumulates on top.
        let tape = Tape::new();
        p.bind(&tape).sum().backward();
        assert_eq!(p.grad().data(), &[7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "gradient cannot change shape")]
    fn set_grad_rejects_shape_change() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        p.set_grad(Tensor::zeros(&[3]));
    }

    #[test]
    fn update_applies_in_place() {
        let p = Param::new("w", Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        p.update(|t| *t = t.scale(10.0));
        assert_eq!(p.value().data(), &[10.0, 20.0]);
    }
}
