//! Table III reproduction: the full A3C-S pipeline (co-search → derive →
//! retrain with AC-distillation → DAS accelerator) against the FA3C
//! FPGA DRL system on the paper's six games.
//!
//! FA3C's numbers are quoted from its paper (score / a fixed 260 FPS),
//! exactly as the A3C-S paper does ("directly obtained from the reported
//! data"). The claims to reproduce: A3C-S achieves multi-× better FPS
//! with higher scores.
//!
//! ```sh
//! A3CS_SCALE=short cargo run --release -p a3cs-bench --bin table3_vs_fa3c
//! ```

use a3cs_bench::paper_data::TABLE3;
use a3cs_bench::report::{fmt, or_exit, print_table, save_json, status};
use a3cs_bench::scale::Scale;
use a3cs_bench::setup::{
    agent_with, cosearch_config, factory_for, game_info, train_teacher,
};
use a3cs_core::CoSearch;
use a3cs_drl::{DistillConfig, Trainer};
use a3cs_nas::derive_backbone;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    game: &'static str,
    fa3c_score: f64,
    fa3c_fps: f64,
    a3cs_score: f32,
    a3cs_fps: f64,
    fps_speedup: f64,
}

fn main() {
    let scale = or_exit(Scale::try_from_env());
    status(format!(
        "Table III: A3C-S (full pipeline) vs FA3C reported numbers (scale: {})\n",
        scale.name
    ));

    let ac = DistillConfig::ac_distillation();
    let mut rows = Vec::new();
    let mut dumps = Vec::new();
    for (game, (fa3c_score, fa3c_fps), _paper_a3cs) in TABLE3 {
        let game: &'static str = game;
        let info = or_exit(game_info(game));
        let factory = or_exit(factory_for(game));
        let teacher = or_exit(train_teacher(game, &scale, 7000));

        let cfg = or_exit(cosearch_config(game, &scale));
        let mut search = or_exit(CoSearch::try_new(cfg, 71));
        let result = search.run(&factory, Some(&teacher));
        let derived = derive_backbone(search.supernet().config(), &result.arch, 72);
        let agent = agent_with(derived, &info, 73);
        let retrain_cfg = a3cs_bench::setup::trainer_config(&scale, scale.train_steps);
        let curve = Trainer::new(retrain_cfg, 74).train(&agent, &factory, Some((&ac, &teacher)));

        let score = curve.best_score();
        let fps = result.report.fps;
        let speedup = fps / fa3c_fps;
        status(format!(
            "{game:<14} FA3C {fa3c_score:>9.1}/{fa3c_fps:.0}fps  A3C-S {score:>9.1}/{fps:.1}fps  ({speedup:.1}x FPS)"
        ));
        rows.push(vec![
            game.to_owned(),
            format!("{} / {}", fmt(*fa3c_score), fmt(*fa3c_fps)),
            format!("{} / {}", fmt(f64::from(score)), fmt(fps)),
            format!("{speedup:.1}x"),
        ]);
        dumps.push(Row {
            game,
            fa3c_score: *fa3c_score,
            fa3c_fps: *fa3c_fps,
            a3cs_score: score,
            a3cs_fps: fps,
            fps_speedup: speedup,
        });
    }

    status("\nmeasured (score / FPS):\n");
    print_table(&["game", "FA3C (reported)", "A3C-S (ours)", "FPS speedup"], &rows);

    status("\npaper reference: A3C-S reported 2.1x–6.1x FPS over FA3C with higher scores.");
    save_json("table3_vs_fa3c", &dumps);
}
