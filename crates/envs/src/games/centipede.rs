//! Centipede: a segmented chain snakes down through a mushroom field.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::games::clamp;
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;
const PLAYER_ROW: isize = GRID as isize - 1;
const SEGMENTS: usize = 6;

/// Centipede stand-in: a multi-segment centipede marches horizontally,
/// dropping a row and reversing at walls and mushrooms. Shooting a
/// segment (`+1`, `+5` for the head) leaves a mushroom behind; the
/// episode ends when the centipede reaches the player's row. A cleared
/// centipede respawns (with more mushrooms making descent faster).
///
/// Actions: `0` no-op, `1` left, `2` right, `3` fire.
#[derive(Debug, Clone)]
pub struct Centipede {
    rng: StdRng,
    player: isize,
    mushrooms: [[bool; GRID]; GRID],
    /// Head first; each segment is a grid cell.
    body: Vec<(isize, isize)>,
    dir: isize,
    shot: Option<(isize, isize)>,
    clock: u32,
    done: bool,
}

impl Centipede {
    /// Create a seeded Centipede game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Centipede {
            rng: StdRng::seed_from_u64(seed),
            player: GRID as isize / 2,
            mushrooms: [[false; GRID]; GRID],
            body: Vec::new(),
            dir: 1,
            shot: None,
            clock: 0,
            done: true,
        }
    }

    fn spawn_centipede(&mut self) {
        self.body = (0..SEGMENTS as isize).map(|i| (0, i)).collect();
        self.dir = 1;
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(4, GRID, GRID);
        canvas.paint(0, PLAYER_ROW, self.player, 1.0);
        for (i, &(r, c)) in self.body.iter().enumerate() {
            canvas.paint(1, r, c, if i == 0 { 1.0 } else { 0.6 });
        }
        for (r, row) in self.mushrooms.iter().enumerate() {
            for (c, &m) in row.iter().enumerate() {
                if m {
                    canvas.paint(2, r as isize, c as isize, 1.0);
                }
            }
        }
        if let Some((r, c)) = self.shot {
            canvas.paint(3, r, c, 1.0);
        }
        canvas.into_observation()
    }

    fn mushroom_at(&self, r: isize, c: isize) -> bool {
        (0..GRID as isize).contains(&r)
            && (0..GRID as isize).contains(&c)
            && self.mushrooms[r as usize][c as usize]
    }

    fn advance_centipede(&mut self) {
        if self.body.is_empty() {
            return;
        }
        let (hr, hc) = self.body[0];
        let next_c = hc + self.dir;
        let blocked =
            next_c < 0 || next_c >= GRID as isize || self.mushroom_at(hr, next_c);
        let new_head = if blocked {
            self.dir = -self.dir;
            (hr + 1, hc)
        } else {
            (hr, next_c)
        };
        // Segments follow the head like a snake.
        self.body.insert(0, new_head);
        self.body.pop();
    }
}

impl Environment for Centipede {
    fn name(&self) -> &str {
        "Centipede"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (4, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        4
    }

    fn reset(&mut self) -> Vec<f32> {
        self.player = GRID as isize / 2;
        self.mushrooms = [[false; GRID]; GRID];
        // Sparse seeded mushroom field in the upper two thirds.
        for _ in 0..10 {
            let r = self.rng.gen_range(1..GRID - 3);
            let c = self.rng.gen_range(0..GRID);
            self.mushrooms[r][c] = true;
        }
        self.shot = None;
        self.clock = 0;
        self.done = false;
        self.spawn_centipede();
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        self.clock += 1;
        match action {
            1 => self.player = clamp(self.player - 1, 0, GRID as isize - 1),
            2 => self.player = clamp(self.player + 1, 0, GRID as isize - 1),
            3 => {
                if self.shot.is_none() {
                    self.shot = Some((PLAYER_ROW - 1, self.player));
                }
            }
            _ => {}
        }

        let mut reward = 0.0f32;

        // Shot travels up 2 cells/step; hits segments or mushrooms.
        if let Some((mut r, c)) = self.shot.take() {
            let mut live = true;
            for _ in 0..2 {
                if r < 0 {
                    live = false;
                    break;
                }
                if let Some(i) = self.body.iter().position(|&s| s == (r, c)) {
                    reward += if i == 0 { 5.0 } else { 1.0 };
                    self.body.remove(i);
                    // A mushroom grows where the segment died.
                    self.mushrooms[r as usize][c as usize] = true;
                    live = false;
                    break;
                }
                if self.mushroom_at(r, c) {
                    self.mushrooms[r as usize][c as usize] = false;
                    live = false;
                    break;
                }
                r -= 1;
            }
            if live && r >= 0 {
                self.shot = Some((r, c));
            }
        }

        // Centipede marches every other step.
        if self.clock % 2 == 0 {
            self.advance_centipede();
        }

        if self.body.is_empty() {
            reward += 10.0;
            self.spawn_centipede();
        }

        if self.body.iter().any(|&(r, _)| r >= PLAYER_ROW) {
            self.done = true;
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("Centipede");
        w.rng(&self.rng);
        w.isize(self.player);
        for row in &self.mushrooms {
            for &cell in row {
                w.bool(cell);
            }
        }
        w.usize(self.body.len());
        for item in &self.body {
            w.isize(item.0);
            w.isize(item.1);
        }
        w.isize(self.dir);
        w.bool(self.shot.is_some());
        if let Some(item) = &self.shot {
            w.isize(item.0);
            w.isize(item.1);
        }
        w.u32(self.clock);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "Centipede")?;
        self.rng = r.rng()?;
        self.player = r.isize()?;
        for row in &mut self.mushrooms {
            for cell in row.iter_mut() {
                *cell = r.bool()?;
            }
        }
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push((r.isize()?, r.isize()?));
        }
        self.body = items;
        self.dir = r.isize()?;
        self.shot = if r.bool()? {
            Some((r.isize()?, r.isize()?))
        } else {
            None
        };
        self.clock = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(Centipede::new(131), Centipede::new(131), 300);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = Centipede::new(1);
        let total = random_rollout(&mut env, 1000, 17);
        assert!(total >= 0.0);
    }

    #[test]
    fn centipede_descends_at_walls() {
        let mut env = Centipede::new(2);
        let _ = env.reset();
        let start_row = env.body[0].0;
        for _ in 0..GRID * 4 {
            env.advance_centipede();
        }
        assert!(env.body[0].0 > start_row, "head must have descended");
    }

    #[test]
    fn shooting_head_pays_bonus_and_grows_mushroom() {
        let mut env = Centipede::new(3);
        let _ = env.reset();
        let (hr, hc) = env.body[0];
        env.shot = Some((hr, hc));
        let before = env.body.len();
        let out = env.step(0);
        assert_eq!(out.reward, 5.0);
        assert_eq!(env.body.len(), before - 1);
        assert!(env.mushrooms[hr as usize][hc as usize]);
    }

    #[test]
    fn idle_player_eventually_loses() {
        let mut env = Centipede::new(4);
        let _ = env.reset();
        let mut steps = 0;
        loop {
            steps += 1;
            if env.step(0).done {
                break;
            }
            assert!(steps < 3000);
        }
    }
}
