//! Supervised execution: injected worker panics, environment panics and
//! phase stalls must be contained *in-process* — no checkpoint-restart —
//! and the supervised run must finish bit-identical to a fault-free one,
//! including after the degradation ladder steps the thread count down.
//! Retry exhaustion must surface as a typed error, never a panic.
//!
//! Robustness events mirror into any live telemetry session, so every
//! test serializes on [`lock`].

use a3cs::core::{
    CoSearch, CoSearchConfig, CoSearchResult, FaultPlan, RobustnessEventKind, SearchError,
};
use a3cs::envs::{Breakout, Environment};
use std::sync::{Mutex, MutexGuard, PoisonError};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn factory(seed: u64) -> Box<dyn Environment> {
    Box::new(Breakout::new(seed))
}

fn cosearch(cfg: CoSearchConfig, seed: u64) -> CoSearch {
    CoSearch::try_new(cfg, seed).expect("test config passes pre-flight")
}

fn tiny_config(total_steps: u64) -> CoSearchConfig {
    let mut cfg = CoSearchConfig::tiny(3, 12, 12, 3);
    cfg.total_steps = total_steps;
    cfg.eval_every = 100;
    cfg.eval_episodes = 2;
    cfg.eval_max_steps = 40;
    cfg.das_final_iters = 50;
    cfg
}

fn curve_bits(curve: &[(u64, f32)]) -> Vec<(u64, u32)> {
    curve.iter().map(|&(s, v)| (s, v.to_bits())).collect()
}

fn assert_results_bit_identical(a: &CoSearchResult, b: &CoSearchResult) {
    assert_eq!(format!("{:?}", a.arch), format!("{:?}", b.arch));
    assert_eq!(
        format!("{:?}", a.accelerator),
        format!("{:?}", b.accelerator)
    );
    assert_eq!(curve_bits(&a.score_curve), curve_bits(&b.score_curve));
    assert_eq!(
        curve_bits(&a.alpha_entropy_curve),
        curve_bits(&b.alpha_entropy_curve)
    );
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.report.fps.to_bits(), b.report.fps.to_bits());
    assert_eq!(a.report.dsp_used, b.report.dsp_used);
}

#[test]
fn worker_panic_is_quarantined_without_a_phase_retry() {
    let _guard = lock();
    let reference = cosearch(tiny_config(300), 13).run(&factory, None);
    assert!(reference.robustness.is_empty());

    // Arm a worker panic during the update phase at iteration 5. The pool
    // quarantines the lane, re-executes its chunk inline, respawns the
    // worker — the phase itself never observes the fault.
    let mut cfg = tiny_config(300);
    cfg.threads = Some(2);
    cfg.fault.plan = FaultPlan::none().worker_panic_at("update", 5);
    let result = cosearch(cfg, 13)
        .run_guarded(&factory, None)
        .expect("contained worker panic must not fail the run");

    let log = &result.robustness;
    assert_eq!(log.count(RobustnessEventKind::FaultInjected), 1);
    assert!(
        log.count(RobustnessEventKind::LaneQuarantined) >= 1,
        "panicking lane must be quarantined: {:?}",
        log.events
    );
    assert!(
        log.count(RobustnessEventKind::WorkerRespawned) >= 1,
        "quarantined lane must be respawned: {:?}",
        log.events
    );
    // Containment, not retry: the supervisor never saw a phase failure,
    // and no checkpoint-restart happened.
    assert_eq!(log.count(RobustnessEventKind::PhaseFailed), 0);
    assert_eq!(log.count(RobustnessEventKind::Resumed), 0);
    assert_results_bit_identical(&reference, &result);
}

#[test]
fn env_panic_retries_the_rollout_phase_bit_identically() {
    let _guard = lock();
    let reference = cosearch(tiny_config(300), 17).run(&factory, None);

    // Environment lane 1 panics mid-collect at iteration 4. The phase
    // supervisor catches the unwind, restores the phase-entry snapshot and
    // replays the rollout — the injection is one-shot, so the replay is
    // clean and the trajectory is unchanged.
    let mut cfg = tiny_config(300);
    cfg.fault.plan = FaultPlan::none().env_panic_at(1, 4);
    let result = cosearch(cfg, 17)
        .run_guarded(&factory, None)
        .expect("retried env panic must not fail the run");

    let log = &result.robustness;
    assert_eq!(log.count(RobustnessEventKind::FaultInjected), 1);
    assert_eq!(
        log.count(RobustnessEventKind::PhaseFailed),
        1,
        "events: {:?}",
        log.events
    );
    assert_eq!(log.count(RobustnessEventKind::PhaseRetried), 1);
    assert_eq!(log.count(RobustnessEventKind::RetriesExhausted), 0);
    assert_eq!(log.count(RobustnessEventKind::Resumed), 0);
    assert_results_bit_identical(&reference, &result);
}

#[test]
fn stall_watchdog_flags_overrun_without_perturbing_the_run() {
    let _guard = lock();
    let reference = cosearch(tiny_config(300), 19).run(&factory, None);

    // Stall the rollout at iteration 5 for 300 ms with an aggressive soft
    // deadline (1× the EWMA of past rollouts, 50 ms floor). The watchdog
    // observes the overrun — it never interrupts the phase — so the run
    // stays bit-identical.
    let mut cfg = tiny_config(300);
    cfg.fault.supervision = true;
    cfg.fault.stall_multiplier = 1;
    cfg.fault.stall_min_ms = 50;
    cfg.fault.plan = FaultPlan::none().stall_at("rollout", 5, 300);

    let session = telemetry::Session::start();
    let result = cosearch(cfg, 19)
        .run_guarded(&factory, None)
        .expect("stalled run still completes");
    let trace = session.finish();

    let log = &result.robustness;
    assert_eq!(log.count(RobustnessEventKind::FaultInjected), 1);
    assert!(
        log.count(RobustnessEventKind::PhaseStalled) >= 1,
        "watchdog must flag the stalled rollout: {:?}",
        log.events
    );
    assert!(
        trace
            .instants()
            .any(|i| i.name == "watchdog-deadline-exceeded"),
        "the watchdog fires a live instant the moment the deadline passes"
    );
    assert_results_bit_identical(&reference, &result);
}

#[test]
fn ladder_steps_down_after_repeated_lane_faults_and_stays_bit_identical() {
    let _guard = lock();
    let reference = cosearch(tiny_config(300), 23).run(&factory, None);

    // With a fault threshold of 1, the very first quarantined lane trips
    // the degradation ladder: the supervised pool steps 2 → 1 threads and
    // the rest of the search runs serially. Chunk schedules are fixed, so
    // the result is still bit-identical.
    let mut cfg = tiny_config(300);
    cfg.threads = Some(2);
    cfg.fault.ladder_fault_threshold = 1;
    cfg.fault.plan = FaultPlan::none().worker_panic_at("update", 3);
    let result = cosearch(cfg, 23)
        .run_guarded(&factory, None)
        .expect("ladder-stepped run still completes");

    let log = &result.robustness;
    assert!(log.count(RobustnessEventKind::LaneQuarantined) >= 1);
    assert_eq!(
        log.count(RobustnessEventKind::LadderStepped),
        1,
        "events: {:?}",
        log.events
    );
    let step = log
        .events
        .iter()
        .find(|e| e.kind == RobustnessEventKind::LadderStepped)
        .expect("ladder event present");
    assert!(
        step.detail.contains("stepped down to 1"),
        "2-thread pool halves to serial: {:?}",
        step.detail
    );
    assert_results_bit_identical(&reference, &result);
}

#[test]
fn retry_exhaustion_surfaces_as_a_typed_abort_with_attempt_history() {
    let _guard = lock();
    // Two scheduled env panics at the same iteration with a retry budget
    // of one: the initial attempt and the single retry both panic, and the
    // supervisor gives up — as an error value, never a propagated panic.
    let mut cfg = tiny_config(300);
    cfg.fault.max_phase_retries = 1;
    cfg.fault.plan = FaultPlan::none().env_panic_at(1, 4).env_panic_at(1, 4);
    let err = cosearch(cfg, 29)
        .run_guarded(&factory, None)
        .expect_err("exhausted retry budget must abort the run");

    match err {
        SearchError::RunAbort {
            phase,
            iteration,
            attempts,
            log,
        } => {
            assert_eq!(phase, "rollout");
            assert_eq!(iteration, 4);
            assert_eq!(attempts, 2);
            // Full attempt history: both failures, the one retry that was
            // granted, and the exhaustion verdict.
            assert_eq!(
                log.count(RobustnessEventKind::PhaseFailed),
                2,
                "events: {:?}",
                log.events
            );
            assert_eq!(log.count(RobustnessEventKind::PhaseRetried), 1);
            assert_eq!(log.count(RobustnessEventKind::RetriesExhausted), 1);
        }
        other => panic!("expected RunAbort, got {other:?}"),
    }
}
