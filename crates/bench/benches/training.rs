//! End-to-end training-step benches: one A2C update (rollout + loss +
//! optimiser) for the backbone families, and the overhead of the
//! AC-distillation terms (a design-choice ablation: the stability gain of
//! Eq. 10–11 costs one extra teacher forward per update).

use a3cs_drl::{
    a2c_losses, A2cConfig, ActorCritic, DistillConfig, Optimizer, RmsProp, RolloutRunner,
};
use a3cs_envs::{Breakout, Environment};
use a3cs_nn::{resnet, vanilla};
use a3cs_tensor::Tape;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn factory(seed: u64) -> Box<dyn Environment> {
    Box::new(Breakout::new(seed))
}

fn agent(kind: &str, seed: u64) -> ActorCritic {
    let backbone: Box<dyn a3cs_nn::Module> = match kind {
        "vanilla" => Box::new(vanilla(3, 12, 12, 32, seed)),
        "resnet14" => Box::new(resnet(14, 3, 12, 12, 8, 32, seed)),
        other => panic!("unknown backbone {other}"),
    };
    ActorCritic::new(backbone, 32, (3, 12, 12), 3, seed)
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2c_update");
    for kind in ["vanilla", "resnet14"] {
        let a = agent(kind, 1);
        let mut runner = RolloutRunner::new(&factory, 4, 2);
        let params = a.params();
        let mut opt = RmsProp::new(1e-3);
        group.bench_function(kind, |bench| {
            bench.iter(|| {
                let rollout = runner.collect(&a, 5);
                let tape = Tape::new();
                a.zero_grad();
                let (loss, _) = a2c_losses(
                    &tape,
                    &a,
                    &rollout,
                    &A2cConfig::default(),
                    &DistillConfig::default(),
                    None,
                );
                loss.backward();
                opt.step(&params);
                black_box(());
            });
        });
    }
    group.finish();
}

fn bench_distillation_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("distillation_overhead");
    let student = agent("vanilla", 3);
    let teacher = agent("resnet14", 4);
    let mut runner = RolloutRunner::new(&factory, 4, 5);
    for (name, cfg, use_teacher) in [
        ("none", DistillConfig::default(), false),
        ("policy_only", DistillConfig::policy_only(), true),
        ("ac", DistillConfig::ac_distillation(), true),
    ] {
        group.bench_function(name, |bench| {
            bench.iter(|| {
                let rollout = runner.collect(&student, 5);
                let tape = Tape::new();
                student.zero_grad();
                let (loss, _) = a2c_losses(
                    &tape,
                    &student,
                    &rollout,
                    &A2cConfig::default(),
                    &cfg,
                    use_teacher.then_some(&teacher),
                );
                loss.backward();
                black_box(());
            });
        });
    }
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_update, bench_distillation_overhead
}
criterion_main!(benches);
