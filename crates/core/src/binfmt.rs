//! Length-prefixed binary framing for [`SearchCheckpoint`].
//!
//! JSON is the default checkpoint payload (human-inspectable, stable), but
//! the bit-safe encoding it forces — every `f32` as a `u32`, every 64-bit
//! word as a `(hi, lo)` pair — makes large tensor dumps both slow and ~4×
//! their natural size. `CheckpointFormat::Binary` instead frames the same
//! reprs as little-endian words behind an 8-byte magic, so the two formats
//! are self-describing: a payload starting with [`MAGIC`] is binary,
//! anything else is parsed as JSON (see [`SearchCheckpoint::decode`]).
//!
//! The codec is hand-rolled (no new dependencies) and total: every read is
//! bounds-checked and surfaces [`CheckpointError::Parse`], never a panic.
//! Float bits travel verbatim, so NaN payloads and negative zeros survive
//! exactly — the same contract the JSON bit-packing provides.

use crate::checkpoint::{CheckpointError, SearchCheckpoint, TensorRepr};
use crate::checkpoint::{
    CurvePointRepr, DasStateRepr, EnvStateRepr, OptimStateRepr, RunnerStateRepr, SupernetStateRepr,
};
use crate::robustness::{RobustnessEvent, RobustnessEventKind};

/// Leading bytes of every binary checkpoint payload. The trailing digit is
/// the framing version; bump it on any layout change. v2 moved the growing
/// score/entropy curves and the robustness event log to the *tail* of the
/// frame: everything that grows per iteration now sits after the fixed-size
/// tensor region, so consecutive checkpoints stay word-aligned and their
/// XOR delta (the durability layer's diff primitive) is sparse instead of
/// shifted garbage.
pub(crate) const MAGIC: &[u8; 8] = b"A3CSBIN2";

/// `true` if `payload` claims to be a binary checkpoint frame.
#[must_use]
pub(crate) fn is_binary(payload: &[u8]) -> bool {
    payload.starts_with(MAGIC)
}

// --- writer --------------------------------------------------------------

#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn pair(&mut self, (hi, lo): (u32, u32)) {
        self.u32(hi);
        self.u32(lo);
    }

    /// Length prefix for any repeated element. `u32` bounds a single field
    /// at 4 billion elements — far above any real checkpoint.
    fn len(&mut self, n: usize) {
        debug_assert!(
            u32::try_from(n).is_ok(),
            "field length {n} overflows the u32 prefix"
        );
        // a3cs::allow(lossy-cast): guarded above — a field with more than
        // u32::MAX elements cannot exist in memory.
        self.u32(n as u32);
    }

    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn u32s(&mut self, xs: &[u32]) {
        self.len(xs.len());
        for &x in xs {
            self.u32(x);
        }
    }

    fn pairs(&mut self, xs: &[(u32, u32)]) {
        self.len(xs.len());
        for &x in xs {
            self.pair(x);
        }
    }

    fn usizes(&mut self, xs: &[usize]) {
        self.len(xs.len());
        for &x in xs {
            // a3cs::allow(lossy-cast): usize→u64 widens losslessly on
            // every supported platform (usize ≤ 64 bits).
            self.u64(x as u64);
        }
    }
}

// --- reader --------------------------------------------------------------

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn truncated(what: &str) -> CheckpointError {
    CheckpointError::Parse(format!("binary checkpoint truncated reading {what}"))
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| truncated(what))?;
        let bytes = &self.buf[self.pos..end];
        self.pos = end;
        Ok(bytes)
    }

    fn u8(&mut self, what: &str) -> Result<u8, CheckpointError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, CheckpointError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn pair(&mut self, what: &str) -> Result<(u32, u32), CheckpointError> {
        Ok((self.u32(what)?, self.u32(what)?))
    }

    /// Read a length prefix, sanity-bounded by the bytes actually left (an
    /// element needs ≥ 1 byte, so a longer claim is corrupt, not huge).
    fn len(&mut self, what: &str) -> Result<usize, CheckpointError> {
        // a3cs::allow(lossy-cast): u32→usize widens losslessly.
        let n = self.u32(what)? as usize;
        if n > self.buf.len() - self.pos {
            return Err(CheckpointError::Parse(format!(
                "binary checkpoint claims {n} elements of {what} with only {} bytes left",
                self.buf.len() - self.pos
            )));
        }
        Ok(n)
    }

    fn str(&mut self, what: &str) -> Result<String, CheckpointError> {
        let n = self.len(what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Parse(format!("binary checkpoint: {what} is not UTF-8")))
    }

    fn u32s(&mut self, what: &str) -> Result<Vec<u32>, CheckpointError> {
        let n = self.len(what)?;
        (0..n).map(|_| self.u32(what)).collect()
    }

    fn pairs(&mut self, what: &str) -> Result<Vec<(u32, u32)>, CheckpointError> {
        let n = self.len(what)?;
        (0..n).map(|_| self.pair(what)).collect()
    }

    fn usizes(&mut self, what: &str) -> Result<Vec<usize>, CheckpointError> {
        let n = self.len(what)?;
        // a3cs::allow(lossy-cast): round-trips a value `usizes` wrote from
        // a live usize; 64-bit targets make the cast the exact inverse.
        (0..n).map(|_| Ok(self.u64(what)? as usize)).collect()
    }
}

// --- per-repr framing ----------------------------------------------------

fn put_tensor(w: &mut Writer, t: &TensorRepr) {
    w.str(&t.name);
    w.usizes(&t.shape);
    w.u32s(&t.bits);
}

fn get_tensor(r: &mut Reader<'_>) -> Result<TensorRepr, CheckpointError> {
    Ok(TensorRepr {
        name: r.str("tensor name")?,
        shape: r.usizes("tensor shape")?,
        bits: r.u32s("tensor bits")?,
    })
}

fn put_tensors(w: &mut Writer, ts: &[TensorRepr]) {
    w.len(ts.len());
    for t in ts {
        put_tensor(w, t);
    }
}

fn get_tensors(r: &mut Reader<'_>) -> Result<Vec<TensorRepr>, CheckpointError> {
    let n = r.len("tensor list")?;
    (0..n).map(|_| get_tensor(r)).collect()
}

fn put_env(w: &mut Writer, e: &EnvStateRepr) {
    w.str(&e.tag);
    w.pairs(&e.ints);
    w.u32s(&e.floats);
    w.len(e.inner.len());
    for inner in &e.inner {
        put_env(w, inner);
    }
}

fn get_env(r: &mut Reader<'_>) -> Result<EnvStateRepr, CheckpointError> {
    let tag = r.str("env tag")?;
    let ints = r.pairs("env ints")?;
    let floats = r.u32s("env floats")?;
    let n = r.len("env inner list")?;
    let inner = (0..n).map(|_| get_env(r)).collect::<Result<_, _>>()?;
    Ok(EnvStateRepr {
        tag,
        ints,
        floats,
        inner,
    })
}

fn put_runner(w: &mut Writer, s: &RunnerStateRepr) {
    w.len(s.envs.len());
    for e in &s.envs {
        put_env(w, e);
    }
    w.len(s.lane_rngs.len());
    for rng in &s.lane_rngs {
        w.pairs(rng);
    }
    w.len(s.current_obs.len());
    for obs in &s.current_obs {
        w.u32s(obs);
    }
}

fn get_runner(r: &mut Reader<'_>) -> Result<RunnerStateRepr, CheckpointError> {
    let n_envs = r.len("runner envs")?;
    let envs = (0..n_envs).map(|_| get_env(r)).collect::<Result<_, _>>()?;
    let n_rngs = r.len("runner lane rngs")?;
    let lane_rngs = (0..n_rngs)
        .map(|_| r.pairs("lane rng words"))
        .collect::<Result<_, _>>()?;
    let n_obs = r.len("runner observations")?;
    let current_obs = (0..n_obs)
        .map(|_| r.u32s("observation bits"))
        .collect::<Result<_, _>>()?;
    Ok(RunnerStateRepr {
        envs,
        lane_rngs,
        current_obs,
    })
}

fn put_optim(w: &mut Writer, o: &OptimStateRepr) {
    w.str(&o.kind);
    w.u32(o.lr);
    w.len(o.key_names.len());
    for name in &o.key_names {
        w.str(name);
    }
    w.len(o.key_shapes.len());
    for shape in &o.key_shapes {
        w.usizes(shape);
    }
    w.len(o.slots.len());
    for slot in &o.slots {
        w.len(slot.len());
        for buf in slot {
            w.u32s(buf);
        }
    }
    w.pairs(&o.scalars);
}

fn get_optim(r: &mut Reader<'_>) -> Result<OptimStateRepr, CheckpointError> {
    let kind = r.str("optimizer kind")?;
    let lr = r.u32("optimizer lr")?;
    let n_names = r.len("optimizer key names")?;
    let key_names = (0..n_names)
        .map(|_| r.str("optimizer key name"))
        .collect::<Result<_, _>>()?;
    let n_shapes = r.len("optimizer key shapes")?;
    let key_shapes = (0..n_shapes)
        .map(|_| r.usizes("optimizer key shape"))
        .collect::<Result<_, _>>()?;
    let n_slots = r.len("optimizer slots")?;
    let slots = (0..n_slots)
        .map(|_| {
            let n_bufs = r.len("optimizer slot buffers")?;
            (0..n_bufs)
                .map(|_| r.u32s("optimizer slot buffer"))
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<_, _>>()?;
    let scalars = r.pairs("optimizer scalars")?;
    Ok(OptimStateRepr {
        kind,
        lr,
        key_names,
        key_shapes,
        slots,
        scalars,
    })
}

fn put_das(w: &mut Writer, d: &DasStateRepr) {
    w.len(d.logits.len());
    for row in &d.logits {
        w.pairs(row);
    }
    w.pairs(&d.rng);
    match d.baseline {
        Some(p) => {
            w.u8(1);
            w.pair(p);
        }
        None => w.u8(0),
    }
    w.pair(d.temperature);
}

fn get_das(r: &mut Reader<'_>) -> Result<DasStateRepr, CheckpointError> {
    let n_rows = r.len("das logits")?;
    let logits = (0..n_rows)
        .map(|_| r.pairs("das logit row"))
        .collect::<Result<_, _>>()?;
    let rng = r.pairs("das rng")?;
    let baseline = match r.u8("das baseline flag")? {
        0 => None,
        1 => Some(r.pair("das baseline")?),
        other => {
            return Err(CheckpointError::Parse(format!(
                "binary checkpoint: das baseline flag must be 0 or 1, got {other}"
            )))
        }
    };
    let temperature = r.pair("das temperature")?;
    Ok(DasStateRepr {
        logits,
        rng,
        baseline,
        temperature,
    })
}

fn put_supernet(w: &mut Writer, s: &SupernetStateRepr) {
    w.len(s.alpha.len());
    for row in &s.alpha {
        w.u32s(row);
    }
    w.pairs(&s.gumbel_rng);
    w.u64(s.step);
}

fn get_supernet(r: &mut Reader<'_>) -> Result<SupernetStateRepr, CheckpointError> {
    let n_rows = r.len("alpha rows")?;
    let alpha = (0..n_rows)
        .map(|_| r.u32s("alpha row"))
        .collect::<Result<_, _>>()?;
    let gumbel_rng = r.pairs("gumbel rng")?;
    let step = r.u64("supernet step")?;
    Ok(SupernetStateRepr {
        alpha,
        gumbel_rng,
        step,
    })
}

fn put_curve(w: &mut Writer, c: &[CurvePointRepr]) {
    w.len(c.len());
    for p in c {
        w.u64(p.step);
        w.u32(p.bits);
    }
}

fn get_curve(r: &mut Reader<'_>) -> Result<Vec<CurvePointRepr>, CheckpointError> {
    let n = r.len("curve")?;
    (0..n)
        .map(|_| {
            Ok(CurvePointRepr {
                step: r.u64("curve step")?,
                bits: r.u32("curve bits")?,
            })
        })
        .collect()
}

fn put_events(w: &mut Writer, events: &[RobustnessEvent]) {
    w.len(events.len());
    for e in events {
        w.u64(e.iteration);
        // A kind travels as its index in the stable `all()` order, so
        // appending new kinds keeps old payloads readable.
        let index = RobustnessEventKind::all()
            .iter()
            .position(|k| *k == e.kind)
            .unwrap_or_default();
        // a3cs::allow(lossy-cast): `index` is a position within the fixed
        // RobustnessEventKind::all() table (single digits).
        w.u32(index as u32);
        w.str(&e.detail);
    }
}

fn get_events(r: &mut Reader<'_>) -> Result<Vec<RobustnessEvent>, CheckpointError> {
    let n = r.len("robustness events")?;
    (0..n)
        .map(|_| {
            let iteration = r.u64("event iteration")?;
            // a3cs::allow(lossy-cast): u32→usize widens losslessly.
            let index = r.u32("event kind")? as usize;
            let kind = *RobustnessEventKind::all().get(index).ok_or_else(|| {
                CheckpointError::Parse(format!(
                    "binary checkpoint: unknown robustness event kind index {index}"
                ))
            })?;
            let detail = r.str("event detail")?;
            Ok(RobustnessEvent {
                iteration,
                kind,
                detail,
            })
        })
        .collect()
}

// --- whole-checkpoint framing --------------------------------------------

pub(crate) fn encode(ck: &SearchCheckpoint) -> Vec<u8> {
    let mut w = Writer::default();
    w.buf.extend_from_slice(MAGIC);
    w.u32(ck.version);
    w.str(&ck.fingerprint);
    w.pair(ck.seed);
    w.u64(ck.steps);
    w.u64(ck.iteration);
    w.u64(ck.next_eval);
    put_tensors(&mut w, &ck.weight_params);
    put_tensors(&mut w, &ck.state_tensors);
    put_supernet(&mut w, &ck.supernet);
    put_optim(&mut w, &ck.weight_opt);
    put_optim(&mut w, &ck.alpha_opt);
    put_das(&mut w, &ck.das);
    put_runner(&mut w, &ck.train_runner);
    match &ck.val_runner {
        Some(runner) => {
            w.u8(1);
            put_runner(&mut w, runner);
        }
        None => w.u8(0),
    }
    w.u32(ck.lr_scale);
    w.u32(ck.rollbacks_left);
    // Tail region: per-iteration growth lives last (see MAGIC docs).
    put_curve(&mut w, &ck.score_curve);
    put_curve(&mut w, &ck.entropy_curve);
    put_events(&mut w, &ck.events);
    w.buf
}

pub(crate) fn decode(payload: &[u8]) -> Result<SearchCheckpoint, CheckpointError> {
    if !is_binary(payload) {
        return Err(CheckpointError::Parse(
            "payload does not start with the binary checkpoint magic".to_string(),
        ));
    }
    let mut r = Reader {
        buf: payload,
        pos: MAGIC.len(),
    };
    let ck = SearchCheckpoint {
        version: r.u32("version")?,
        fingerprint: r.str("fingerprint")?,
        seed: r.pair("seed")?,
        steps: r.u64("steps")?,
        iteration: r.u64("iteration")?,
        next_eval: r.u64("next eval")?,
        weight_params: get_tensors(&mut r)?,
        state_tensors: get_tensors(&mut r)?,
        supernet: get_supernet(&mut r)?,
        weight_opt: get_optim(&mut r)?,
        alpha_opt: get_optim(&mut r)?,
        das: get_das(&mut r)?,
        train_runner: get_runner(&mut r)?,
        val_runner: match r.u8("val runner flag")? {
            0 => None,
            1 => Some(get_runner(&mut r)?),
            other => {
                return Err(CheckpointError::Parse(format!(
                    "binary checkpoint: val runner flag must be 0 or 1, got {other}"
                )))
            }
        },
        lr_scale: r.u32("lr scale")?,
        rollbacks_left: r.u32("rollbacks left")?,
        // Tail region, in encode order: struct literal fields evaluate in
        // the order written, which is what keeps these reads last.
        score_curve: get_curve(&mut r)?,
        entropy_curve: get_curve(&mut r)?,
        events: get_events(&mut r)?,
    };
    if r.pos != payload.len() {
        return Err(CheckpointError::Parse(format!(
            "binary checkpoint has {} trailing bytes",
            payload.len() - r.pos
        )));
    }
    Ok(ck)
}
