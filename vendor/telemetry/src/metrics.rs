//! Atomic metrics: counters, gauges and fixed-bucket (power-of-two)
//! histograms, plus the static catalog of every metric the workspace
//! records. All probes are relaxed atomics gated on the global enable flag;
//! when telemetry is disabled each probe costs one relaxed load.

use crate::enabled;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic event counter (e.g. `gemm.macs`, `env.steps`).
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Create a named counter (usable in statics).
    #[must_use]
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, value: AtomicU64::new(0) }
    }

    /// Metric name as it appears in traces and summaries.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `delta` to the counter. No-op when telemetry is disabled.
    #[inline]
    pub fn add(&self, delta: u64) {
        if !enabled() {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Bit pattern marking a gauge that has never been set. (It is one specific
/// NaN encoding; setting a gauge to a runtime NaN stores the canonical NaN
/// bits instead, so real measurements never collide with it.)
const GAUGE_UNSET: u64 = u64::MAX;

/// Last-value-wins measurement (e.g. `loss.total`), stored as f64 bits.
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
}

impl Gauge {
    /// Create a named gauge (usable in statics).
    #[must_use]
    pub const fn new(name: &'static str) -> Gauge {
        Gauge { name, bits: AtomicU64::new(GAUGE_UNSET) }
    }

    /// Metric name as it appears in traces and summaries.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record the latest value. No-op when telemetry is disabled.
    #[inline]
    pub fn set(&self, value: f64) {
        if !enabled() {
            return;
        }
        let bits = if value.is_nan() { f64::NAN.to_bits() } else { value.to_bits() };
        self.bits.store(bits, Ordering::Relaxed);
    }

    /// Latest recorded value, or `None` if the gauge was never set.
    #[must_use]
    pub fn get(&self) -> Option<f64> {
        let bits = self.bits.load(Ordering::Relaxed);
        if bits == GAUGE_UNSET {
            None
        } else {
            Some(f64::from_bits(bits))
        }
    }

    /// Reset to the unset state.
    pub fn reset(&self) {
        self.bits.store(GAUGE_UNSET, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: bucket 0 holds zero values, bucket `i`
/// (1..=32) holds values in `[2^(i-1), 2^i)`, and the last bucket absorbs
/// everything at or above `2^32`.
pub const HISTOGRAM_BUCKETS: usize = 34;

/// Fixed power-of-two-bucket histogram of `u64` samples (e.g. bytes per
/// checkpoint write, MACs per GEMM call).
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

#[allow(clippy::declare_interior_mutable_const)]
const BUCKET_INIT: AtomicU64 = AtomicU64::new(0);

impl Histogram {
    /// Create a named histogram (usable in statics).
    #[must_use]
    pub const fn new(name: &'static str) -> Histogram {
        Histogram { name, buckets: [BUCKET_INIT; HISTOGRAM_BUCKETS] }
    }

    /// Metric name as it appears in traces and summaries.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Bucket index for `value`: 0 for zero, otherwise
    /// `floor(log2(value)) + 1`, capped at the overflow bucket.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            return 0;
        }
        let idx = 64 - value.leading_zeros() as usize;
        idx.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Exclusive upper bound of bucket `index`, or `None` for the overflow
    /// bucket (and for out-of-range indices).
    #[must_use]
    pub fn bucket_upper_bound(index: usize) -> Option<u64> {
        if index + 1 >= HISTOGRAM_BUCKETS {
            return None;
        }
        Some(1u64 << index)
    }

    /// Record one sample. No-op when telemetry is disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Per-bucket counts.
    #[must_use]
    pub fn counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Estimate the `q`-quantile (`q` clamped to `[0, 1]`) of the recorded
    /// samples by linear interpolation within the power-of-two buckets.
    /// Returns `None` when the histogram is empty. See
    /// [`quantile_from_counts`] for the exact estimator contract.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_counts(&self.counts(), q)
    }

    /// Reset every bucket to zero.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

/// Estimate the `q`-quantile of a power-of-two-bucket histogram given its
/// per-bucket `counts` (the layout of [`Histogram::counts`]).
///
/// The estimator treats the `n` samples of bucket `i` as evenly spread over
/// the bucket's value range `[lower, upper)` (bucket 0 is the single value
/// 0; the overflow bucket is treated as the single value `2^32`, its lower
/// edge, since it has no finite upper bound) and linearly interpolates the
/// fractional rank `q · (total − 1)` within the bucket it falls in. `q` is
/// clamped to `[0, 1]`, so `q = 0` yields the lower edge of the first
/// non-empty bucket and `q = 1` the upper edge of the last non-empty one.
/// Returns `None` for an empty histogram (or a `counts` slice that does not
/// match [`HISTOGRAM_BUCKETS`]).
#[must_use]
pub fn quantile_from_counts(counts: &[u64], q: f64) -> Option<f64> {
    if counts.len() != HISTOGRAM_BUCKETS {
        return None;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    // Fractional rank over samples 0..total (inclusive of both edges), so
    // q=0 is the first sample's bucket floor and q=1 the last one's ceiling.
    let rank = q * total as f64;
    let mut cum = 0u64;
    for (idx, &n) in counts.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let next = cum + n;
        if rank <= next as f64 || next == total {
            let (lower, upper) = bucket_value_range(idx);
            // Position of the rank within this bucket's samples, in [0, 1].
            let frac = ((rank - cum as f64) / n as f64).clamp(0.0, 1.0);
            return Some(lower + frac * (upper - lower));
        }
        cum = next;
    }
    None
}

/// Value range `[lower, upper]` bucket `index` is interpolated over. Bucket
/// 0 holds only zeros; the overflow bucket collapses to its lower edge.
fn bucket_value_range(index: usize) -> (f64, f64) {
    if index == 0 {
        return (0.0, 0.0);
    }
    if index + 1 >= HISTOGRAM_BUCKETS {
        let edge = (1u64 << 32) as f64;
        return (edge, edge);
    }
    let upper = (1u64 << index) as f64;
    (upper / 2.0, upper)
}

// ---------------------------------------------------------------------------
// Metric catalog
// ---------------------------------------------------------------------------

/// Multiply-accumulate operations executed by dense GEMM kernels.
pub static GEMM_MACS: Counter = Counter::new("gemm.macs");
/// Number of dense GEMM kernel invocations.
pub static GEMM_CALLS: Counter = Counter::new("gemm.calls");
/// Multiply-accumulate operations executed by conv2d/depthwise kernels
/// (backward passes count their re-computation too).
pub static CONV_MACS: Counter = Counter::new("conv.macs");
/// Environment steps taken by training rollouts.
pub static ENV_STEPS: Counter = Counter::new("env.steps");
/// Episodes completed by evaluation.
pub static EVAL_EPISODES: Counter = Counter::new("eval.episodes");
/// Environment steps taken by evaluation lanes.
pub static EVAL_STEPS: Counter = Counter::new("eval.steps");
/// Bytes serialized into checkpoint payloads.
pub static CHECKPOINT_BYTES: Counter = Counter::new("checkpoint.bytes");
/// Bytes actually handed to the checkpoint store for persistence (counted
/// per successful `CheckpointStore::write`, before envelope framing).
pub static CHECKPOINT_BYTES_WRITTEN: Counter = Counter::new("checkpoint.bytes_written");
/// Checkpoint restores applied: auto-resumes from disk plus divergence
/// rollbacks to an in-memory sentinel checkpoint.
pub static CHECKPOINT_RESTORES: Counter = Counter::new("checkpoint.restore_count");
/// Divergence rollbacks performed by the guarded co-search loop.
pub static ROLLBACK_COUNT: Counter = Counter::new("rollback.count");
/// Bytes of sealed delta frames persisted (delta checkpointing mode).
pub static CHECKPOINT_DELTA_BYTES: Counter = Counter::new("checkpoint.delta_bytes");
/// Delta frames persisted (delta checkpointing mode).
pub static CHECKPOINT_DELTA_FRAMES: Counter = Counter::new("checkpoint.delta_frames");
/// Checkpoint-store scrub passes performed.
pub static CHECKPOINT_SCRUB_RUNS: Counter = Counter::new("checkpoint.scrub_runs");
/// Broken checkpoint frames quarantined (renamed to `.bad`) by scrubs.
pub static CHECKPOINT_SCRUB_QUARANTINED: Counter =
    Counter::new("checkpoint.scrub_quarantined");
/// Delta chains folded into a fresh base (inline rolls and explicit
/// compactions).
pub static CHECKPOINT_COMPACTIONS: Counter = Counter::new("checkpoint.compactions");
/// Tasks executed across all pool lanes.
pub static POOL_TASKS: Counter = Counter::new("pool.tasks");
/// Full-config hits in the accelerator cost cache.
pub static MEMO_HITS: Counter = Counter::new("memo.hits");
/// Full-config misses in the accelerator cost cache.
pub static MEMO_MISSES: Counter = Counter::new("memo.misses");
/// Live cost-cache entries displaced by newer results (both tables).
pub static MEMO_EVICTIONS: Counter = Counter::new("memo.evictions");
/// Per-chunk partial hits in the accelerator cost cache.
pub static MEMO_CHUNK_HITS: Counter = Counter::new("memo.chunk_hits");
/// Full predictor evaluations avoided by the cost cache.
pub static MEMO_EVALS_SAVED: Counter = Counter::new("memo.evals_saved");

/// Latest total A2C+distillation loss.
pub static LOSS_TOTAL: Gauge = Gauge::new("loss.total");
/// Latest actor distillation loss component.
pub static LOSS_DISTILL_ACTOR: Gauge = Gauge::new("loss.distill_actor");
/// Latest critic distillation loss component.
pub static LOSS_DISTILL_CRITIC: Gauge = Gauge::new("loss.distill_critic");
/// Cumulative compression ratio of the checkpoint path: logical payload
/// bytes divided by sealed bytes actually written (≥ 1 means the delta +
/// codec layer is paying for itself).
pub static CHECKPOINT_COMPRESSION_RATIO: Gauge = Gauge::new("checkpoint.compression_ratio");

/// Distribution of MACs per GEMM call.
pub static GEMM_MACS_HIST: Histogram = Histogram::new("gemm.macs.per_call");
/// Distribution of bytes per checkpoint write.
pub static CHECKPOINT_BYTES_HIST: Histogram = Histogram::new("checkpoint.bytes.per_write");

static COUNTERS: [&Counter; 21] = [
    &GEMM_MACS,
    &GEMM_CALLS,
    &CONV_MACS,
    &ENV_STEPS,
    &EVAL_EPISODES,
    &EVAL_STEPS,
    &CHECKPOINT_BYTES,
    &CHECKPOINT_BYTES_WRITTEN,
    &CHECKPOINT_RESTORES,
    &CHECKPOINT_DELTA_BYTES,
    &CHECKPOINT_DELTA_FRAMES,
    &CHECKPOINT_SCRUB_RUNS,
    &CHECKPOINT_SCRUB_QUARANTINED,
    &CHECKPOINT_COMPACTIONS,
    &ROLLBACK_COUNT,
    &POOL_TASKS,
    &MEMO_HITS,
    &MEMO_MISSES,
    &MEMO_EVICTIONS,
    &MEMO_CHUNK_HITS,
    &MEMO_EVALS_SAVED,
];
static GAUGES: [&Gauge; 4] = [
    &LOSS_TOTAL,
    &LOSS_DISTILL_ACTOR,
    &LOSS_DISTILL_CRITIC,
    &CHECKPOINT_COMPRESSION_RATIO,
];
static HISTOGRAMS: [&Histogram; 2] = [&GEMM_MACS_HIST, &CHECKPOINT_BYTES_HIST];

/// Every registered counter, in stable catalog order.
#[must_use]
pub fn all_counters() -> &'static [&'static Counter] {
    &COUNTERS
}

/// Every registered gauge, in stable catalog order.
#[must_use]
pub fn all_gauges() -> &'static [&'static Gauge] {
    &GAUGES
}

/// Every registered histogram, in stable catalog order.
#[must_use]
pub fn all_histograms() -> &'static [&'static Histogram] {
    &HISTOGRAMS
}

/// Reset every registered metric.
pub(crate) fn reset_all() {
    for c in all_counters() {
        c.reset();
    }
    for g in all_gauges() {
        g.reset();
    }
    for h in all_histograms() {
        h.reset();
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// One counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name.
    pub name: &'static str,
    /// Counter value.
    pub value: u64,
}

/// One gauge's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: &'static str,
    /// Latest recorded value.
    pub value: f64,
}

/// One histogram's buckets at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: &'static str,
    /// Per-bucket counts (length [`HISTOGRAM_BUCKETS`]).
    pub counts: Vec<u64>,
}

impl HistogramSample {
    /// Total number of recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimate the `q`-quantile of the snapshotted samples (same
    /// estimator as [`Histogram::quantile`] / [`quantile_from_counts`]).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_counts(&self.counts, q)
    }
}

/// Values of every registered metric at one point in time. Zero counters,
/// unset gauges and empty histograms are omitted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Non-zero counters, in catalog order.
    pub counters: Vec<CounterSample>,
    /// Set gauges, in catalog order.
    pub gauges: Vec<GaugeSample>,
    /// Non-empty histograms, in catalog order.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Value of the named counter (0 if absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
    }

    /// Value of the named gauge, if it was set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Buckets of the named histogram, if it recorded any samples.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Values of every registered metric right now, read with relaxed atomic
/// loads — no lock, no allocation beyond the snapshot itself. Safe to call
/// from any thread at any time (the live observability server reads metric
/// state exclusively through this), and observe-only by construction.
#[must_use]
pub fn metrics_snapshot() -> MetricsSnapshot {
    snapshot_all()
}

pub(crate) fn snapshot_all() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: all_counters()
            .iter()
            .filter_map(|c| {
                let value = c.get();
                (value != 0).then_some(CounterSample { name: c.name(), value })
            })
            .collect(),
        gauges: all_gauges()
            .iter()
            .filter_map(|g| g.get().map(|value| GaugeSample { name: g.name(), value }))
            .collect(),
        histograms: all_histograms()
            .iter()
            .filter_map(|h| {
                let counts = h.counts();
                counts
                    .iter()
                    .any(|&n| n != 0)
                    .then_some(HistogramSample { name: h.name(), counts })
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_index(1 << 32), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_index((1 << 32) - 1), HISTOGRAM_BUCKETS - 2);
    }

    #[test]
    fn quantile_single_bucket_interpolates_across_its_range() {
        // All samples in bucket 3 = [4, 8): the estimator spreads them
        // evenly over the range, so quantiles sweep lower → upper.
        let mut counts = vec![0u64; HISTOGRAM_BUCKETS];
        counts[3] = 4;
        assert_eq!(quantile_from_counts(&counts, 0.0), Some(4.0));
        assert_eq!(quantile_from_counts(&counts, 0.5), Some(6.0));
        assert_eq!(quantile_from_counts(&counts, 1.0), Some(8.0));
        // Out-of-range q clamps rather than erroring.
        assert_eq!(quantile_from_counts(&counts, -1.0), Some(4.0));
        assert_eq!(quantile_from_counts(&counts, 2.0), Some(8.0));
    }

    #[test]
    fn quantile_bucket_edges_are_exact() {
        // 2 samples in [1,2), 2 in [2,4): the median rank (q=0.5 → rank 2)
        // lands exactly on the shared bucket edge at 2.
        let mut counts = vec![0u64; HISTOGRAM_BUCKETS];
        counts[1] = 2;
        counts[2] = 2;
        assert_eq!(quantile_from_counts(&counts, 0.5), Some(2.0));
        assert_eq!(quantile_from_counts(&counts, 0.0), Some(1.0));
        assert_eq!(quantile_from_counts(&counts, 1.0), Some(4.0));
        // q=0.75 → rank 3: halfway through the second bucket's 2 samples.
        assert_eq!(quantile_from_counts(&counts, 0.75), Some(3.0));
    }

    #[test]
    fn quantile_zero_and_overflow_buckets_collapse_to_points() {
        let mut counts = vec![0u64; HISTOGRAM_BUCKETS];
        counts[0] = 5;
        assert_eq!(quantile_from_counts(&counts, 0.99), Some(0.0));
        let mut counts = vec![0u64; HISTOGRAM_BUCKETS];
        counts[HISTOGRAM_BUCKETS - 1] = 2;
        let edge = (1u64 << 32) as f64;
        assert_eq!(quantile_from_counts(&counts, 0.5), Some(edge));
        assert_eq!(quantile_from_counts(&counts, 1.0), Some(edge));
    }

    #[test]
    fn quantile_empty_and_malformed_are_none() {
        assert_eq!(quantile_from_counts(&vec![0u64; HISTOGRAM_BUCKETS], 0.5), None);
        assert_eq!(quantile_from_counts(&[1, 2, 3], 0.5), None);
        let h = Histogram::new("test.quantile");
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_and_sample_quantiles_agree() {
        let mut counts = vec![0u64; HISTOGRAM_BUCKETS];
        counts[4] = 10; // [8, 16)
        let sample = HistogramSample { name: "x", counts: counts.clone() };
        assert_eq!(sample.quantile(0.95), quantile_from_counts(&counts, 0.95));
        assert_eq!(sample.quantile(0.95), Some(8.0 + 0.95 * 8.0));
    }

    #[test]
    fn bucket_bounds_match_indices() {
        // Every value v must satisfy: bound(idx-1) <= v < bound(idx).
        for v in [1u64, 2, 3, 4, 7, 8, 1000, 1 << 20] {
            let idx = Histogram::bucket_index(v);
            let upper = Histogram::bucket_upper_bound(idx).expect("not overflow");
            assert!(v < upper, "v={v} idx={idx} upper={upper}");
            if idx > 1 {
                let lower = Histogram::bucket_upper_bound(idx - 1).expect("bound");
                assert!(v >= lower, "v={v} idx={idx} lower={lower}");
            }
        }
        assert_eq!(Histogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1), None);
    }
}
