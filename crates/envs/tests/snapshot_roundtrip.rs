//! Snapshot/restore contract over the whole roster: restoring a
//! mid-episode snapshot into a *fresh* environment (any seed) must
//! reproduce the original trajectory bit-exactly, and foreign or
//! truncated snapshots must be rejected, never panic.

use a3cs_envs::wrappers::{ClipReward, EpisodeLimit, FrameStack, NoopStart};
use a3cs_envs::{game_names, make_env, Environment, EnvState, RestoreError};
use proptest::prelude::*;

/// Step `env` with a deterministic action pattern, recording outcomes.
fn drive(env: &mut dyn Environment, actions: &[usize]) -> Vec<(Vec<f32>, u32, bool)> {
    let n = env.action_count();
    actions
        .iter()
        .map(|&a| {
            let out = env.step(a % n);
            let trace = (out.observation.clone(), out.reward.to_bits(), out.done);
            if out.done {
                let _ = env.reset();
            }
            trace
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn restored_env_continues_bit_exactly(
        game in prop::sample::select(game_names()),
        seed in 0u64..1000,
        warmup in prop::collection::vec(0usize..6, 0..50),
        cont in prop::collection::vec(0usize..6, 1..40),
    ) {
        let mut env = make_env(game, seed).expect("known game");
        let _ = env.reset();
        let _ = drive(&mut env, &warmup);
        let snap = env.snapshot();

        let expected = drive(&mut env, &cont);

        // A fresh env with an unrelated seed: restore must overwrite
        // every piece of dynamic state, or the trajectories diverge.
        let mut fresh = make_env(game, seed ^ 0xdead_beef).expect("known game");
        fresh.restore(&snap).expect("own snapshot restores");
        let got = drive(&mut fresh, &cont);
        prop_assert_eq!(expected, got, "{}: trajectory diverged after restore", game);
    }

    #[test]
    fn foreign_snapshot_is_rejected_not_panicking(
        game in prop::sample::select(game_names()),
        other in prop::sample::select(game_names()),
        seed in 0u64..100,
    ) {
        if game == other {
            return Ok(());
        }
        let mut env = make_env(game, seed).expect("known game");
        let _ = env.reset();
        let mut donor = make_env(other, seed).expect("known game");
        let _ = donor.reset();
        let result = env.restore(&donor.snapshot());
        // Same-shape games could in principle accept each other's payload,
        // but the tag always differs, so this must be WrongTag.
        let is_wrong_tag = matches!(result, Err(RestoreError::WrongTag { .. }));
        prop_assert!(is_wrong_tag, "expected WrongTag");
    }

    #[test]
    fn truncated_snapshot_is_rejected_not_panicking(
        game in prop::sample::select(game_names()),
        seed in 0u64..100,
        keep_ints in 0usize..4,
    ) {
        let mut env = make_env(game, seed).expect("known game");
        let _ = env.reset();
        let snap = env.snapshot();
        if snap.ints().len() <= keep_ints {
            return Ok(());
        }
        let cut = EnvState::from_parts(
            snap.tag().to_string(),
            snap.ints()[..keep_ints].to_vec(),
            snap.floats().to_vec(),
            snap.inner().to_vec(),
        );
        prop_assert!(env.restore(&cut).is_err());
    }
}

#[test]
fn wrapper_stack_round_trips() {
    let build = |seed| {
        EpisodeLimit::new(
            ClipReward::new(NoopStart::new(
                FrameStack::new(make_env("Breakout", seed).expect("known game"), 4),
                5,
                seed ^ 1,
            )),
            37,
        )
    };
    let mut env = build(3);
    let _ = env.reset();
    let warmup: Vec<usize> = (0..25).map(|i| i % 3).collect();
    let _ = drive(&mut env, &warmup);
    let snap = env.snapshot();

    let cont: Vec<usize> = (0..60).map(|i| (i * 7) % 3).collect();
    let expected = drive(&mut env, &cont);

    let mut fresh = build(999);
    fresh.restore(&snap).expect("wrapper snapshot restores");
    let got = drive(&mut fresh, &cont);
    assert_eq!(expected, got, "wrapped trajectory diverged after restore");
}

#[test]
fn wrapper_config_mismatch_is_rejected() {
    let mut a = FrameStack::new(make_env("Pong", 0).expect("known game"), 4);
    let _ = a.reset();
    let mut b = FrameStack::new(make_env("Pong", 0).expect("known game"), 2);
    let _ = b.reset();
    assert!(matches!(
        b.restore(&a.snapshot()),
        Err(RestoreError::OutOfRange { .. })
    ));
}
