//! Weight-initialisation helpers.

/// He (Kaiming) initialisation standard deviation for a layer with the
/// given fan-in, appropriate before ReLU nonlinearities.
///
/// # Example
///
/// ```
/// let std = a3cs_nn::he_std(9 * 16);
/// assert!((std - (2.0f32 / 144.0).sqrt()).abs() < 1e-7);
/// ```
#[must_use]
pub fn he_std(fan_in: usize) -> f32 {
    (2.0 / fan_in.max(1) as f32).sqrt()
}

/// Xavier (Glorot) initialisation standard deviation for a layer with the
/// given fan-in and fan-out, appropriate for linear output heads.
#[must_use]
pub fn xavier_std(fan_in: usize, fan_out: usize) -> f32 {
    (2.0 / (fan_in + fan_out).max(1) as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_shrinks_with_fan_in() {
        assert!(he_std(10) > he_std(1000));
    }

    #[test]
    fn zero_fans_do_not_divide_by_zero() {
        assert!(he_std(0).is_finite());
        assert!(xavier_std(0, 0).is_finite());
    }

    #[test]
    fn xavier_symmetric_in_fans() {
        assert_eq!(xavier_std(3, 7), xavier_std(7, 3));
    }
}
