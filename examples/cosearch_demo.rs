//! End-to-end A3C-S co-search demo: jointly search a DRL agent backbone
//! and its FPGA accelerator on the simulated Pong game, then retrain the
//! derived agent with AC-distillation from a quickly-trained teacher.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example cosearch_demo
//! ```

use a3cs::core::{CoSearch, CoSearchConfig};
use a3cs::drl::{ActorCritic, DistillConfig, Trainer, TrainerConfig};
use a3cs::envs::{Environment, Pong};
use a3cs::nas::derive_backbone;
use a3cs::nn::{resnet, Module};

fn main() {
    let factory = |seed: u64| -> Box<dyn Environment> { Box::new(Pong::new(seed)) };
    let (planes, h, w, actions) = (3, 12, 12, 3);

    // 1. Train a teacher agent (the paper uses ResNet-20).
    println!("[1/3] training the ResNet-20 teacher...");
    let teacher_backbone = resnet(20, planes, h, w, 8, 32, 100);
    let teacher = ActorCritic::new(Box::new(teacher_backbone), 32, (planes, h, w), actions, 100);
    let teacher_cfg = TrainerConfig {
        total_steps: 6_000,
        eval_every: 6_000,
        eval_episodes: 5,
        eval_max_steps: 200,
        ..TrainerConfig::default()
    };
    let teacher_curve = Trainer::new(teacher_cfg, 1).train(&teacher, &factory, None);
    println!("      teacher score: {:.1}", teacher_curve.final_score());

    // 2. Co-search agent + accelerator with AC-distillation (Alg. 1).
    println!("[2/3] running the A3C-S co-search...");
    let mut config = CoSearchConfig::tiny(planes, h, w, actions);
    config.total_steps = 4_000;
    config.eval_every = 1_000;
    let mut search = CoSearch::try_new(config, 2).expect("demo config passes pre-flight");
    let result = search.run(&factory, Some(&teacher));
    println!("      {}", result.summary());
    for (step, score) in &result.score_curve {
        println!("      search step {step:>5}: score {score:.1}");
    }

    // 3. Derive and retrain the final agent with AC-distillation.
    println!("[3/3] retraining the derived agent...");
    let derived = derive_backbone(search.supernet().config(), &result.arch, 7);
    println!(
        "      derived backbone: {} MACs/frame, {} params",
        derived.total_macs(),
        derived.param_count()
    );
    let feat_dim = derived.feat_dim();
    let agent = ActorCritic::new(Box::new(derived), feat_dim, (planes, h, w), actions, 7);
    let final_cfg = TrainerConfig {
        total_steps: 6_000,
        eval_every: 3_000,
        eval_episodes: 5,
        eval_max_steps: 200,
        ..TrainerConfig::default()
    };
    let curve = Trainer::new(final_cfg, 3).train(
        &agent,
        &factory,
        Some((&DistillConfig::ac_distillation(), &teacher)),
    );
    println!("      final agent score: {:.1}", curve.final_score());
    println!(
        "      matched accelerator: {:.1} FPS on {} DSPs",
        result.report.fps, result.report.dsp_used
    );
}
