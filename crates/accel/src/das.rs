//! The Differentiable Accelerator Search (DAS) engine — Eq. 9 of the
//! paper: hard Gumbel-Softmax sampling per accelerator knob `φ^m`, with the
//! overall hardware cost back-propagated to every sampled knob through the
//! softmax relaxation.

use crate::memo::{CachedCostModel, CostModel, MemoStats};
use crate::predictor::{CostWeights, PerfModel, PerfReport};
use crate::space::SearchSpace;
use crate::template::AcceleratorConfig;
use crate::zc706::FpgaTarget;
use a3cs_nn::LayerDesc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DAS hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DasConfig {
    /// The knob space.
    pub space: SearchSpace,
    /// Number of pipeline chunks to instantiate.
    pub num_chunks: usize,
    /// Maximum network depth the assignment knobs cover (longer φ simply
    /// ignores the tail when the current network is shallower).
    pub max_layers: usize,
    /// Initial Gumbel-Softmax temperature for `φ` sampling (annealed
    /// multiplicatively each step down to `min_temperature`).
    pub temperature: f64,
    /// Temperature floor.
    pub min_temperature: f64,
    /// Multiplicative temperature decay per step.
    pub temperature_decay: f64,
    /// Learning rate on the `φ` logits.
    pub lr: f64,
    /// Cost weights fed to the predictor.
    pub cost: CostWeights,
    /// `log2` of the transposition-table cost cache (0 disables caching;
    /// cached and direct evaluation are bit-identical, so this only
    /// trades memory for speed — see `memo.rs`).
    pub memo_log2: u32,
}

impl Default for DasConfig {
    fn default() -> Self {
        DasConfig {
            space: SearchSpace::default(),
            num_chunks: 4,
            max_layers: 48,
            temperature: 2.0,
            min_temperature: 0.5,
            temperature_decay: 0.995,
            lr: 0.5,
            cost: CostWeights::default(),
            memo_log2: 14,
        }
    }
}

/// The searchable accelerator distribution: one logit vector per knob.
///
/// Each [`DasEngine::step`] hard-samples every knob, evaluates the decoded
/// accelerator with the analytical predictor, and updates the logits with
/// the straight-through Gumbel-Softmax gradient of
/// `Σ_m GS_hard(φ^m) · L̂` (Eq. 9), using a moving-average cost baseline
/// for variance reduction (an implementation detail the paper's
/// formulation absorbs into the relaxation).
pub struct DasEngine {
    config: DasConfig,
    logits: Vec<Vec<f64>>,
    rng: StdRng,
    baseline: Option<f64>,
    temperature: f64,
    /// Memoized predictor front-end (`None` when `memo_log2 == 0`).
    /// Deliberately absent from [`DasState`]: cached results are
    /// bit-identical to direct evaluation, so the cache is pure
    /// acceleration state and resume stays exact without it.
    cache: Option<CachedCostModel>,
}

/// The complete mutable state of a [`DasEngine`], as captured by
/// [`DasEngine::export_state`] for checkpointing.
#[derive(Debug, Clone, PartialEq)]
pub struct DasState {
    /// Per-knob φ logit rows.
    pub logits: Vec<Vec<f64>>,
    /// Gumbel sampler RNG state words.
    pub rng: [u64; 4],
    /// Moving-average cost baseline (`None` until the first step).
    pub baseline: Option<f64>,
    /// Current (annealed) sampling temperature.
    pub temperature: f64,
}

/// Why a [`DasState`] could not be imported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DasStateError {
    /// The logit table's row lengths do not match the engine's knob
    /// layout (different search space or chunk/layer budget).
    ShapeMismatch {
        /// Row lengths this engine expects.
        expected: Vec<usize>,
        /// Row lengths found in the state.
        actual: Vec<usize>,
    },
}

impl std::fmt::Display for DasStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DasStateError::ShapeMismatch { expected, actual } => write!(
                f,
                "DAS state has {} logit rows {:?}, engine expects {} rows {:?}",
                actual.len(),
                actual,
                expected.len(),
                expected
            ),
        }
    }
}

impl std::error::Error for DasStateError {}

impl DasEngine {
    /// Create an engine with uniform knob distributions.
    ///
    /// # Panics
    ///
    /// Panics if `num_chunks` or `max_layers` is zero.
    #[must_use]
    pub fn new(config: DasConfig, seed: u64) -> Self {
        assert!(config.num_chunks > 0, "need at least one chunk");
        assert!(config.max_layers > 0, "need at least one layer slot");
        let sizes = config.space.knob_sizes(config.num_chunks, config.max_layers);
        let logits = sizes.iter().map(|&s| vec![0.0f64; s]).collect();
        let temperature = config.temperature;
        let cache = (config.memo_log2 > 0).then(|| CachedCostModel::new(config.memo_log2));
        DasEngine {
            config,
            logits,
            rng: StdRng::seed_from_u64(seed),
            baseline: None,
            temperature,
            cache,
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &DasConfig {
        &self.config
    }

    /// Export the engine's complete mutable state (φ logits, RNG stream,
    /// cost baseline, annealed temperature) for checkpointing.
    #[must_use]
    pub fn export_state(&self) -> DasState {
        DasState {
            logits: self.logits.clone(),
            rng: self.rng.state(),
            baseline: self.baseline,
            temperature: self.temperature,
        }
    }

    /// Restore state captured by [`DasEngine::export_state`].
    ///
    /// # Errors
    ///
    /// [`DasStateError::ShapeMismatch`] when the logit table does not
    /// match this engine's knob layout; nothing is modified in that case.
    pub fn import_state(&mut self, state: &DasState) -> Result<(), DasStateError> {
        let expected: Vec<usize> = self.logits.iter().map(Vec::len).collect();
        let actual: Vec<usize> = state.logits.iter().map(Vec::len).collect();
        if expected != actual {
            return Err(DasStateError::ShapeMismatch { expected, actual });
        }
        self.logits = state.logits.clone();
        self.rng = StdRng::from_state(state.rng);
        self.baseline = state.baseline;
        self.temperature = state.temperature;
        Ok(())
    }

    fn knob_count_for(&self, num_layers: usize) -> usize {
        self.config
            .space
            .chunk_knob_sizes()
            .len()
            * self.config.num_chunks
            + num_layers
    }

    /// Hard-sample every knob (Gumbel-max) at the current temperature.
    fn sample(&mut self, num_layers: usize) -> (Vec<usize>, Vec<Vec<f64>>) {
        let n = self.knob_count_for(num_layers);
        let tau = self.temperature;
        let mut choices = Vec::with_capacity(n);
        let mut softs = Vec::with_capacity(n);
        for logit in self.logits.iter().take(n) {
            let z: Vec<f64> = logit
                .iter()
                .map(|&l| {
                    let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                    let g = -(-u.ln()).ln(); // standard Gumbel noise
                    (l + g) / tau
                })
                .collect();
            let soft = softmax64(&z);
            let mut best = 0;
            for (i, &v) in z.iter().enumerate() {
                if v > z[best] {
                    best = i;
                }
            }
            choices.push(best);
            softs.push(soft);
        }
        (choices, softs)
    }

    /// Decode a knob-choice vector for a `num_layers`-deep network.
    ///
    /// The assignment tail is sorted so every decoded accelerator is a
    /// *legal* pipeline (each chunk owns a contiguous layer interval).
    /// This repair is gradient-safe: the DAS update (Eq. 9) scales every
    /// knob's straight-through gradient by one global scalar advantage, so
    /// re-ordering the decoded assignment cannot misattribute credit
    /// between knobs — each assignment logit still learns which chunk its
    /// layer-slot prefers, and sorting only canonicalises the decoded
    /// interval boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers` exceeds `max_layers`.
    #[must_use]
    pub fn decode(&self, choices: &[usize], num_layers: usize) -> AcceleratorConfig {
        assert!(
            num_layers <= self.config.max_layers,
            "network deeper ({num_layers}) than max_layers ({})",
            self.config.max_layers
        );
        let mut accel = self
            .config
            .space
            .decode(self.config.num_chunks, num_layers, choices);
        accel.assignment.sort_unstable();
        accel
    }

    /// One DAS iteration on `layers`: sample, evaluate, update `φ`.
    /// Returns the sampled accelerator's report and scalar cost.
    pub fn step(&mut self, layers: &[LayerDesc], target: &FpgaTarget) -> (PerfReport, f64) {
        let num_layers = layers.len();
        let (choices, softs) = self.sample(num_layers);
        let accel = self.decode(&choices, num_layers);
        let report = match &mut self.cache {
            Some(cache) => {
                cache.begin(
                    &self.config.space,
                    self.config.num_chunks,
                    layers,
                    target,
                    &self.config.cost,
                );
                cache.evaluate_config(&accel)
            }
            None => PerfModel::evaluate(&accel, layers, target),
        };
        let cost = PerfModel::cost(&report, target, &self.config.cost);

        // Variance-reduced scalar signal, normalised by the baseline scale.
        let baseline = *self.baseline.get_or_insert(cost);
        let scale = baseline.abs().max(1e-9);
        let advantage = (cost - baseline) / scale;
        self.baseline = Some(0.9 * baseline + 0.1 * cost);

        // Straight-through gradient of y_sel wrt φ_j: y_sel (δ_{j,sel} - y_j)/τ.
        let tau = self.temperature;
        self.temperature =
            (self.temperature * self.config.temperature_decay).max(self.config.min_temperature);
        let n = self.knob_count_for(num_layers);
        for ((logit, soft), &sel) in self
            .logits
            .iter_mut()
            .take(n)
            .zip(softs.iter())
            .zip(choices.iter())
        {
            let y_sel = soft[sel];
            for (j, l) in logit.iter_mut().enumerate() {
                let indicator = f64::from(j == sel);
                let grad = advantage * y_sel * (indicator - soft[j]) / tau;
                *l -= self.config.lr * grad;
            }
        }
        (report, cost)
    }

    /// Run `iters` DAS steps and return the final most-likely accelerator.
    pub fn run(
        &mut self,
        layers: &[LayerDesc],
        target: &FpgaTarget,
        iters: usize,
    ) -> AcceleratorConfig {
        for _ in 0..iters {
            let _ = self.step(layers, target);
        }
        self.best(layers.len())
    }

    /// The argmax-`φ` accelerator for a `num_layers`-deep network.
    #[must_use]
    pub fn best(&self, num_layers: usize) -> AcceleratorConfig {
        self.decode(&self.best_choices(num_layers), num_layers)
    }

    /// The argmax-`φ` choice vector for a `num_layers`-deep network, in
    /// canonical form (assignment tail sorted — the same repair
    /// [`DasEngine::decode`] applies). This is the natural seed for
    /// [`BeamSearch::run_from`] refinement.
    ///
    /// [`BeamSearch::run_from`]: crate::BeamSearch::run_from
    #[must_use]
    pub fn best_choices(&self, num_layers: usize) -> Vec<usize> {
        let n = self.knob_count_for(num_layers);
        let mut choices: Vec<usize> = self.logits[..n]
            .iter()
            .map(|l| {
                let mut best = 0;
                for (i, &v) in l.iter().enumerate() {
                    if v > l[best] {
                        best = i;
                    }
                }
                best
            })
            .collect();
        let split = self.config.space.chunk_knob_sizes().len() * self.config.num_chunks;
        choices[split..].sort_unstable();
        choices
    }

    /// Cost-cache counters, when caching is enabled (`memo_log2 > 0`).
    #[must_use]
    pub fn cache_stats(&self) -> Option<MemoStats> {
        self.cache.as_ref().map(CachedCostModel::stats)
    }

    /// Mean entropy (nats) of the knob distributions — decreases as the
    /// search commits.
    #[must_use]
    pub fn mean_entropy(&self) -> f64 {
        let total: f64 = self
            .logits
            .iter()
            .map(|l| {
                let p = softmax64(l);
                -p.iter()
                    .map(|&x| if x > 0.0 { x * x.ln() } else { 0.0 })
                    .sum::<f64>()
            })
            .sum();
        total / self.logits.len() as f64
    }
}

fn softmax64(z: &[f64]) -> Vec<f64> {
    let mx = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = z.iter().map(|&v| (v - mx).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_nn::{resnet, vanilla};

    #[test]
    fn das_improves_over_its_first_samples() {
        let net = vanilla(4, 12, 12, 32, 0);
        let layers = net.layer_descs();
        let target = FpgaTarget::zc706();
        let mut das = DasEngine::new(DasConfig::default(), 3);
        let early: f64 = (0..10)
            .map(|_| das.step(&layers, &target).1)
            .sum::<f64>()
            / 10.0;
        for _ in 0..300 {
            let _ = das.step(&layers, &target);
        }
        let best = das.best(layers.len());
        let final_cost = PerfModel::cost(
            &PerfModel::evaluate(&best, &layers, &target),
            &target,
            &CostWeights::default(),
        );
        assert!(
            final_cost < early,
            "DAS should beat its early average: {final_cost} vs {early}"
        );
    }

    #[test]
    fn das_entropy_decreases() {
        let net = vanilla(4, 12, 12, 32, 0);
        let layers = net.layer_descs();
        let target = FpgaTarget::zc706();
        let mut das = DasEngine::new(DasConfig::default(), 5);
        let h0 = das.mean_entropy();
        for _ in 0..200 {
            let _ = das.step(&layers, &target);
        }
        assert!(das.mean_entropy() < h0);
    }

    #[test]
    fn das_final_design_respects_dsp_budget() {
        let net = resnet(14, 4, 12, 12, 8, 32, 0);
        let layers = net.layer_descs();
        let target = FpgaTarget::zc706();
        let mut das = DasEngine::new(DasConfig::default(), 7);
        let best = das.run(&layers, &target, 400);
        let report = PerfModel::evaluate(&best, &layers, &target);
        assert!(
            report.feasible,
            "resource penalty should drive the search feasible: {report:?}"
        );
    }

    #[test]
    fn deeper_network_reuses_prefix_of_phi() {
        let target = FpgaTarget::zc706();
        let shallow = vanilla(4, 12, 12, 32, 0).layer_descs();
        let deep = resnet(14, 4, 12, 12, 8, 32, 0).layer_descs();
        let mut das = DasEngine::new(DasConfig::default(), 9);
        let _ = das.step(&shallow, &target);
        let _ = das.step(&deep, &target);
        let a = das.best(shallow.len());
        let b = das.best(deep.len());
        assert_eq!(a.chunks, b.chunks, "chunk knobs are shared");
        assert_eq!(a.assignment.len(), shallow.len());
        assert_eq!(b.assignment.len(), deep.len());
    }

    #[test]
    fn decoded_assignments_are_contiguous() {
        let net = vanilla(4, 12, 12, 32, 0);
        let layers = net.layer_descs();
        let target = FpgaTarget::zc706();
        let mut das = DasEngine::new(DasConfig::default(), 13);
        for _ in 0..25 {
            let _ = das.step(&layers, &target);
            assert!(das.best(layers.len()).assignment_contiguous());
        }
    }

    #[test]
    fn das_is_deterministic_given_seed() {
        let net = vanilla(4, 12, 12, 32, 0);
        let layers = net.layer_descs();
        let target = FpgaTarget::zc706();
        let run = |seed| {
            let mut das = DasEngine::new(DasConfig::default(), seed);
            das.run(&layers, &target, 100)
        };
        assert_eq!(run(11), run(11));
        // Different seeds explore differently (overwhelmingly likely).
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn das_with_and_without_cache_are_bit_identical() {
        // The cost cache must be pure acceleration: any deviation in a
        // cached cost would perturb the gradient stream and diverge the
        // runs, so equal final state proves bit-identity end to end.
        let net = vanilla(4, 12, 12, 32, 0);
        let layers = net.layer_descs();
        let target = FpgaTarget::zc706();
        let mut cached = DasEngine::new(DasConfig::default(), 17);
        let mut direct = DasEngine::new(
            DasConfig {
                memo_log2: 0,
                ..DasConfig::default()
            },
            17,
        );
        let best_cached = cached.run(&layers, &target, 150);
        let best_direct = direct.run(&layers, &target, 150);
        assert_eq!(best_cached, best_direct);
        assert_eq!(cached.export_state(), direct.export_state());
        // At 150 hot-temperature iterations the sampler rarely repeats an
        // exact (knobs, assignment) pair, so assert engagement rather
        // than hits — hit-rate behaviour is covered by the memo tests.
        let stats = cached.cache_stats().unwrap_or_default();
        assert!(stats.chunk_misses > 0, "cache never engaged: {stats:?}");
        assert_eq!(direct.cache_stats(), None);
    }

    #[test]
    fn best_choices_decode_to_best() {
        let net = vanilla(4, 12, 12, 32, 0);
        let layers = net.layer_descs();
        let target = FpgaTarget::zc706();
        let mut das = DasEngine::new(DasConfig::default(), 23);
        let _ = das.run(&layers, &target, 50);
        let choices = das.best_choices(layers.len());
        assert_eq!(
            das.config().space.decode(
                das.config().num_chunks,
                layers.len(),
                &choices
            ),
            das.best(layers.len())
        );
    }

    #[test]
    #[should_panic(expected = "deeper")]
    fn exceeding_max_layers_panics() {
        let das = DasEngine::new(
            DasConfig {
                max_layers: 2,
                ..DasConfig::default()
            },
            0,
        );
        let _ = das.decode(&[], 3);
    }
}
