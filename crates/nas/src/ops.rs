//! The candidate operator set of the A3C-S supernet.
//!
//! The paper (Section V-A) searches over: standard convolutions with
//! kernel 3/5, inverted residual blocks with kernel 3/5 × channel
//! expansion 1/3/5, and a skip connection — 9 choices per cell.

use a3cs_nn::{BatchNorm2d, Conv2d, InvertedResidual, Module, Relu, Sequential};

/// One candidate operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpChoice {
    /// Standard convolution with square `kernel` (+BN+ReLU).
    Conv {
        /// Kernel size (3 or 5).
        kernel: usize,
    },
    /// Inverted residual block with `kernel` and channel `expansion`.
    InvertedResidual {
        /// Depthwise kernel size (3 or 5).
        kernel: usize,
        /// Channel expansion factor (1, 3 or 5).
        expansion: usize,
    },
    /// Skip connection (identity, or a 1×1 projection when the shape
    /// changes).
    Skip,
}

impl std::fmt::Display for OpChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            OpChoice::Conv { kernel } => write!(f, "conv{kernel}x{kernel}"),
            OpChoice::InvertedResidual { kernel, expansion } => {
                write!(f, "ir_k{kernel}_e{expansion}")
            }
            OpChoice::Skip => write!(f, "skip"),
        }
    }
}

/// The 9 candidate operators, in the canonical `α`-index order.
pub const ALL_OPS: [OpChoice; 9] = [
    OpChoice::Conv { kernel: 3 },
    OpChoice::Conv { kernel: 5 },
    OpChoice::InvertedResidual {
        kernel: 3,
        expansion: 1,
    },
    OpChoice::InvertedResidual {
        kernel: 3,
        expansion: 3,
    },
    OpChoice::InvertedResidual {
        kernel: 3,
        expansion: 5,
    },
    OpChoice::InvertedResidual {
        kernel: 5,
        expansion: 1,
    },
    OpChoice::InvertedResidual {
        kernel: 5,
        expansion: 3,
    },
    OpChoice::InvertedResidual {
        kernel: 5,
        expansion: 5,
    },
    OpChoice::Skip,
];

/// Size of the supernet search space: `ops ^ cells`, reported as `f64`
/// because the paper's full-scale space (`9^12`) overflows small integers
/// when combined with the accelerator space.
#[must_use]
pub fn search_space_size(num_ops: usize, num_cells: usize) -> f64 {
    (num_ops as f64).powi(num_cells as i32)
}

/// Instantiate `choice` as a module mapping `in_ch → out_ch` at `stride`.
///
/// Skip connections become an empty pass-through when the shape is
/// preserved and a 1×1 projection (conv+BN) otherwise.
///
/// # Panics
///
/// Panics if channel counts or stride are zero.
#[must_use]
pub fn build_op(
    choice: OpChoice,
    name: &str,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    seed: u64,
) -> Box<dyn Module> {
    match choice {
        OpChoice::Conv { kernel } => Box::new(
            Sequential::new()
                .push(Conv2d::new(
                    &format!("{name}.conv{kernel}"),
                    in_ch,
                    out_ch,
                    kernel,
                    stride,
                    kernel / 2,
                    false,
                    seed,
                ))
                .push(BatchNorm2d::new(&format!("{name}.bn"), out_ch))
                .push(Relu::new()),
        ),
        OpChoice::InvertedResidual { kernel, expansion } => Box::new(InvertedResidual::new(
            name, in_ch, out_ch, kernel, stride, expansion, seed,
        )),
        OpChoice::Skip => {
            if in_ch == out_ch && stride == 1 {
                Box::new(Sequential::new())
            } else {
                Box::new(
                    Sequential::new()
                        .push(Conv2d::new(
                            &format!("{name}.skip_proj"),
                            in_ch,
                            out_ch,
                            1,
                            stride,
                            0,
                            false,
                            seed,
                        ))
                        .push(BatchNorm2d::new(&format!("{name}.skip_bn"), out_ch)),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_nn::FeatureShape;
    use a3cs_tensor::{Tape, Tensor};

    #[test]
    fn paper_search_space_size() {
        // 9 ops, 12 cells => 9^12 ≈ 2.8e11 network choices.
        let size = search_space_size(ALL_OPS.len(), 12);
        assert!((2.8e11..2.9e11).contains(&size));
    }

    #[test]
    fn all_ops_are_distinct() {
        for i in 0..ALL_OPS.len() {
            for j in (i + 1)..ALL_OPS.len() {
                assert_ne!(ALL_OPS[i], ALL_OPS[j]);
            }
        }
    }

    #[test]
    fn every_op_preserves_expected_output_shape() {
        for &choice in &ALL_OPS {
            for (in_ch, out_ch, stride) in [(8, 8, 1), (8, 16, 2)] {
                let op = build_op(choice, "t", in_ch, out_ch, stride, 1);
                let tape = Tape::new();
                let x = tape.leaf(Tensor::randn(&[1, in_ch, 8, 8], 0.3, 2));
                let y = op.forward(&tape, &x, true);
                let hw = if stride == 2 { 4 } else { 8 };
                assert_eq!(
                    y.shape(),
                    vec![1, out_ch, hw, hw],
                    "{choice} {in_ch}->{out_ch} s{stride}"
                );
            }
        }
    }

    #[test]
    fn identity_skip_has_no_params() {
        let skip = build_op(OpChoice::Skip, "t", 8, 8, 1, 0);
        assert_eq!(skip.param_count(), 0);
        let proj = build_op(OpChoice::Skip, "t", 8, 16, 2, 0);
        assert!(proj.param_count() > 0);
    }

    #[test]
    fn describes_compose_with_feature_shapes() {
        for &choice in &ALL_OPS {
            let op = build_op(choice, "t", 4, 8, 2, 3);
            let (descs, out) = op.describe(FeatureShape::image(4, 8, 8));
            assert_eq!(out, FeatureShape::image(8, 4, 4), "{choice}");
            if choice != OpChoice::Skip {
                assert!(!descs.is_empty(), "{choice} should expose compute layers");
            }
        }
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(ALL_OPS[0].to_string(), "conv3x3");
        assert_eq!(ALL_OPS[4].to_string(), "ir_k3_e5");
        assert_eq!(ALL_OPS[8].to_string(), "skip");
    }
}
