//! Checkpoint durability benchmark: full frames vs delta+compressed
//! frames on the checkpoints a real co-search actually produces.
//!
//! Phase 1 runs a tiny co-search in delta mode with a long chain budget
//! and kills it after 50 post-base checkpoint boundaries, leaving one
//! base frame plus 50 delta frames on disk. Phase 2 replays that chain
//! to recover the 51 real parameter payloads, then re-persists the same
//! sequence through both store formats into fresh directories:
//!
//! * **full** — the legacy format, one sealed full payload per iteration
//!   (what solo runs write by default);
//! * **delta** — one compressed base frame plus 50 compressed XOR delta
//!   frames (the fleet-default incremental format).
//!
//! Save and recover legs are wall-clocked, byte totals are measured from
//! the sealed on-disk sizes, and both recoveries must reproduce the final
//! payload bit-for-bit. The steady-state byte reduction (mean full frame
//! over mean delta frame) carries a 5x acceptance floor.
//!
//! Emits `BENCH_ckpt.json` in the working directory.
//!
//! ```sh
//! cargo run --release -p a3cs-bench --bin bench_ckpt
//! ```

use a3cs_bench::report::{or_exit, status, warn};
use a3cs_core::{CheckpointFormat, CoSearch, CoSearchConfig, FaultPlan};
use a3cs_drl::{
    apply_delta_frame, decode_base_frame, encode_base_frame, encode_delta_frame, fnv1a64,
    unseal_envelope_bytes, CheckpointCodec, CheckpointStore, StdIo,
};
use a3cs_envs::{Breakout, Environment};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Delta frames captured from the real run (iterations 1..=DELTAS).
const DELTAS: usize = 50;
/// Acceptance floor on the steady-state full/delta byte ratio.
const MIN_STEADY_REDUCTION: f64 = 5.0;
/// Seed for the payload-producing co-search.
const SEED: u64 = 29;

#[derive(Serialize)]
struct CkptBench {
    frames: usize,
    payload_bytes: usize,
    full_bytes: u64,
    delta_bytes: u64,
    delta_base_bytes: u64,
    delta_frame_bytes: u64,
    full_save_ms: f64,
    delta_save_ms: f64,
    full_recover_ms: f64,
    delta_recover_ms: f64,
    overall_reduction: f64,
    steady_state_reduction: f64,
    compression_ratio: f64,
    bit_identical: bool,
}

fn factory(seed: u64) -> Box<dyn Environment> {
    Box::new(Breakout::new(seed))
}

fn bench_dir(leg: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("a3cs_bench_ckpt_{}_{leg}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Read a store file and strip its envelope, exiting on any damage — the
/// chain was written moments ago by a healthy run.
fn read_frame(path: &Path) -> Vec<u8> {
    let sealed = or_exit(std::fs::read(path));
    or_exit(unseal_envelope_bytes(&sealed).map(<[u8]>::to_vec))
}

fn main() {
    // Phase 1: a real co-search writes the chain this bench measures.
    let source = bench_dir("source");
    let mut cfg = CoSearchConfig::tiny(3, 12, 12, 3);
    cfg.total_steps = 100_000; // never reached: the abort ends the run
    cfg.eval_every = 1_000_000; // skip evals, every iteration is a boundary
    cfg.fault.checkpoint_dir = Some(source.clone());
    cfg.fault.keep = 4;
    cfg.fault.format = CheckpointFormat::Binary; // the fleet pairing: tail-growth layout keeps XOR sparse
    cfg.fault.durability.delta = true;
    cfg.fault.durability.max_chain_len = DELTAS + 8;
    cfg.fault.plan = FaultPlan::none().abort_at(DELTAS as u64 + 1);
    status(format!(
        "ckpt bench: running a co-search for {} checkpoint boundaries (base + {DELTAS} deltas)\n",
        DELTAS + 1
    ));
    let mut search = or_exit(CoSearch::try_new(cfg, SEED));
    if search.run_guarded(&factory, None).is_ok() {
        warn("the payload run finished before its abort fired");
        std::process::exit(1);
    }

    // Phase 2: replay the chain into the real payload sequence.
    let store = CheckpointStore::new(source.clone(), 64);
    let bases = store.candidates();
    let Some(&(base_iter, ref base_path)) = bases.last() else {
        warn("the payload run left no base frame");
        std::process::exit(1);
    };
    let base_payload = or_exit(decode_base_frame(&read_frame(base_path)));
    let chain_id = fnv1a64(&base_payload);
    let mut payloads = vec![base_payload];
    for (position, (_, delta_path)) in store.delta_candidates().iter().enumerate() {
        if payloads.len() > DELTAS {
            break;
        }
        let parent = &payloads[payloads.len() - 1];
        let target = or_exit(apply_delta_frame(
            &read_frame(delta_path),
            parent,
            chain_id,
            position as u32 + 1,
        ));
        payloads.push(target);
    }
    if payloads.len() != DELTAS + 1 {
        warn(format!(
            "expected base + {DELTAS} deltas from iteration {base_iter}, replayed {}",
            payloads.len()
        ));
        std::process::exit(1);
    }
    let payload_bytes = payloads[0].len();
    status(format!(
        "ckpt bench: replayed {} real payloads of {payload_bytes} bytes each\n",
        payloads.len()
    ));

    // Phase 3: full-format leg — one sealed full payload per iteration.
    let full_dir = bench_dir("full");
    let full_store = CheckpointStore::new(full_dir.clone(), DELTAS + 8);
    let mut io = StdIo;
    let mut full_bytes = 0u64;
    let t0 = Instant::now();
    for (iteration, payload) in payloads.iter().enumerate() {
        or_exit(full_store.write_with(&mut io, iteration as u64, payload));
        full_bytes += payload.len() as u64 + 36; // sealed = payload + envelope header
    }
    let full_save_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Phase 4: delta leg — compressed base, then compressed XOR deltas.
    let delta_dir = bench_dir("delta");
    let delta_store = CheckpointStore::new(delta_dir.clone(), DELTAS + 8);
    let codec = CheckpointCodec::RleZero;
    let t0 = Instant::now();
    let (_, delta_base_bytes) =
        or_exit(delta_store.write_base_frame(&mut io, 0, &encode_base_frame(&payloads[0], codec)));
    let mut delta_frame_bytes = 0u64;
    for (i, pair) in payloads.windows(2).enumerate() {
        let frame = encode_delta_frame(&pair[0], &pair[1], chain_id, i as u32 + 1, i as u64, codec);
        let (_, sealed) = or_exit(delta_store.write_delta_frame(&mut io, i as u64 + 1, &frame));
        delta_frame_bytes += sealed;
    }
    let delta_save_ms = t0.elapsed().as_secs_f64() * 1e3;
    let delta_bytes = delta_base_bytes + delta_frame_bytes;

    // Phase 5: recover both legs, bit-compare against the final payload.
    let t0 = Instant::now();
    let full_recovery = full_store.recover();
    let full_recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let delta_recovery = delta_store.recover_checkpoint();
    let delta_recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    let tip = &payloads[DELTAS]; // length was validated to DELTAS + 1 above
    let bit_identical = full_recovery.checkpoint.as_ref().map(|(_, p)| p) == Some(tip)
        && delta_recovery.checkpoint.as_ref().map(|(_, p)| p) == Some(tip);

    let frames = payloads.len();
    let overall_reduction = full_bytes as f64 / delta_bytes as f64;
    let steady_state_reduction =
        (full_bytes as f64 / frames as f64) / (delta_frame_bytes as f64 / DELTAS as f64);
    let compression_ratio = (frames * payload_bytes) as f64 / delta_bytes as f64;

    status(format!(
        "full  {full_bytes:>10} B  save {full_save_ms:7.1} ms  recover {full_recover_ms:6.1} ms"
    ));
    status(format!(
        "delta {delta_bytes:>10} B  save {delta_save_ms:7.1} ms  recover {delta_recover_ms:6.1} ms"
    ));
    status(format!(
        "reduction {overall_reduction:.1}x overall, {steady_state_reduction:.1}x steady-state \
         ({delta_frame_bytes} B across {DELTAS} deltas)   bit-identical {bit_identical}"
    ));

    let bench = CkptBench {
        frames,
        payload_bytes,
        full_bytes,
        delta_bytes,
        delta_base_bytes,
        delta_frame_bytes,
        full_save_ms,
        delta_save_ms,
        full_recover_ms,
        delta_recover_ms,
        overall_reduction,
        steady_state_reduction,
        compression_ratio,
        bit_identical,
    };
    match serde_json::to_string_pretty(&bench) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_ckpt.json", json + "\n") {
                warn(format!("cannot write BENCH_ckpt.json: {e}"));
            } else {
                status("\n(results written to BENCH_ckpt.json)");
            }
        }
        Err(e) => warn(format!("cannot serialise results: {e}")),
    }

    std::fs::remove_dir_all(&source).ok();
    std::fs::remove_dir_all(&full_dir).ok();
    std::fs::remove_dir_all(&delta_dir).ok();

    assert!(bit_identical, "recovered payloads diverged from the chain tip");
    assert!(
        steady_state_reduction >= MIN_STEADY_REDUCTION,
        "steady-state reduction {steady_state_reduction:.2}x below the {MIN_STEADY_REDUCTION}x floor"
    );
}
