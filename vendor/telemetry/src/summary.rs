//! The in-memory aggregation surfaced on `CoSearchResult`: per-phase
//! timings, counters, gauges, event counts and pool utilization, cheap to
//! clone and compare.

use crate::PoolWorkerStats;
use std::fmt::Write as _;

/// Aggregated timing for all spans sharing one name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Span name (e.g. `"rollout"`).
    pub name: String,
    /// Number of spans with this name.
    pub calls: u64,
    /// Sum of their wall-clock durations.
    pub total_ns: u64,
}

/// Aggregated view of one telemetry collection window. Attached to
/// `CoSearchResult` (empty when telemetry was disabled); the run itself is
/// bit-identical either way — this field is observe-only.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySummary {
    /// Wall-clock extent covered by recorded spans (max end − min begin).
    pub wall_ns: u64,
    /// Per-phase aggregates, sorted by phase name.
    pub phases: Vec<PhaseStat>,
    /// Non-zero counters (name, value), in catalog order.
    pub counters: Vec<(String, u64)>,
    /// Set gauges (name, latest value), in catalog order.
    pub gauges: Vec<(String, f64)>,
    /// Instant-event counts (name, occurrences), sorted by name.
    pub events: Vec<(String, u64)>,
    /// Per-lane pool busy time and task counts.
    pub pool: Vec<PoolWorkerStats>,
}

impl TelemetrySummary {
    /// True when the window recorded nothing (e.g. telemetry was disabled).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.events.is_empty()
            && self.pool.is_empty()
    }

    /// Aggregate for the named phase, if any span with that name closed.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Value of the named counter (0 if absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |&(_, v)| v)
    }

    /// Latest value of the named gauge, if it was set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Number of instant events with the given name.
    #[must_use]
    pub fn event_count(&self, name: &str) -> u64 {
        self.events.iter().find(|(n, _)| n == name).map_or(0, |&(_, v)| v)
    }

    /// Multi-line human-readable rendering (for bench bins and logs).
    #[must_use]
    pub fn render(&self) -> String {
        if self.is_empty() {
            return "telemetry: (empty)".to_string();
        }
        let mut out = String::new();
        let _ = writeln!(out, "telemetry: wall {:.3} ms", self.wall_ns as f64 / 1e6);
        for p in &self.phases {
            let _ = writeln!(
                out,
                "  phase {:<16} {:>6} calls  {:>10.3} ms",
                p.name,
                p.calls,
                p.total_ns as f64 / 1e6
            );
        }
        for (name, value) in &self.counters {
            let _ = writeln!(out, "  counter {name} = {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "  gauge {name} = {value}");
        }
        for (name, n) in &self.events {
            let _ = writeln!(out, "  event {name} x{n}");
        }
        for w in &self.pool {
            let _ = writeln!(
                out,
                "  pool lane {} busy {:.3} ms over {} tasks",
                w.lane,
                w.busy_ns as f64 / 1e6,
                w.tasks
            );
        }
        out.pop();
        out
    }
}
