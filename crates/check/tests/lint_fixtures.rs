//! Golden tests for the determinism lint catalog (A3CS-L301..306).
//!
//! Each code gets a positive fixture (the hazard, mechanically caught)
//! and a negative fixture (the sanctioned alternative, silent). The
//! proof fixtures pin the token scanner's core guarantee: text inside
//! comments, string literals, doc examples and test regions is never
//! counted. Property tests at the bottom pin totality — the lexer and
//! scanner accept arbitrary bytes without panicking.

use a3cs_check::{codes, hits_to_report, scan_source, LintCategory, LintHit};
use proptest::prelude::*;

/// A non-checkpoint, non-exempt path: every category except LossyCast
/// is policed here.
const PLAIN: &str = "crates/core/src/pipeline.rs";
/// A checkpoint-serialization path: the only place LossyCast applies.
const CHECKPOINT: &str = "crates/core/src/checkpoint.rs";

fn categories(hits: &[LintHit]) -> Vec<LintCategory> {
    hits.iter().map(|h| h.category).collect()
}

fn all_are(hits: &[LintHit], want: LintCategory) {
    assert!(!hits.is_empty(), "expected {want:?} hits, got none");
    for h in hits {
        assert_eq!(h.category, want, "unexpected category in {hits:?}");
    }
}

#[test]
fn l301_nondet_collection_positive() {
    let hits = scan_source(
        PLAIN,
        include_str!("fixtures/l301_nondet_collection_pos.rs"),
    );
    all_are(&hits, LintCategory::NondeterministicCollection);
    assert_eq!(hits.len(), 6, "{hits:?}"); // 3× HashMap + 3× HashSet
    assert_eq!(hits[0].category.code(), codes::LINT_NONDET_COLLECTION);
}

#[test]
fn l301_nondet_collection_negative() {
    let hits = scan_source(
        PLAIN,
        include_str!("fixtures/l301_nondet_collection_neg.rs"),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn l302_wall_clock_positive() {
    let hits = scan_source(PLAIN, include_str!("fixtures/l302_wall_clock_pos.rs"));
    all_are(&hits, LintCategory::WallClock);
    // `use … SystemTime`, `Instant::now()`, `SystemTime::now()`.
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert_eq!(hits[0].category.code(), codes::LINT_WALL_CLOCK);
}

#[test]
fn l302_wall_clock_negative_and_exempt_paths() {
    let neg = include_str!("fixtures/l302_wall_clock_neg.rs");
    assert!(scan_source(PLAIN, neg).is_empty());
    // The same hazardous source is sanctioned on telemetry/bench/watchdog
    // surfaces.
    let pos = include_str!("fixtures/l302_wall_clock_pos.rs");
    for exempt in [
        "vendor/telemetry/src/lib.rs",
        "crates/bench/src/bin/fig1_training_curves.rs",
        "crates/core/src/supervision.rs",
    ] {
        assert!(
            scan_source(exempt, pos).is_empty(),
            "wall-clock should be exempt under {exempt}"
        );
    }
}

#[test]
fn l303_thread_spawn_positive() {
    let hits = scan_source(PLAIN, include_str!("fixtures/l303_thread_spawn_pos.rs"));
    all_are(&hits, LintCategory::ThreadSpawn);
    assert_eq!(hits.len(), 2, "{hits:?}"); // thread::spawn + thread::Builder
    assert_eq!(hits[0].category.code(), codes::LINT_THREAD_SPAWN);
}

#[test]
fn l303_thread_spawn_negative_and_exempt_paths() {
    let neg = include_str!("fixtures/l303_thread_spawn_neg.rs");
    assert!(scan_source(PLAIN, neg).is_empty());
    let pos = include_str!("fixtures/l303_thread_spawn_pos.rs");
    for exempt in ["vendor/threadpool/src/lib.rs", "crates/core/src/supervision.rs"] {
        assert!(
            scan_source(exempt, pos).is_empty(),
            "thread-spawn should be exempt under {exempt}"
        );
    }
}

#[test]
fn l304_ambient_rng_positive() {
    let hits = scan_source(PLAIN, include_str!("fixtures/l304_ambient_rng_pos.rs"));
    all_are(&hits, LintCategory::AmbientRng);
    // thread_rng, from_entropy, rand::random, RandomState.
    assert_eq!(hits.len(), 4, "{hits:?}");
    assert_eq!(hits[0].category.code(), codes::LINT_AMBIENT_RNG);
}

#[test]
fn l304_ambient_rng_negative() {
    let hits = scan_source(PLAIN, include_str!("fixtures/l304_ambient_rng_neg.rs"));
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn l305_lossy_cast_positive_only_in_checkpoint_paths() {
    let pos = include_str!("fixtures/l305_lossy_cast_pos.rs");
    let hits = scan_source(CHECKPOINT, pos);
    all_are(&hits, LintCategory::LossyCast);
    assert_eq!(hits.len(), 2, "{hits:?}"); // `as u32` + `as usize`
    assert_eq!(hits[0].category.code(), codes::LINT_LOSSY_CAST);
    // Identical source outside a checkpoint path is not policed.
    assert!(scan_source(PLAIN, pos).is_empty());
}

#[test]
fn l305_lossy_cast_negative() {
    let hits = scan_source(CHECKPOINT, include_str!("fixtures/l305_lossy_cast_neg.rs"));
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn l306_unsafe_block_positive() {
    let hits = scan_source(PLAIN, include_str!("fixtures/l306_unsafe_block_pos.rs"));
    all_are(&hits, LintCategory::UnsafeBlock);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].category.code(), codes::LINT_UNSAFE_BLOCK);
}

#[test]
fn l306_unsafe_block_negative_includes_waived_site() {
    let hits = scan_source(PLAIN, include_str!("fixtures/l306_unsafe_block_neg.rs"));
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn comments_strings_and_doc_examples_never_count() {
    let hits = scan_source(PLAIN, include_str!("fixtures/proof_comments_strings.rs"));
    assert!(hits.is_empty(), "{:?}", categories(&hits));
    // Even under the strictest path config.
    let hits = scan_source(CHECKPOINT, include_str!("fixtures/proof_comments_strings.rs"));
    assert!(hits.is_empty(), "{:?}", categories(&hits));
}

#[test]
fn cfg_test_and_mod_tests_regions_never_count() {
    let hits = scan_source(PLAIN, include_str!("fixtures/proof_cfg_test.rs"));
    assert!(hits.is_empty(), "{:?}", categories(&hits));
}

#[test]
fn hits_render_with_stable_codes_and_why_lines() {
    let hits = scan_source(PLAIN, include_str!("fixtures/l306_unsafe_block_pos.rs"));
    let report = hits_to_report(&hits);
    let json = report.to_json();
    assert!(json.contains(codes::LINT_UNSAFE_BLOCK), "{json}");
    assert!(json.contains("reviewed justification"), "{json}");
}

/// Fragments chosen to stress every tricky lexer path: unbalanced
/// quotes, stray backslashes, nested comment openers, raw-string fences,
/// char-vs-lifetime ambiguity and hazard keywords in odd positions.
fn hostile_fragments() -> Vec<&'static str> {
    vec![
        "\"", "'", "\\", "r#\"", "\"#", "r##\"", "/*", "*/", "//", "///", "//!", "b\"",
        "b'", "'a", "'\\''", "#[", "]", "{", "}", "(", ")", "::", "..", "0x", "1e",
        "0..10", "unsafe", "HashMap", "Instant", "now", "thread", "spawn", "as", "u32",
        "panic", "!", "unwrap", ".", "a3cs::allow(", "fn", "pub", "mod tests", "\n",
        " ", "\t", "é", "∂", "\u{0}",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer is total: arbitrary bytes (lossily decoded, as the lint
    /// driver does for on-disk files) never panic and always terminate.
    #[test]
    fn lexer_is_total_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        let src = String::from_utf8_lossy(&bytes);
        let lexed = a3cs_check::token::lex(&src);
        // Token spans must be sane.
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1);
            prop_assert!(!t.text.is_empty());
        }
    }

    /// Adversarial concatenations of lexer-hostile fragments are equally
    /// safe — and the full scanner inherits totality under both path
    /// configs.
    #[test]
    fn scanner_is_total_on_hostile_fragments(
        parts in prop::collection::vec(prop::sample::select(hostile_fragments()), 0..80),
    ) {
        let src = parts.concat();
        let _ = a3cs_check::token::lex(&src);
        let _ = scan_source(PLAIN, &src);
        let _ = scan_source(CHECKPOINT, &src);
    }

    /// Quoting any source as a Rust string literal must silence every
    /// hit: literal interiors are never scanned.
    #[test]
    fn string_quoting_silences_all_hits(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "HashMap", "Instant::now()", "thread::spawn", "thread_rng()",
                "unsafe", "x as u32", ".unwrap()", "panic!", "SystemTime",
                "from_entropy", "todo!()", " ", ":",
            ]),
            0..30,
        ),
    ) {
        let quoted = format!("pub fn f() {{ let _ = {:?}; }}", parts.concat());
        let hits = scan_source(CHECKPOINT, &quoted);
        prop_assert!(hits.is_empty(), "{hits:?} from {quoted}");
    }
}
