//! Proof fixture: hazards confined to test regions — a `#[cfg(test)]`
//! item and a bare `mod tests { … }` — must report ZERO hits.
pub fn shipped() -> u32 {
    42
}

#[cfg(test)]
fn helper_with_hazards() {
    let m = std::collections::HashMap::new();
    let _ = m.get("k").unwrap();
    let _ = std::time::Instant::now();
}

#[cfg(test)]
mod unit {
    #[test]
    fn spawns_and_rolls() {
        let h = std::thread::spawn(|| rand::thread_rng().gen::<u8>());
        h.join().expect("joins");
        panic!("tests may panic freely");
    }
}

mod tests {
    pub fn bare_mod_tests_is_exempt_too() {
        let s = std::collections::HashSet::<u8>::new();
        assert!(s.is_empty(), "{}", unsafe { std::mem::size_of::<u8>() });
    }
}
