//! Demon Attack: hovering demons that swoop at the cannon.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::games::clamp;
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;
const PLAYER_ROW: isize = GRID as isize - 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DemonState {
    Hover,
    Swoop,
}

#[derive(Debug, Clone, Copy)]
struct Demon {
    row: isize,
    col: isize,
    dir: isize,
    state: DemonState,
}

/// Demon Attack stand-in: demons materialise in the upper field, hover in
/// jittery strafes, and periodically swoop at the cannon. Hovering demons
/// pay `+1`, swooping demons `+3` (they are the threat). Waves respawn
/// endlessly; a swooping demon reaching the cannon row on its column ends
/// the episode.
///
/// Actions: `0` no-op, `1` left, `2` right, `3` fire.
#[derive(Debug, Clone)]
pub struct DemonAttack {
    rng: StdRng,
    player: isize,
    demons: Vec<Demon>,
    shot: Option<(isize, isize)>,
    wave: u32,
    clock: u32,
    done: bool,
}

impl DemonAttack {
    /// Create a seeded Demon Attack game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        DemonAttack {
            rng: StdRng::seed_from_u64(seed),
            player: GRID as isize / 2,
            demons: Vec::new(),
            shot: None,
            wave: 0,
            clock: 0,
            done: true,
        }
    }

    fn spawn_wave(&mut self) {
        self.wave += 1;
        for _ in 0..4 {
            let dir = if self.rng.gen_bool(0.5) { 1 } else { -1 };
            self.demons.push(Demon {
                row: self.rng.gen_range(1..4),
                col: self.rng.gen_range(1..GRID as isize - 1),
                dir,
                state: DemonState::Hover,
            });
        }
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(4, GRID, GRID);
        canvas.paint(0, PLAYER_ROW, self.player, 1.0);
        for d in &self.demons {
            let plane = match d.state {
                DemonState::Hover => 1,
                DemonState::Swoop => 2,
            };
            canvas.paint(plane, d.row, d.col, 1.0);
        }
        if let Some((r, c)) = self.shot {
            canvas.paint(3, r, c, 1.0);
        }
        canvas.into_observation()
    }
}

impl Environment for DemonAttack {
    fn name(&self) -> &str {
        "DemonAttack"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (4, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        4
    }

    fn reset(&mut self) -> Vec<f32> {
        self.player = GRID as isize / 2;
        self.demons.clear();
        self.shot = None;
        self.wave = 0;
        self.clock = 0;
        self.done = false;
        self.spawn_wave();
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        self.clock += 1;
        match action {
            1 => self.player = clamp(self.player - 1, 0, GRID as isize - 1),
            2 => self.player = clamp(self.player + 1, 0, GRID as isize - 1),
            3 => {
                if self.shot.is_none() {
                    self.shot = Some((PLAYER_ROW - 1, self.player));
                }
            }
            _ => {}
        }

        let mut reward = 0.0f32;

        // Shot travels up 2 cells/step.
        if let Some((mut r, c)) = self.shot.take() {
            let mut live = true;
            for _ in 0..2 {
                if r < 0 {
                    live = false;
                    break;
                }
                if let Some(i) = self
                    .demons
                    .iter()
                    .position(|d| d.row == r && d.col == c)
                {
                    let demon = self.demons.swap_remove(i);
                    reward += match demon.state {
                        DemonState::Hover => 1.0,
                        DemonState::Swoop => 3.0,
                    };
                    live = false;
                    break;
                }
                r -= 1;
            }
            if live && r >= 0 {
                self.shot = Some((r, c));
            }
        }

        // Demon behaviour.
        let player = self.player;
        for d in &mut self.demons {
            match d.state {
                DemonState::Hover => {
                    d.col += d.dir;
                    if d.col <= 0 || d.col >= GRID as isize - 1 {
                        d.dir = -d.dir;
                    }
                }
                DemonState::Swoop => {
                    d.row += 1;
                    d.col += (player - d.col).signum();
                }
            }
        }
        // Periodically one hovering demon begins a swoop.
        if self.clock % 6 == 0 {
            if let Some(d) = self
                .demons
                .iter_mut()
                .find(|d| d.state == DemonState::Hover)
            {
                d.state = DemonState::Swoop;
            }
        }

        // A swooping demon reaching the bottom: fatal on the player's
        // column, otherwise it warps back up to hover.
        let mut fatal = false;
        for d in &mut self.demons {
            if d.row >= PLAYER_ROW {
                if d.col == player {
                    fatal = true;
                } else {
                    d.row = 1;
                    d.state = DemonState::Hover;
                }
            }
        }
        if fatal {
            self.done = true;
        }

        if self.demons.is_empty() {
            reward += 10.0;
            self.spawn_wave();
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("DemonAttack");
        w.rng(&self.rng);
        w.isize(self.player);
        w.usize(self.demons.len());
        for item in &self.demons {
            w.isize(item.row);
            w.isize(item.col);
            w.isize(item.dir);
            w.int(match item.state { DemonState::Hover => 0, DemonState::Swoop => 1 });
        }
        w.bool(self.shot.is_some());
        if let Some(item) = &self.shot {
            w.isize(item.0);
            w.isize(item.1);
        }
        w.u32(self.wave);
        w.u32(self.clock);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "DemonAttack")?;
        self.rng = r.rng()?;
        self.player = r.isize()?;
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(Demon { row: r.isize()?, col: r.isize()?, dir: r.isize()?, state: match r.int()? {
                0 => DemonState::Hover,
                1 => DemonState::Swoop,
                v => return Err(r.out_of_range(format!("unknown DemonState {v}"))),
            } });
        }
        self.demons = items;
        self.shot = if r.bool()? {
            Some((r.isize()?, r.isize()?))
        } else {
            None
        };
        self.wave = r.u32()?;
        self.clock = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(DemonAttack::new(151), DemonAttack::new(151), 300);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = DemonAttack::new(1);
        let total = random_rollout(&mut env, 1000, 19);
        assert!(total >= 0.0);
    }

    #[test]
    fn swooping_demons_pay_more() {
        let mut env = DemonAttack::new(2);
        let _ = env.reset();
        // Force a swoop directly above the shot path.
        env.demons[0].state = DemonState::Swoop;
        env.demons[0].row = PLAYER_ROW - 2;
        env.demons[0].col = env.player;
        env.shot = Some((PLAYER_ROW - 1, env.player));
        let out = env.step(0);
        assert!(out.reward >= 3.0, "swoop kill must pay 3, got {}", out.reward);
    }

    #[test]
    fn cleared_wave_respawns() {
        let mut env = DemonAttack::new(3);
        let _ = env.reset();
        env.demons.clear();
        let out = env.step(0);
        assert!(out.reward >= 10.0);
        assert!(!env.demons.is_empty());
    }
}
