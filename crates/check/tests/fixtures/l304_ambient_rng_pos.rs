//! Positive fixture: entropy-seeded randomness must fire A3CS-L304 —
//! `thread_rng`, `from_entropy`, `rand::random` and `RandomState` alike.
pub fn roll() -> (u8, u8, u64) {
    let mut rng = rand::thread_rng();
    let a = rng.gen_range(0..6);
    let fresh = StdRng::from_entropy().gen();
    let b = rand::random::<u8>();
    let hasher = std::collections::hash_map::RandomState::new();
    let _ = hasher;
    (a, b, fresh)
}
