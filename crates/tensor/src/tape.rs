//! The reverse-mode autodiff tape.

use crate::tensor::Tensor;
use crate::var::Var;
use std::cell::RefCell;
use std::rc::Rc;

/// Gradient contributions a backward closure sends to its parents:
/// `(parent node id, gradient tensor)` pairs.
pub(crate) type GradContributions = Vec<(usize, Tensor)>;

/// Backward function of one node: maps the node's output gradient to
/// gradient contributions for its parents.
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor) -> GradContributions>;

pub(crate) struct Node {
    pub(crate) value: Rc<Tensor>,
    pub(crate) grad: Option<Tensor>,
    pub(crate) backward: Option<BackwardFn>,
    /// Optional external gradient sink (used by `nn` parameters): when
    /// backward finishes, the node's gradient is accumulated into it.
    pub(crate) sink: Option<Rc<RefCell<Tensor>>>,
}

#[derive(Default)]
pub(crate) struct TapeInner {
    pub(crate) nodes: Vec<Node>,
}

/// A recording of differentiable operations.
///
/// Every [`Var`] belongs to exactly one tape. Operations on `Var`s append
/// nodes (value + backward closure) to the tape; [`Var::backward`] then
/// walks the tape in reverse creation order, accumulating gradients.
///
/// Tapes are cheap (`Rc`-backed) to clone; clones share the same recording.
///
/// # Example
///
/// ```
/// use a3cs_tensor::{Tape, Tensor};
///
/// let tape = Tape::new();
/// let a = tape.leaf(Tensor::scalar(3.0));
/// let b = tape.leaf(Tensor::scalar(4.0));
/// let c = a.mul(&b);
/// c.backward();
/// assert_eq!(a.grad().unwrap().item(), 4.0);
/// assert_eq!(b.grad().unwrap().item(), 3.0);
/// ```
#[derive(Clone, Default)]
pub struct Tape {
    pub(crate) inner: Rc<RefCell<TapeInner>>,
}

impl std::fmt::Debug for Tape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tape({} nodes)", self.len())
    }
}

impl Tape {
    /// Create an empty tape.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// `true` if no nodes have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record a leaf (input) node holding `value`. Its gradient is
    /// retrievable through [`Var::grad`] after a backward pass.
    #[must_use]
    pub fn leaf(&self, value: Tensor) -> Var {
        self.push(Rc::new(value), None, None)
    }

    /// Record a constant node: like a leaf, but never receives gradient
    /// storage of interest (its gradient is still computed and discarded).
    /// Semantically identical to [`Tape::leaf`]; exists for call-site clarity.
    #[must_use]
    pub fn constant(&self, value: Tensor) -> Var {
        self.leaf(value)
    }

    /// Record a parameter node: a leaf whose gradient is additionally
    /// accumulated into `sink` when a backward pass completes. The `nn`
    /// crate uses this to route gradients to optimiser state.
    #[must_use]
    pub fn param(&self, value: Tensor, sink: Rc<RefCell<Tensor>>) -> Var {
        self.push(Rc::new(value), None, Some(sink))
    }

    pub(crate) fn push(
        &self,
        value: Rc<Tensor>,
        backward: Option<BackwardFn>,
        sink: Option<Rc<RefCell<Tensor>>>,
    ) -> Var {
        let mut inner = self.inner.borrow_mut();
        let id = inner.nodes.len();
        inner.nodes.push(Node {
            value,
            grad: None,
            backward,
            sink,
        });
        Var {
            tape: self.clone(),
            id,
        }
    }

    pub(crate) fn value_of(&self, id: usize) -> Rc<Tensor> {
        Rc::clone(&self.inner.borrow().nodes[id].value)
    }

    pub(crate) fn same_tape(&self, other: &Tape) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }

    /// Run reverse-mode accumulation seeded with `seed` at node `root_id`.
    pub(crate) fn backward_from(&self, root_id: usize, seed: Tensor) {
        let mut inner = self.inner.borrow_mut();
        let n = root_id + 1;
        let mut grads: Vec<Option<Tensor>> = Vec::with_capacity(n);
        grads.resize_with(n, || None);
        assert_eq!(
            seed.shape(),
            inner.nodes[root_id].value.shape(),
            "backward seed shape must match the root value shape"
        );
        grads[root_id] = Some(seed);
        for id in (0..n).rev() {
            let Some(grad) = grads[id].take() else {
                continue;
            };
            if let Some(backward) = inner.nodes[id].backward.as_ref() {
                for (pid, contribution) in backward(&grad) {
                    assert!(pid < id, "gradient must flow to earlier nodes");
                    match grads[pid].as_mut() {
                        Some(existing) => existing.add_assign(&contribution),
                        None => grads[pid] = Some(contribution),
                    }
                }
            }
            let node = &mut inner.nodes[id];
            if let Some(sink) = node.sink.as_ref() {
                sink.borrow_mut().add_assign(&grad);
            }
            match node.grad.as_mut() {
                Some(existing) => existing.add_assign(&grad),
                None => node.grad = Some(grad),
            }
        }
    }

    pub(crate) fn grad_of(&self, id: usize) -> Option<Tensor> {
        self.inner.borrow().nodes[id].grad.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tape() {
        let tape = Tape::new();
        assert!(tape.is_empty());
        assert_eq!(tape.len(), 0);
        assert_eq!(format!("{tape:?}"), "Tape(0 nodes)");
    }

    #[test]
    fn leaves_record_in_order() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::scalar(1.0));
        let b = tape.leaf(Tensor::scalar(2.0));
        assert_eq!(a.id, 0);
        assert_eq!(b.id, 1);
        assert_eq!(tape.len(), 2);
    }

    #[test]
    fn clones_share_recording() {
        let tape = Tape::new();
        let clone = tape.clone();
        let _ = clone.leaf(Tensor::scalar(0.0));
        assert_eq!(tape.len(), 1);
        assert!(tape.same_tape(&clone));
        assert!(!tape.same_tape(&Tape::new()));
    }

    #[test]
    fn param_sink_accumulates_across_backward_passes() {
        let tape = Tape::new();
        let sink = Rc::new(RefCell::new(Tensor::zeros(&[])));
        let p = tape.param(Tensor::scalar(5.0), Rc::clone(&sink));
        let loss = p.mul(&p); // dL/dp = 2p = 10
        loss.backward();
        loss.backward();
        assert_eq!(sink.borrow().item(), 20.0);
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // y = x*x + x  => dy/dx = 2x + 1
        let tape = Tape::new();
        let x = tape.leaf(Tensor::scalar(3.0));
        let y = x.mul(&x).add(&x);
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 7.0);
    }
}
