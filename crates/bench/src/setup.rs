//! Shared experiment plumbing: game metadata, backbone construction,
//! teacher training and configured trainers.
//!
//! Everything that can fail on bad user input (game or backbone names from
//! the command line) returns a [`SetupError`] instead of panicking, so the
//! experiment binaries can exit with a readable diagnostic (see
//! [`crate::report::or_exit`]).

use crate::report::warn;
use crate::scale::Scale;
use a3cs_core::CoSearchConfig;
use a3cs_drl::{ActorCritic, DistillConfig, Trainer, TrainerConfig, TrainingCurve};
use a3cs_envs::{make_env, Environment};
use a3cs_nn::{resnet, vanilla, Backbone};
use std::fmt;

/// Why experiment setup failed: a name from the command line (or a table
/// constant) did not resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetupError {
    /// The game name is not in the environment registry.
    UnknownGame(String),
    /// The backbone name is not one of [`BACKBONES`].
    UnknownBackbone(String),
}

impl fmt::Display for SetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetupError::UnknownGame(name) => write!(f, "unknown game {name:?}"),
            SetupError::UnknownBackbone(name) => {
                write!(f, "unknown backbone {name:?}; one of {BACKBONES:?}")
            }
        }
    }
}

impl std::error::Error for SetupError {}

/// Static metadata of one game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GameInfo {
    /// Game name (registry key).
    pub name: &'static str,
    /// Observation planes.
    pub planes: usize,
    /// Observation height.
    pub height: usize,
    /// Observation width.
    pub width: usize,
    /// Action count.
    pub actions: usize,
}

/// Look up a game's observation/action signature by constructing it once.
///
/// # Errors
///
/// [`SetupError::UnknownGame`] if `name` is not registered.
pub fn game_info(name: &'static str) -> Result<GameInfo, SetupError> {
    let env = make_env(name, 0).map_err(|_| SetupError::UnknownGame(name.to_owned()))?;
    let (planes, height, width) = env.observation_shape();
    Ok(GameInfo {
        name,
        planes,
        height,
        width,
        actions: env.action_count(),
    })
}

/// An environment factory for `name`, suitable for trainers/evaluators.
/// The name is validated once up front; the returned closure cannot fail.
///
/// # Errors
///
/// [`SetupError::UnknownGame`] if `name` is not registered.
pub fn factory_for(
    name: &'static str,
) -> Result<impl Fn(u64) -> Box<dyn Environment>, SetupError> {
    let _ = game_info(name)?;
    Ok(move |seed| match make_env(name, seed) {
        Ok(env) => env,
        Err(e) => unreachable!("game {name:?} validated above: {e}"),
    })
}

/// The paper's five hand-designed backbones (Section V-A), in size order.
pub const BACKBONES: [&str; 5] = ["Vanilla", "ResNet-14", "ResNet-20", "ResNet-38", "ResNet-74"];

/// Feature dimensionality used across the reproduction (the paper uses
/// 256 at ALE scale).
pub const FEAT_DIM: usize = 32;

/// Width of the first ResNet group at reproduction scale.
pub const BASE_WIDTH: usize = 8;

/// Build one of the five named backbones for a game's observation shape.
///
/// # Errors
///
/// [`SetupError::UnknownBackbone`] if `kind` is not one of [`BACKBONES`].
pub fn build_backbone(kind: &str, info: &GameInfo, seed: u64) -> Result<Backbone, SetupError> {
    Ok(match kind {
        "Vanilla" => vanilla(info.planes, info.height, info.width, FEAT_DIM, seed),
        "ResNet-14" => resnet(14, info.planes, info.height, info.width, BASE_WIDTH, FEAT_DIM, seed),
        "ResNet-20" => resnet(20, info.planes, info.height, info.width, BASE_WIDTH, FEAT_DIM, seed),
        "ResNet-38" => resnet(38, info.planes, info.height, info.width, BASE_WIDTH, FEAT_DIM, seed),
        "ResNet-74" => resnet(74, info.planes, info.height, info.width, BASE_WIDTH, FEAT_DIM, seed),
        other => return Err(SetupError::UnknownBackbone(other.to_owned())),
    })
}

/// Wrap a backbone into an agent for `info`'s action space.
#[must_use]
pub fn agent_with(backbone: Backbone, info: &GameInfo, seed: u64) -> ActorCritic {
    ActorCritic::new(
        Box::new(backbone),
        FEAT_DIM,
        (info.planes, info.height, info.width),
        info.actions,
        seed,
    )
}

/// A trainer configuration following the paper's settings at `scale`.
#[must_use]
pub fn trainer_config(scale: &Scale, total_steps: u64) -> TrainerConfig {
    TrainerConfig {
        total_steps,
        eval_every: scale.eval_every(total_steps),
        eval_episodes: scale.eval_episodes,
        eval_max_steps: scale.eval_max_steps,
        episode_cap: scale.eval_max_steps,
        ..TrainerConfig::default()
    }
}

/// Train `kind` on `game` and return the agent plus its score curve.
/// `distill` optionally supplies `(mode, teacher)`.
///
/// # Errors
///
/// [`SetupError`] if the game or backbone name does not resolve.
pub fn train_backbone(
    game: &'static str,
    kind: &str,
    scale: &Scale,
    distill: Option<(&DistillConfig, &ActorCritic)>,
    seed: u64,
) -> Result<(ActorCritic, TrainingCurve), SetupError> {
    let info = game_info(game)?;
    let backbone = build_backbone(kind, &info, seed)?;
    let agent = agent_with(backbone, &info, seed.wrapping_add(1));
    let cfg = trainer_config(scale, scale.train_steps);
    let factory = factory_for(game)?;
    let curve = Trainer::new(cfg, seed.wrapping_add(2)).train(&agent, &factory, distill);
    Ok((agent, curve))
}

/// Train the paper's ResNet-20 teacher for `game`, caching the trained
/// weights under `results/teachers/` so the six experiment binaries share
/// one teacher per game and scale profile.
///
/// # Errors
///
/// [`SetupError::UnknownGame`] if `game` is not registered.
pub fn train_teacher(
    game: &'static str,
    scale: &Scale,
    seed: u64,
) -> Result<ActorCritic, SetupError> {
    let info = game_info(game)?;
    let backbone = build_backbone("ResNet-20", &info, seed)?;
    let agent = agent_with(backbone, &info, seed.wrapping_add(1));

    let cache_dir = std::path::Path::new("results").join("teachers");
    let cache = cache_dir.join(format!(
        "{game}_{}_{}_{}.json",
        scale.name, scale.teacher_steps, seed
    ));
    if let Ok(checkpoint) = a3cs_drl::Checkpoint::load(&cache) {
        if checkpoint.apply(&agent).is_ok() {
            return Ok(agent);
        }
    }

    let cfg = trainer_config(scale, scale.teacher_steps);
    let factory = factory_for(game)?;
    let _ = Trainer::new(cfg, seed.wrapping_add(2)).train(&agent, &factory, None);
    if std::fs::create_dir_all(&cache_dir).is_ok() {
        if let Err(e) = a3cs_drl::Checkpoint::capture(&agent).save(&cache) {
            warn(format!("cannot cache teacher to {}: {e}", cache.display()));
        }
    }
    Ok(agent)
}

/// A co-search configuration for `game` at `scale`.
///
/// # Errors
///
/// [`SetupError::UnknownGame`] if `game` is not registered.
pub fn cosearch_config(game: &'static str, scale: &Scale) -> Result<CoSearchConfig, SetupError> {
    let info = game_info(game)?;
    let mut cfg = CoSearchConfig::paper(info.planes, info.height, info.width, info.actions);
    cfg.supernet.feat_dim = FEAT_DIM;
    cfg.supernet.base_width = BASE_WIDTH;
    cfg.total_steps = scale.search_steps;
    cfg.eval_every = scale.eval_every(scale.search_steps);
    cfg.eval_episodes = scale.eval_episodes.min(10);
    cfg.eval_max_steps = scale.eval_max_steps;
    cfg.das_final_iters = scale.das_iters;
    // Anneal the Gumbel temperature over the scaled budget.
    cfg.supernet.temperature.every = (scale.search_steps / 80).max(1);
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::SMOKE;

    #[test]
    fn game_info_matches_env() {
        let info = game_info("Pong").expect("Pong exists");
        assert_eq!(info.actions, 3);
        assert_eq!(info.planes, 3);
    }

    #[test]
    fn unknown_names_are_reported_not_panicked() {
        assert_eq!(
            game_info("NotAGame"),
            Err(SetupError::UnknownGame("NotAGame".to_owned()))
        );
        let info = game_info("Pong").expect("Pong exists");
        let err = match build_backbone("ResNet-999", &info, 1) {
            Ok(_) => unreachable!("unknown backbone must be rejected"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("ResNet-999"));
        assert!(factory_for("NotAGame").is_err());
        assert!(cosearch_config("NotAGame", &SMOKE).is_err());
        assert!(train_backbone("NotAGame", "Vanilla", &SMOKE, None, 1).is_err());
    }

    #[test]
    fn all_backbones_build_for_all_games() {
        for game in ["Breakout", "Seaquest"] {
            let info = game_info(game).expect("known game");
            for kind in BACKBONES {
                let bb = build_backbone(kind, &info, 1).expect("known backbone");
                assert_eq!(bb.feat_dim(), FEAT_DIM, "{game}/{kind}");
            }
        }
    }

    #[test]
    fn backbone_sizes_are_ordered() {
        let info = game_info("Breakout").expect("known game");
        let macs: Vec<u64> = BACKBONES
            .iter()
            .map(|k| {
                build_backbone(k, &info, 1)
                    .expect("known backbone")
                    .total_macs()
            })
            .collect();
        for pair in macs.windows(2) {
            assert!(pair[0] < pair[1], "MACs must grow with depth: {macs:?}");
        }
    }

    #[test]
    fn smoke_training_runs() {
        let (_, curve) =
            train_backbone("Breakout", "Vanilla", &SMOKE, None, 5).expect("known names");
        assert!(!curve.points.is_empty());
    }

    #[test]
    fn cosearch_config_scales_with_profile() {
        let cfg = cosearch_config("Pong", &SMOKE).expect("known game");
        assert_eq!(cfg.total_steps, SMOKE.search_steps);
        assert_eq!(cfg.n_actions, 3);
    }
}
