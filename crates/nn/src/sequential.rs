//! Ordered composition of modules.

use crate::describe::{FeatureShape, LayerDesc};
use crate::module::Module;
use crate::param::Param;
use a3cs_tensor::{Tape, Var};

/// A chain of modules applied in order.
///
/// # Example
///
/// ```
/// use a3cs_nn::{Flatten, Linear, Module, Relu, Sequential};
/// use a3cs_tensor::{Tape, Tensor};
///
/// let net = Sequential::new()
///     .push(Flatten::new())
///     .push(Linear::new("fc1", 8, 4, 0))
///     .push(Relu::new())
///     .push(Linear::new("fc2", 4, 2, 1));
/// let tape = Tape::new();
/// let x = tape.leaf(Tensor::zeros(&[3, 2, 2, 2]));
/// assert_eq!(net.forward(&tape, &x, true).shape(), vec![3, 2]);
/// ```
#[derive(Default)]
pub struct Sequential {
    stages: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Create an empty chain.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a module, builder style.
    #[must_use]
    pub fn push(mut self, module: impl Module + 'static) -> Self {
        self.stages.push(Box::new(module));
        self
    }

    /// Append a boxed module in place.
    pub fn push_boxed(&mut self, module: Box<dyn Module>) {
        self.stages.push(module);
    }

    /// Number of stages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` when the chain has no stages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&self, tape: &Tape, x: &Var, train: bool) -> Var {
        let mut h = x.clone();
        for stage in &self.stages {
            h = stage.forward(tape, &h, train);
        }
        h
    }

    fn params(&self) -> Vec<Param> {
        self.stages.iter().flat_map(|s| s.params()).collect()
    }

    fn state(&self) -> Vec<Param> {
        self.stages.iter().flat_map(|s| s.state()).collect()
    }

    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape) {
        let mut descs = Vec::new();
        let mut shape = input;
        for stage in &self.stages {
            let (mut d, out) = stage.describe(shape);
            descs.append(&mut d);
            shape = out;
        }
        (descs, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Flatten, Linear, Relu};
    use a3cs_tensor::Tensor;

    #[test]
    fn empty_sequential_is_identity() {
        let net = Sequential::new();
        assert!(net.is_empty());
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[2, 3]));
        let y = net.forward(&tape, &x, true);
        assert_eq!(y.value().as_ref(), &Tensor::ones(&[2, 3]));
    }

    #[test]
    fn describe_propagates_shapes() {
        let net = Sequential::new()
            .push(Conv2d::new("c1", 2, 4, 3, 2, 1, false, 0))
            .push(Relu::new())
            .push(Flatten::new())
            .push(Linear::new("fc", 4 * 4 * 4, 10, 1));
        let (descs, out) = net.describe(FeatureShape::image(2, 8, 8));
        assert_eq!(descs.len(), 2); // conv + fc; relu/flatten fold away
        assert_eq!(out, FeatureShape::Flat { features: 10 });
    }

    #[test]
    fn params_concatenate_in_order() {
        let net = Sequential::new()
            .push(Linear::new("a", 2, 2, 0))
            .push(Linear::new("b", 2, 2, 1));
        let names: Vec<_> = net.params().iter().map(|p| p.name().to_owned()).collect();
        assert_eq!(names, ["a.weight", "a.bias", "b.weight", "b.bias"]);
    }

    #[test]
    fn gradients_flow_through_chain() {
        let net = Sequential::new()
            .push(Linear::new("a", 3, 3, 0))
            .push(Relu::new())
            .push(Linear::new("b", 3, 1, 1));
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[2, 3], 1.0, 9));
        net.forward(&tape, &x, true).sum().backward();
        for p in net.params() {
            // At least the weight matrices should see gradient mass.
            if p.name().ends_with("weight") {
                assert!(p.grad().sq_norm() > 0.0, "no grad on {}", p.name());
            }
        }
    }
}
