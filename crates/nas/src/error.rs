//! Structured errors for supernet/architecture construction.

use std::fmt;

/// Why a supernet configuration or derivation request is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NasError {
    /// `num_cells` is not a positive multiple of 3.
    InvalidCellCount {
        /// The offending cell count.
        num_cells: usize,
    },
    /// An operator-choice vector does not match the cell count.
    ChoiceArityMismatch {
        /// Cells in the plan.
        expected: usize,
        /// Choices provided.
        actual: usize,
    },
    /// A restored search state does not match the supernet's
    /// `(cells × ops)` logit shape.
    SearchStateShapeMismatch {
        /// Cells the supernet has.
        expected_cells: usize,
        /// Operators per cell the supernet has.
        expected_ops: usize,
        /// Cells found in the state.
        actual_cells: usize,
        /// Operators per cell found in the offending row.
        actual_ops: usize,
    },
}

impl fmt::Display for NasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NasError::InvalidCellCount { num_cells } => write!(
                f,
                "num_cells must be a positive multiple of 3 (3 groups), got {num_cells}"
            ),
            NasError::ChoiceArityMismatch { expected, actual } => write!(
                f,
                "need exactly one operator choice per cell: {expected} cells, {actual} choices"
            ),
            NasError::SearchStateShapeMismatch {
                expected_cells,
                expected_ops,
                actual_cells,
                actual_ops,
            } => write!(
                f,
                "search state shape {actual_cells}×{actual_ops} does not match \
                 the supernet's {expected_cells}×{expected_ops} α logits"
            ),
        }
    }
}

impl std::error::Error for NasError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_the_legacy_substrings() {
        let cell = NasError::InvalidCellCount { num_cells: 5 };
        assert!(cell
            .to_string()
            .contains("num_cells must be a positive multiple of 3 (3 groups)"));
        let arity = NasError::ChoiceArityMismatch {
            expected: 6,
            actual: 1,
        };
        assert!(arity.to_string().contains("one operator choice per cell"));
    }
}
