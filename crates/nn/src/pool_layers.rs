//! Windowed pooling layers (average and max), completing the layer
//! library beyond the paper's minimum operator set.

use crate::describe::{FeatureShape, LayerDesc};
use crate::module::Module;
use crate::param::Param;
use a3cs_tensor::{Tape, Var};

fn pooled_shape(input: FeatureShape, window: usize, stride: usize, what: &str) -> FeatureShape {
    assert!(
        !matches!(input, FeatureShape::Flat { .. }),
        "{what} needs an image input"
    );
    let FeatureShape::Image {
        channels,
        height,
        width,
    } = input
    else {
        // `FeatureShape` has exactly two variants and the assert above
        // rejected `Flat`.
        unreachable!()
    };
    assert!(
        height >= window && width >= window,
        "{what} window {window} does not fit {height}x{width}"
    );
    FeatureShape::image(
        channels,
        (height - window) / stride + 1,
        (width - window) / stride + 1,
    )
}

/// Windowed average pooling as a [`Module`].
#[derive(Debug, Clone, Copy)]
pub struct AvgPool2d {
    window: usize,
    stride: usize,
}

impl AvgPool2d {
    /// Create an average-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    #[must_use]
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(window > 0 && stride > 0, "pool dims must be positive");
        AvgPool2d { window, stride }
    }
}

impl Module for AvgPool2d {
    fn forward(&self, _tape: &Tape, x: &Var, _train: bool) -> Var {
        x.avg_pool2d(self.window, self.stride)
    }

    fn params(&self) -> Vec<Param> {
        Vec::new()
    }

    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape) {
        (
            Vec::new(),
            pooled_shape(input, self.window, self.stride, "avg pool"),
        )
    }
}

/// Windowed max pooling as a [`Module`].
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2d {
    window: usize,
    stride: usize,
}

impl MaxPool2d {
    /// Create a max-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    #[must_use]
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(window > 0 && stride > 0, "pool dims must be positive");
        MaxPool2d { window, stride }
    }
}

impl Module for MaxPool2d {
    fn forward(&self, _tape: &Tape, x: &Var, _train: bool) -> Var {
        x.max_pool2d(self.window, self.stride)
    }

    fn params(&self) -> Vec<Param> {
        Vec::new()
    }

    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape) {
        (
            Vec::new(),
            pooled_shape(input, self.window, self.stride, "max pool"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_tensor::Tensor;

    #[test]
    fn avg_pool_module_matches_describe() {
        let pool = AvgPool2d::new(2, 2);
        let (descs, out) = pool.describe(FeatureShape::image(3, 8, 8));
        assert!(descs.is_empty());
        assert_eq!(out, FeatureShape::image(3, 4, 4));
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[2, 3, 8, 8], 0.5, 1));
        assert_eq!(pool.forward(&tape, &x, true).shape(), vec![2, 3, 4, 4]);
    }

    #[test]
    fn max_pool_module_matches_describe() {
        let pool = MaxPool2d::new(3, 1);
        let (_, out) = pool.describe(FeatureShape::image(2, 6, 6));
        assert_eq!(out, FeatureShape::image(2, 4, 4));
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[1, 2, 6, 6], 0.5, 2));
        assert_eq!(pool.forward(&tape, &x, true).shape(), vec![1, 2, 4, 4]);
    }

    #[test]
    fn max_pool_dominates_avg_pool_pointwise() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[1, 1, 6, 6], 1.0, 3));
        let mx = MaxPool2d::new(2, 2).forward(&tape, &x, true);
        let av = AvgPool2d::new(2, 2).forward(&tape, &x, true);
        for (m, a) in mx.value().data().iter().zip(av.value().data().iter()) {
            assert!(m >= a);
        }
    }

    #[test]
    #[should_panic(expected = "needs an image input")]
    fn pooling_flat_input_panics() {
        let _ = AvgPool2d::new(2, 2).describe(FeatureShape::Flat { features: 8 });
    }
}
