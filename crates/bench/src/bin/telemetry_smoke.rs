//! Telemetry end-to-end smoke check: run a tiny co-search under a
//! [`telemetry::Session`], export the JSONL and Chrome traces into
//! `results/`, and validate what came out — every line parses as JSON with
//! a known record type, every co-search phase span is present, and the
//! kernel counters are non-zero. Exits nonzero on any failure, so
//! `scripts/check.sh` can use it as a gate.
//!
//! ```sh
//! cargo run --release -p a3cs-bench --bin telemetry_smoke
//! ```

use a3cs_bench::report::{or_exit, status, warn};
use a3cs_core::{CoSearch, CoSearchConfig};
use a3cs_envs::{Breakout, Environment};
use serde_json::Value;
use std::collections::BTreeMap;

/// The six per-iteration phases the co-search loop must trace (plus
/// "iteration"/"derive", which are asserted separately).
const PHASES: [&str; 6] = [
    "rollout",
    "loss_backward",
    "optimizer_step",
    "das_sweep",
    "eval",
    "checkpoint_io",
];

/// Record types the JSONL schema allows.
const RECORD_TYPES: [&str; 6] = ["span", "event", "counter", "gauge", "histogram", "pool_worker"];

fn factory(seed: u64) -> Box<dyn Environment> {
    Box::new(Breakout::new(seed))
}

fn fail(problems: &[String]) -> ! {
    for p in problems {
        warn(p);
    }
    std::process::exit(1);
}

fn main() {
    let mut cfg = CoSearchConfig::tiny(3, 12, 12, 3);
    cfg.total_steps = 300;
    cfg.eval_every = 100;
    cfg.eval_episodes = 2;
    cfg.eval_max_steps = 40;
    cfg.das_final_iters = 50;
    // Checkpoint to a throwaway dir so the checkpoint_io phase runs.
    let ckpt_dir = std::env::temp_dir().join(format!("a3cs_tsmoke_{}", std::process::id()));
    std::fs::remove_dir_all(&ckpt_dir).ok();
    cfg.fault.checkpoint_dir = Some(ckpt_dir.clone());
    cfg.fault.checkpoint_every = 2;

    status("telemetry smoke: tiny co-search under an active session\n");
    let session = telemetry::Session::start();
    let result = match or_exit(CoSearch::try_new(cfg, 42)).run_guarded(&factory, None) {
        Ok(r) => r,
        Err(e) => {
            let _ = session.finish();
            fail(&[format!("smoke co-search failed: {e}")]);
        }
    };
    let trace = session.finish();
    std::fs::remove_dir_all(&ckpt_dir).ok();

    let dir = a3cs_bench::report::results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        fail(&[format!("cannot create {}: {e}", dir.display())]);
    }
    let jsonl_path = dir.join("telemetry_smoke.jsonl");
    let chrome_path = dir.join("telemetry_smoke.trace.json");
    if let Err(e) = trace.write_jsonl(&jsonl_path) {
        fail(&[format!("cannot write {}: {e}", jsonl_path.display())]);
    }
    if let Err(e) = trace.write_chrome_trace(&chrome_path) {
        fail(&[format!("cannot write {}: {e}", chrome_path.display())]);
    }

    // Validate the JSONL dump line by line.
    let mut problems = Vec::new();
    let jsonl = match std::fs::read_to_string(&jsonl_path) {
        Ok(s) => s,
        Err(e) => fail(&[format!("cannot read back {}: {e}", jsonl_path.display())]),
    };
    let mut span_calls: BTreeMap<String, u64> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut lines = 0usize;
    for (i, line) in jsonl.lines().enumerate() {
        lines += 1;
        let v: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                problems.push(format!("line {}: not valid JSON: {e}", i + 1));
                continue;
            }
        };
        let ty = v["type"].as_str().unwrap_or("");
        if !RECORD_TYPES.contains(&ty) {
            problems.push(format!("line {}: unknown record type {ty:?}", i + 1));
            continue;
        }
        match ty {
            "span" => {
                let name = v["name"].as_str().unwrap_or("");
                let begin = v["begin_ns"].as_u64();
                let end = v["end_ns"].as_u64();
                match (begin, end) {
                    (Some(b), Some(e)) if e >= b => {}
                    _ => problems.push(format!("line {}: span {name:?} has bad timestamps", i + 1)),
                }
                *span_calls.entry(name.to_owned()).or_insert(0) += 1;
            }
            "counter" => {
                let name = v["name"].as_str().unwrap_or("");
                let value = v["value"].as_u64().unwrap_or(0);
                counters.insert(name.to_owned(), value);
            }
            _ => {}
        }
    }
    if lines == 0 {
        problems.push("JSONL dump is empty".to_owned());
    }

    for phase in PHASES {
        match span_calls.get(phase) {
            Some(&n) if n > 0 => {}
            _ => problems.push(format!("phase span {phase:?} missing from the trace")),
        }
    }
    let iterations = span_calls.get("iteration").copied().unwrap_or(0);
    if iterations == 0 {
        problems.push("no \"iteration\" spans in the trace".to_owned());
    }
    for counter in ["gemm.macs", "env.steps", "checkpoint.bytes"] {
        if counters.get(counter).copied().unwrap_or(0) == 0 {
            problems.push(format!("counter {counter:?} is zero or missing"));
        }
    }

    // The summary surfaced on the result must agree with the dump.
    if result.telemetry.is_empty() {
        problems.push("CoSearchResult.telemetry is empty despite an active session".to_owned());
    }

    if !problems.is_empty() {
        fail(&problems);
    }
    status(format!(
        "ok: {lines} JSONL records, {iterations} iterations, phases {:?}",
        PHASES
    ));
    status(format!(
        "traces written to {} and {}",
        jsonl_path.display(),
        chrome_path.display()
    ));
}
