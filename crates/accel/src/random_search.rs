//! Uniform random search over the accelerator space — the ablation
//! baseline for DAS.

use crate::memo::{CachedCostModel, CostModel};
use crate::predictor::{CostWeights, PerfModel};
use crate::space::SearchSpace;
use crate::template::AcceleratorConfig;
use crate::zc706::FpgaTarget;
use a3cs_nn::LayerDesc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random accelerator search: samples uniform configurations and keeps the
/// cheapest one.
pub struct RandomSearch {
    space: SearchSpace,
    num_chunks: usize,
    cost: CostWeights,
    rng: StdRng,
    best: Option<(AcceleratorConfig, f64)>,
    cache: Option<CachedCostModel>,
}

impl RandomSearch {
    /// Create a random search over `space` with `num_chunks` chunks.
    ///
    /// # Panics
    ///
    /// Panics if `num_chunks` is zero.
    #[must_use]
    pub fn new(space: SearchSpace, num_chunks: usize, cost: CostWeights, seed: u64) -> Self {
        assert!(num_chunks > 0, "need at least one chunk");
        RandomSearch {
            space,
            num_chunks,
            cost,
            rng: StdRng::seed_from_u64(seed),
            best: None,
            cache: None,
        }
    }

    /// Front the predictor with a transposition-table cost cache of
    /// `2^log2_entries` slots (bit-identical results; pure speedup on
    /// workloads that revisit candidates).
    #[must_use]
    pub fn with_cache(mut self, log2_entries: u32) -> Self {
        self.cache = Some(CachedCostModel::new(log2_entries));
        self
    }

    /// Sample one configuration, evaluate it, and track the best. Returns
    /// the sampled cost.
    ///
    /// Sampled assignments are sorted into contiguous chunk intervals
    /// (the only legal pipeline layouts), and designs that blow the DSP or
    /// BRAM budget are rejected and resampled — the legality predicates
    /// are `O(config)`, far cheaper than the predictor, so filtering them
    /// up front spends the sample budget on feasible points. A resampling
    /// cap keeps termination guaranteed on targets too tight for the
    /// space, in which case the last (infeasible) sample is evaluated and
    /// the predictor's resource penalty prices it.
    pub fn step(&mut self, layers: &[LayerDesc], target: &FpgaTarget) -> f64 {
        const MAX_RESAMPLES: usize = 64;
        let sizes = self.space.knob_sizes(self.num_chunks, layers.len());
        let split = self.space.chunk_knob_sizes().len() * self.num_chunks;
        let (space, num_chunks, rng) = (&self.space, self.num_chunks, &mut self.rng);
        let sample = |rng: &mut StdRng| {
            let mut choices: Vec<usize> = sizes.iter().map(|&s| rng.gen_range(0..s)).collect();
            choices[split..].sort_unstable();
            space.decode(num_chunks, layers.len(), &choices)
        };
        // Up to MAX_RESAMPLES - 1 feasibility-filtered draws, then one
        // final draw accepted unconditionally (the predictor's resource
        // penalty prices infeasible designs), so termination — and a
        // sample — is guaranteed without an `Option` in sight. The draw
        // sequence is identical to the historical filtered loop.
        let mut accel = sample(rng);
        let mut attempt = 1;
        while !accel.within_budget(target) && attempt < MAX_RESAMPLES {
            accel = sample(rng);
            attempt += 1;
        }
        let cost = match &mut self.cache {
            Some(cache) => {
                cache.begin(space, num_chunks, layers, target, &self.cost);
                cache.cost_config(&accel)
            }
            None => {
                let report = PerfModel::evaluate(&accel, layers, target);
                PerfModel::cost(&report, target, &self.cost)
            }
        };
        if self.best.as_ref().is_none_or(|(_, c)| cost < *c) {
            self.best = Some((accel, cost));
        }
        cost
    }

    /// Run `iters` samples and return the best configuration found.
    ///
    /// # Panics
    ///
    /// Panics if `iters` is zero.
    pub fn run(
        &mut self,
        layers: &[LayerDesc],
        target: &FpgaTarget,
        iters: usize,
    ) -> (AcceleratorConfig, f64) {
        assert!(iters > 0, "need at least one sample");
        for _ in 0..iters {
            let _ = self.step(layers, target);
        }
        match self.best.clone() {
            Some(best) => best,
            // `step` unconditionally seeds `best` on its first call and the
            // assert above guarantees at least one call.
            None => unreachable!("step() always records a best sample"),
        }
    }

    /// Best `(config, cost)` found so far, if any.
    #[must_use]
    pub fn best(&self) -> Option<&(AcceleratorConfig, f64)> {
        self.best.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_nn::vanilla;

    #[test]
    fn best_cost_is_monotone_in_iterations() {
        let net = vanilla(4, 12, 12, 32, 0);
        let layers = net.layer_descs();
        let target = FpgaTarget::zc706();
        let mut rs = RandomSearch::new(
            SearchSpace::default(),
            2,
            CostWeights::default(),
            1,
        );
        let (_, after_10) = rs.run(&layers, &target, 10);
        let (_, after_more) = rs.run(&layers, &target, 90);
        assert!(after_more <= after_10);
    }

    #[test]
    fn cached_random_search_matches_uncached() {
        let net = vanilla(4, 12, 12, 32, 0);
        let layers = net.layer_descs();
        let target = FpgaTarget::zc706();
        let space = SearchSpace::default();
        let mut plain = RandomSearch::new(space.clone(), 2, CostWeights::default(), 7);
        let mut cached =
            RandomSearch::new(space, 2, CostWeights::default(), 7).with_cache(10);
        let (best_p, cost_p) = plain.run(&layers, &target, 60);
        let (best_c, cost_c) = cached.run(&layers, &target, 60);
        assert_eq!(best_p, best_c);
        assert_eq!(cost_p.to_bits(), cost_c.to_bits());
    }

    #[test]
    fn sampled_configs_are_valid() {
        let net = vanilla(4, 12, 12, 32, 0);
        let layers = net.layer_descs();
        let target = FpgaTarget::zc706();
        let mut rs = RandomSearch::new(
            SearchSpace::default(),
            3,
            CostWeights::default(),
            2,
        );
        let (best, cost) = rs.run(&layers, &target, 20);
        assert!(best.assignment_valid());
        assert!(best.assignment_contiguous());
        assert!(best.within_budget(&target));
        assert_eq!(best.assignment.len(), layers.len());
        assert!(cost.is_finite());
    }
}
