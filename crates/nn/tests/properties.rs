//! Property tests for the nn crate: forward shapes must always agree with
//! `describe`, and gradient plumbing must reach every parameter.

use a3cs_nn::{
    resnet, vanilla, BasicBlock, Conv2d, FeatureShape, InvertedResidual, Linear, Module,
};
use a3cs_tensor::{Tape, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv_forward_matches_describe(
        in_ch in 1usize..5,
        out_ch in 1usize..6,
        kernel in prop::sample::select(vec![1usize, 3, 5]),
        stride in 1usize..3,
        hw in 6usize..14,
        batch in 1usize..3,
    ) {
        let conv = Conv2d::new("c", in_ch, out_ch, kernel, stride, kernel / 2, true, 0);
        let (descs, out) = conv.describe(FeatureShape::image(in_ch, hw, hw));
        prop_assert_eq!(descs.len(), 1);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[batch, in_ch, hw, hw], 0.3, 1));
        let y = conv.forward(&tape, &x, true);
        let FeatureShape::Image { channels, height, width } = out else {
            return Err(TestCaseError::fail("conv output must be an image"));
        };
        prop_assert_eq!(y.shape(), vec![batch, channels, height, width]);
    }

    #[test]
    fn linear_forward_matches_describe(
        in_f in 1usize..24,
        out_f in 1usize..16,
        batch in 1usize..5,
    ) {
        let lin = Linear::new("l", in_f, out_f, 0);
        let (_, out) = lin.describe(FeatureShape::Flat { features: in_f });
        prop_assert_eq!(out, FeatureShape::Flat { features: out_f });
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[batch, in_f], 0.3, 1));
        prop_assert_eq!(lin.forward(&tape, &x, true).shape(), vec![batch, out_f]);
    }

    #[test]
    fn basic_block_shape_consistency(
        in_ch in 2usize..6,
        widen in 1usize..3,
        stride in 1usize..3,
        hw in prop::sample::select(vec![6usize, 8, 10]),
    ) {
        let out_ch = in_ch * widen;
        let block = BasicBlock::new("b", in_ch, out_ch, stride, 3);
        let (_, shape) = block.describe(FeatureShape::image(in_ch, hw, hw));
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[1, in_ch, hw, hw], 0.3, 4));
        let y = block.forward(&tape, &x, true);
        let FeatureShape::Image { channels, height, width } = shape else {
            return Err(TestCaseError::fail("block output must be an image"));
        };
        prop_assert_eq!(y.shape(), vec![1, channels, height, width]);
    }

    #[test]
    fn inverted_residual_shape_consistency(
        kernel in prop::sample::select(vec![3usize, 5]),
        expansion in prop::sample::select(vec![1usize, 3, 5]),
        stride in 1usize..3,
    ) {
        let ir = InvertedResidual::new("ir", 4, 6, kernel, stride, expansion, 5);
        let (_, shape) = ir.describe(FeatureShape::image(4, 10, 10));
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[1, 4, 10, 10], 0.3, 6));
        let y = ir.forward(&tape, &x, true);
        let FeatureShape::Image { channels, height, width } = shape else {
            return Err(TestCaseError::fail("block output must be an image"));
        };
        prop_assert_eq!(y.shape(), vec![1, channels, height, width]);
    }

    #[test]
    fn backbone_macs_and_params_positive(depth in prop::sample::select(vec![14usize, 20, 38])) {
        let bb = resnet(depth, 3, 12, 12, 4, 16, 7);
        prop_assert!(bb.total_macs() > 0);
        prop_assert!(bb.param_count() > 0);
        prop_assert_eq!(bb.layer_descs().is_empty(), false);
    }

    #[test]
    fn every_weight_gets_gradient_from_scalar_loss(seed in 0u64..50) {
        let bb = vanilla(2, 10, 10, 8, seed);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[2, 2, 10, 10], 0.5, seed + 1));
        bb.forward(&tape, &x, true).square().sum().backward();
        for p in bb.params() {
            if p.name().ends_with("weight") {
                prop_assert!(p.grad().sq_norm() > 0.0, "no grad on {}", p.name());
            }
        }
    }
}
