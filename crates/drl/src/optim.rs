//! Optimisers (RMSProp, Adam), gradient clipping and the paper's
//! learning-rate schedule.

use a3cs_nn::Param;
use a3cs_tensor::Tensor;

/// A first-order optimiser over a fixed parameter list.
pub trait Optimizer {
    /// Apply one update using each parameter's accumulated gradient, then
    /// zero the gradients.
    fn step(&mut self, params: &[Param]);

    /// Override the learning rate (used by schedules).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;
}

/// RMSProp as used for DRL training in the paper (following DQN/A3C
/// practice): squared-gradient moving average, no momentum.
pub struct RmsProp {
    lr: f32,
    alpha: f32,
    eps: f32,
    square_avg: Vec<Tensor>,
}

impl RmsProp {
    /// Create RMSProp with the paper's defaults (`alpha = 0.99`,
    /// `eps = 1e-5`).
    #[must_use]
    pub fn new(lr: f32) -> Self {
        RmsProp {
            lr,
            alpha: 0.99,
            eps: 1e-5,
            square_avg: Vec::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, params: &[Param]) {
        if self.square_avg.len() != params.len() {
            self.square_avg = params
                .iter()
                .map(|p| Tensor::zeros(p.value().shape()))
                .collect();
        }
        for (p, s) in params.iter().zip(self.square_avg.iter_mut()) {
            let g = p.grad();
            for i in 0..g.len() {
                let gi = g.data()[i];
                let si = self.alpha * s.data()[i] + (1.0 - self.alpha) * gi * gi;
                s.data_mut()[i] = si;
                let delta = self.lr * gi / (si.sqrt() + self.eps);
                p.update(|t| t.data_mut()[i] -= delta);
            }
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Adam, used for the architecture parameters `α` (paper: fixed learning
/// rate `1e-3`, `β1 = 0.9`).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step_count: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Create Adam with `β = (0.9, 0.999)`, `eps = 1e-8`.
    #[must_use]
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &[Param]) {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value().shape()))
                .collect();
            self.v = self.m.clone();
        }
        self.step_count += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step_count as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step_count as i32);
        for ((p, m), v) in params.iter().zip(self.m.iter_mut()).zip(self.v.iter_mut()) {
            let g = p.grad();
            for i in 0..g.len() {
                let gi = g.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * gi;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * gi * gi;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                let delta = self.lr * mhat / (vhat.sqrt() + self.eps);
                p.update(|t| t.data_mut()[i] -= delta);
            }
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Rescale accumulated gradients so their global L2 norm is at most
/// `max_norm`. Returns the pre-clip norm.
pub fn clip_grad_norm(params: &[Param], max_norm: f32) -> f32 {
    let total: f32 = params.iter().map(|p| p.grad().sq_norm()).sum();
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            let scaled = p.grad().scale(scale);
            p.zero_grad();
            p_set_grad(p, scaled);
        }
    }
    norm
}

fn p_set_grad(p: &Param, grad: Tensor) {
    // Params expose gradient accumulation through backward passes only; for
    // clipping we zero and inject via a trivial tape pass.
    use a3cs_tensor::Tape;
    let tape = Tape::new();
    let v = p.bind(&tape);
    // d(sum(v * c))/dv = c, so seeding with `grad` as the constant works:
    v.backward_with(grad);
}

/// The paper's learning-rate schedule: constant for the first
/// `constant_steps`, then linear decay to `final_lr` at `total_steps`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrSchedule {
    /// Initial learning rate (paper: `1e-3`).
    pub initial_lr: f32,
    /// Final learning rate (paper: `1e-4`).
    pub final_lr: f32,
    /// Steps during which the LR stays at `initial_lr` (paper: first third).
    pub constant_steps: u64,
    /// Total training steps.
    pub total_steps: u64,
}

impl LrSchedule {
    /// Learning rate at `step`.
    #[must_use]
    pub fn at(&self, step: u64) -> f32 {
        if step <= self.constant_steps || self.total_steps <= self.constant_steps {
            return self.initial_lr;
        }
        let span = (self.total_steps - self.constant_steps) as f32;
        let progress = ((step - self.constant_steps) as f32 / span).min(1.0);
        self.initial_lr + (self.final_lr - self.initial_lr) * progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_tensor::Tape;

    fn quadratic_step(opt: &mut dyn Optimizer, p: &Param) {
        // loss = (p - 3)^2, minimised at p = 3.
        let tape = Tape::new();
        let v = p.bind(&tape);
        v.add_scalar(-3.0).square().sum().backward();
        opt.step(std::slice::from_ref(p));
    }

    #[test]
    fn rmsprop_minimises_quadratic() {
        let p = Param::new("p", Tensor::scalar(0.0));
        let mut opt = RmsProp::new(0.1);
        for _ in 0..200 {
            quadratic_step(&mut opt, &p);
        }
        assert!((p.value().item() - 3.0).abs() < 0.1, "got {}", p.value().item());
    }

    #[test]
    fn adam_minimises_quadratic() {
        let p = Param::new("p", Tensor::scalar(10.0));
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            quadratic_step(&mut opt, &p);
        }
        assert!((p.value().item() - 3.0).abs() < 0.1, "got {}", p.value().item());
    }

    #[test]
    fn optimizer_step_zeroes_gradients() {
        let p = Param::new("p", Tensor::scalar(1.0));
        let mut opt = RmsProp::new(0.01);
        quadratic_step(&mut opt, &p);
        assert_eq!(p.grad().item(), 0.0);
    }

    #[test]
    fn clip_grad_norm_bounds_large_gradients() {
        let p = Param::new("p", Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap());
        let tape = Tape::new();
        let v = p.bind(&tape);
        v.scale(100.0).sum().backward(); // grad = [100, 100]
        let pre = clip_grad_norm(&[p.clone()], 1.0);
        assert!(pre > 100.0);
        assert!((p.grad().sq_norm().sqrt() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients() {
        let p = Param::new("p", Tensor::scalar(0.0));
        let tape = Tape::new();
        p.bind(&tape).scale(0.5).sum().backward();
        let pre = clip_grad_norm(&[p.clone()], 10.0);
        assert!((pre - 0.5).abs() < 1e-6);
        assert!((p.grad().item() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn lr_schedule_constant_then_linear() {
        let sched = LrSchedule {
            initial_lr: 1e-3,
            final_lr: 1e-4,
            constant_steps: 100,
            total_steps: 200,
        };
        assert_eq!(sched.at(0), 1e-3);
        assert_eq!(sched.at(100), 1e-3);
        let mid = sched.at(150);
        assert!(mid < 1e-3 && mid > 1e-4);
        assert!((sched.at(200) - 1e-4).abs() < 1e-9);
        assert!((sched.at(10_000) - 1e-4).abs() < 1e-9);
    }
}
