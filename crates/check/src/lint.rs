//! Workspace lint engine: the panic-site ratchet plus the determinism
//! catalog that mechanically guards the bit-identity contract.
//!
//! [`scan_source`] runs the token-level scanner ([`crate::token`]) over
//! one file and reports [`LintHit`]s — comment, string-literal and
//! `#[cfg(test)]`/`mod tests` text can never produce a finding by
//! construction. Two families of lints are implemented:
//!
//! - **Panic hygiene** (`A3CS-L31x`): `unwrap`/`expect`/`panic!`/`todo!`/
//!   `unimplemented!` outside tests, and value-returning `&self` methods
//!   without `#[must_use]`.
//! - **Determinism** (`A3CS-L30x`): every pattern that can silently break
//!   the loop's bit-identity guarantee — nondeterministically ordered
//!   collections, wall-clock reads, raw thread spawns that bypass the
//!   deterministic pool, ambient (unseeded) RNG construction, lossy `as`
//!   casts in checkpoint-serialization paths, and an `unsafe` ratchet.
//!
//! Counts are compared against a committed allowlist of per-`(file,
//! category)` counts that can only ratchet *down*; individual sites with
//! a written justification can instead be waived in place with an
//! `// a3cs::allow(<category>): <reason>` comment on the finding's line
//! or the line above (reason required — unjustified waivers are inert).
//! The `lint` binary (`cargo run -p a3cs-check --bin lint`) drives this
//! over the workspace.

use crate::diag::{codes, Diagnostic, Report};
use crate::token::{lex, Tok, TokKind};
use std::collections::BTreeMap;

/// What a lint hit is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCategory {
    /// An `.unwrap()` call.
    Unwrap,
    /// An `.expect(...)` call.
    Expect,
    /// A `panic!` invocation.
    Panic,
    /// A `todo!` invocation.
    Todo,
    /// An `unimplemented!` invocation.
    Unimplemented,
    /// A value-returning `&self` method without `#[must_use]`.
    MissingMustUse,
    /// `HashMap`/`HashSet` in non-test code: iteration order is seeded
    /// per-process, so any traversal can reorder results between runs.
    NondeterministicCollection,
    /// A wall-clock read (`Instant::now`, `SystemTime`) outside the
    /// telemetry/watchdog surfaces.
    WallClock,
    /// A raw `std::thread` spawn outside the deterministic pool and the
    /// watchdog.
    ThreadSpawn,
    /// Ambient RNG construction (`thread_rng`, `from_entropy`,
    /// `RandomState`, `rand::random`) outside the seeded plumbing.
    AmbientRng,
    /// A numeric `as` cast inside a checkpoint-serialization path.
    LossyCast,
    /// An `unsafe` block or function.
    UnsafeBlock,
}

/// Every category, in report order.
pub const ALL_CATEGORIES: [LintCategory; 12] = [
    LintCategory::Unwrap,
    LintCategory::Expect,
    LintCategory::Panic,
    LintCategory::Todo,
    LintCategory::Unimplemented,
    LintCategory::MissingMustUse,
    LintCategory::NondeterministicCollection,
    LintCategory::WallClock,
    LintCategory::ThreadSpawn,
    LintCategory::AmbientRng,
    LintCategory::LossyCast,
    LintCategory::UnsafeBlock,
];

impl LintCategory {
    /// Stable name used in reports, the allowlist file and waivers.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LintCategory::Unwrap => "unwrap",
            LintCategory::Expect => "expect",
            LintCategory::Panic => "panic",
            LintCategory::Todo => "todo",
            LintCategory::Unimplemented => "unimplemented",
            LintCategory::MissingMustUse => "missing-must-use",
            LintCategory::NondeterministicCollection => "nondet-collection",
            LintCategory::WallClock => "wall-clock",
            LintCategory::ThreadSpawn => "thread-spawn",
            LintCategory::AmbientRng => "ambient-rng",
            LintCategory::LossyCast => "lossy-cast",
            LintCategory::UnsafeBlock => "unsafe-block",
        }
    }

    /// Stable diagnostic code (`A3CS-L3xx`) for JSON reports.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            LintCategory::NondeterministicCollection => codes::LINT_NONDET_COLLECTION,
            LintCategory::WallClock => codes::LINT_WALL_CLOCK,
            LintCategory::ThreadSpawn => codes::LINT_THREAD_SPAWN,
            LintCategory::AmbientRng => codes::LINT_AMBIENT_RNG,
            LintCategory::LossyCast => codes::LINT_LOSSY_CAST,
            LintCategory::UnsafeBlock => codes::LINT_UNSAFE_BLOCK,
            LintCategory::Unwrap => codes::LINT_UNWRAP,
            LintCategory::Expect => codes::LINT_EXPECT,
            LintCategory::Panic => codes::LINT_PANIC,
            LintCategory::Todo => codes::LINT_TODO,
            LintCategory::Unimplemented => codes::LINT_UNIMPLEMENTED,
            LintCategory::MissingMustUse => codes::LINT_MISSING_MUST_USE,
        }
    }

    /// One-line hazard statement printed with every diagnostic: *why*
    /// this pattern threatens the bit-identity contract.
    #[must_use]
    pub fn why(self) -> &'static str {
        match self {
            LintCategory::Unwrap | LintCategory::Expect => {
                "panics abort the loop mid-phase instead of surfacing a typed \
                 error the supervisor can retry"
            }
            LintCategory::Panic => {
                "explicit panics bypass the supervised retry/rollback machinery"
            }
            LintCategory::Todo | LintCategory::Unimplemented => {
                "stub paths abort at runtime on inputs the gate claims to accept"
            }
            LintCategory::MissingMustUse => {
                "a silently dropped result hides a skipped computation"
            }
            LintCategory::NondeterministicCollection => {
                "HashMap/HashSet iteration order is randomized per process, so \
                 any traversal reorders results between runs; use BTreeMap/\
                 BTreeSet or an index-ordered Vec"
            }
            LintCategory::WallClock => {
                "wall-clock reads in a result path make outputs depend on \
                 scheduling jitter; only telemetry and the stall watchdog may \
                 observe time"
            }
            LintCategory::ThreadSpawn => {
                "raw threads bypass the deterministic pool's fixed chunk \
                 partitioning and fixed-order reduction"
            }
            LintCategory::AmbientRng => {
                "entropy-seeded RNGs cannot replay; all randomness must flow \
                 from the run seed through the SplitMix64/StdRng streams"
            }
            LintCategory::LossyCast => {
                "numeric `as` casts truncate silently; checkpoint round-trips \
                 must be bit-exact (use to_bits/from_bits or try_from)"
            }
            LintCategory::UnsafeBlock => {
                "unsafe code can introduce UB-dependent nondeterminism; every \
                 block needs a reviewed justification"
            }
        }
    }

    /// Parse a stable name back into a category.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        ALL_CATEGORIES.iter().copied().find(|c| c.as_str() == name)
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintHit {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What was found.
    pub category: LintCategory,
}

impl LintHit {
    /// Render the hit as a diagnostic with its stable code and Why line.
    #[must_use]
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::warning(
            self.category.code(),
            format!(
                "{}:{}: {} — {}",
                self.file,
                self.line,
                self.category.as_str(),
                self.category.why()
            ),
        )
    }
}

/// Render hits as a [`Report`] (stable codes + Why lines), matching the
/// shape-check/legality JSON format.
#[must_use]
pub fn hits_to_report(hits: &[LintHit]) -> Report {
    let mut report = Report::new();
    for hit in hits {
        report.push(hit.to_diagnostic());
    }
    report
}

/// Per-`(file, category)` hit counts — the allowlist currency.
pub type LintCounts = BTreeMap<(String, String), usize>;

/// Checkpoint-serialization paths: the only files where [`LossyCast`]
/// applies. Everything else does float↔int arithmetic legitimately; these
/// files define the bits that land on disk.
///
/// [`LossyCast`]: LintCategory::LossyCast
const CHECKPOINT_PATHS: [&str; 4] = [
    "crates/core/src/checkpoint.rs",
    "crates/core/src/binfmt.rs",
    "crates/drl/src/checkpoint.rs",
    "crates/envs/src/state.rs",
];

/// Built-in per-category path exemptions: surfaces whose *job* is the
/// hazard in question. Everything here is documented in DESIGN.md §13.
fn exempt(relpath: &str, category: LintCategory) -> bool {
    let any = |prefixes: &[&str]| prefixes.iter().any(|p| relpath.starts_with(p));
    match category {
        // Telemetry timestamps spans; the watchdog measures phase
        // durations; the bench harness measures wall time. All are
        // observe-only by the §11 traced==untraced guarantee.
        LintCategory::WallClock => any(&[
            "vendor/telemetry/",
            "crates/bench/",
            "crates/core/src/supervision.rs",
        ]),
        // The deterministic pool and the watchdog are the two sanctioned
        // owners of OS threads.
        LintCategory::ThreadSpawn => any(&[
            "vendor/threadpool/",
            "crates/core/src/supervision.rs",
        ]),
        // Lossy casts are only policed where bytes are serialized.
        LintCategory::LossyCast => !CHECKPOINT_PATHS.contains(&relpath),
        _ => false,
    }
}

/// Numeric type names a cast to which is policed in checkpoint paths.
const NUMERIC_TYPES: [&str; 15] = [
    "f32", "f64", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64",
    "i128", "isize",
    // Not a numeric type, but `as char` shares the truncation hazard.
    "char",
];

fn is_punct(toks: &[Tok<'_>], i: usize, ch: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == ch)
}

fn is_ident(toks: &[Tok<'_>], i: usize, name: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
}

fn ident_at<'a>(toks: &[Tok<'a>], i: usize) -> Option<&'a str> {
    toks.get(i)
        .and_then(|t| (t.kind == TokKind::Ident).then_some(t.text))
}

/// `::` at token positions `i`, `i + 1`.
fn is_path_sep(toks: &[Tok<'_>], i: usize) -> bool {
    is_punct(toks, i, ":") && is_punct(toks, i + 1, ":")
}

/// One parsed `#[...]` attribute: its token span and salient contents.
struct Attr {
    /// Index just past the closing `]`.
    end: usize,
    is_cfg_test: bool,
    has_must_use: bool,
}

/// Parse the attribute starting at `#` (or `#!`) at index `i`. Returns
/// `None` if `i` does not start an attribute.
fn parse_attr(toks: &[Tok<'_>], i: usize) -> Option<Attr> {
    if !is_punct(toks, i, "#") {
        return None;
    }
    let mut j = i + 1;
    if is_punct(toks, j, "!") {
        j += 1;
    }
    if !is_punct(toks, j, "[") {
        return None;
    }
    let mut depth = 0usize;
    let mut is_cfg = false;
    let mut has_test = false;
    let mut has_must_use = false;
    while j < toks.len() {
        if is_punct(toks, j, "[") {
            depth += 1;
        } else if is_punct(toks, j, "]") {
            depth -= 1;
            if depth == 0 {
                return Some(Attr {
                    end: j + 1,
                    is_cfg_test: is_cfg && has_test,
                    has_must_use,
                });
            }
        } else if is_ident(toks, j, "cfg") {
            is_cfg = true;
        } else if is_ident(toks, j, "test") {
            has_test = true;
        } else if is_ident(toks, j, "must_use") {
            has_must_use = true;
        }
        j += 1;
    }
    // Unterminated attribute (broken input): treat the rest of the file
    // as the attribute so the scanner still terminates.
    Some(Attr {
        end: toks.len(),
        is_cfg_test: is_cfg && has_test,
        has_must_use,
    })
}

/// Starting at `from` (just past a `#[cfg(test)]` attribute), return the
/// index just past the annotated item: past the matching `}` of its first
/// top-level brace block, or past the `;` that ends a braceless item.
/// Intervening attributes are skipped wholesale.
fn skip_item(toks: &[Tok<'_>], mut i: usize) -> usize {
    // Skip any further attributes on the same item.
    while let Some(attr) = parse_attr(toks, i) {
        i = attr.end;
    }
    let mut paren = 0i64;
    let mut brace = 0i64;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct {
            match toks[i].text {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace <= 0 {
                        return i + 1;
                    }
                }
                ";" if paren <= 0 && brace == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    toks.len()
}

/// Try to match a `pub fn name(…&self…) -> …` without `#[must_use]`
/// starting at `i` (the `pub` token). Returns the hit line on success.
fn match_missing_must_use(toks: &[Tok<'_>], i: usize) -> Option<usize> {
    if !is_ident(toks, i, "pub") || !is_ident(toks, i + 1, "fn") {
        return None;
    }
    let name_line = toks.get(i + 2)?.line;
    // Find the opening paren of the argument list (skipping generics).
    let mut j = i + 3;
    while j < toks.len() && !is_punct(toks, j, "(") {
        if is_punct(toks, j, "{") || is_punct(toks, j, ";") {
            return None;
        }
        j += 1;
    }
    // First argument must be `&self` (parity with the historical lint:
    // `&mut self` methods are exempt — they are called for effect).
    if !(is_punct(toks, j + 1, "&") && is_ident(toks, j + 2, "self")) {
        return None;
    }
    // Find the matching close paren.
    let mut depth = 0i64;
    while j < toks.len() {
        if is_punct(toks, j, "(") {
            depth += 1;
        } else if is_punct(toks, j, ")") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    // A return type after the argument list makes the method flaggable —
    // unless the type is already `#[must_use]` at the definition
    // (`Result`, `Option`) or an `impl Trait` (iterators and closures,
    // whose traits carry the attribute themselves).
    if !(is_punct(toks, j + 1, "-") && is_punct(toks, j + 2, ">")) {
        return None;
    }
    let mut k = j + 3;
    while k < toks.len() && k < j + 9 {
        match ident_at(toks, k) {
            Some("Result" | "Option" | "impl") => return None,
            Some(_) => {}
            None if is_punct(toks, k, ":") => {}
            // Anything else ends the return-type path prefix.
            None => break,
        }
        k += 1;
    }
    Some(name_line)
}

/// Scan one file's source text. `relpath` is recorded verbatim in the
/// hits and drives the per-category path exemptions. Code under
/// `#[cfg(test)]` or `mod tests { … }` is exempt, as are comments,
/// strings, and sites carrying a justified
/// `// a3cs::allow(<category>): <reason>` waiver.
#[must_use]
pub fn scan_source(relpath: &str, source: &str) -> Vec<LintHit> {
    let lexed = lex(source);
    let toks = &lexed.tokens;
    let lossy_applies = CHECKPOINT_PATHS.contains(&relpath);
    let mut raw_hits: Vec<LintHit> = Vec::new();
    let mut push = |line: usize, category: LintCategory| {
        if !exempt(relpath, category) {
            raw_hits.push(LintHit {
                file: relpath.to_string(),
                line,
                category,
            });
        }
    };

    let mut must_use_armed = false;
    let mut i = 0usize;
    while i < toks.len() {
        // Attributes: inspected for cfg(test)/must_use, never matched.
        if let Some(attr) = parse_attr(toks, i) {
            if attr.is_cfg_test {
                i = skip_item(toks, attr.end);
                must_use_armed = false;
                continue;
            }
            must_use_armed = must_use_armed || attr.has_must_use;
            i = attr.end;
            continue;
        }
        // `mod tests { … }` without an explicit cfg attribute.
        if is_ident(toks, i, "mod") && is_ident(toks, i + 1, "tests") && is_punct(toks, i + 2, "{")
        {
            i = skip_item(toks, i);
            must_use_armed = false;
            continue;
        }

        let line = toks[i].line;
        if let Some(hit_line) = match_missing_must_use(toks, i) {
            if !must_use_armed {
                push(hit_line, LintCategory::MissingMustUse);
            }
        }

        match ident_at(toks, i) {
            Some("unwrap") if is_punct(toks, i.wrapping_sub(1), ".") && is_punct(toks, i + 1, "(") =>
            {
                push(line, LintCategory::Unwrap);
            }
            Some("expect") if is_punct(toks, i.wrapping_sub(1), ".") && is_punct(toks, i + 1, "(") =>
            {
                push(line, LintCategory::Expect);
            }
            Some("panic") if is_punct(toks, i + 1, "!") => push(line, LintCategory::Panic),
            Some("todo") if is_punct(toks, i + 1, "!") => push(line, LintCategory::Todo),
            Some("unimplemented") if is_punct(toks, i + 1, "!") => {
                push(line, LintCategory::Unimplemented);
            }
            Some("HashMap" | "HashSet") => {
                push(line, LintCategory::NondeterministicCollection);
            }
            Some("Instant") if is_path_sep(toks, i + 1) && is_ident(toks, i + 3, "now") => {
                push(line, LintCategory::WallClock);
            }
            Some("SystemTime") => push(line, LintCategory::WallClock),
            Some("thread")
                if is_path_sep(toks, i + 1)
                    && (is_ident(toks, i + 3, "spawn") || is_ident(toks, i + 3, "Builder")) =>
            {
                push(line, LintCategory::ThreadSpawn);
            }
            Some("thread_rng" | "from_entropy" | "RandomState") => {
                push(line, LintCategory::AmbientRng);
            }
            Some("rand") if is_path_sep(toks, i + 1) && is_ident(toks, i + 3, "random") => {
                push(line, LintCategory::AmbientRng);
            }
            Some("as")
                if lossy_applies
                    && ident_at(toks, i + 1).is_some_and(|t| NUMERIC_TYPES.contains(&t)) =>
            {
                push(line, LintCategory::LossyCast);
            }
            Some("unsafe") => push(line, LintCategory::UnsafeBlock),
            _ => {}
        }

        // Any non-attribute token ends the attribute block a pending
        // `#[must_use]` belongs to.
        must_use_armed = false;
        i += 1;
    }

    // Apply justified waivers: a waiver on line L covers hits of its
    // category on L itself (trailing comment) and on the first code line
    // after L — the comment may wrap over several lines, so "the next
    // line" is the next line holding a token, not literally L + 1.
    let next_code_line = |after: usize| {
        toks.iter()
            .map(|t| t.line)
            .find(|&l| l > after)
            .unwrap_or(after + 1)
    };
    let covered: Vec<(usize, usize, &str)> = lexed
        .waivers
        .iter()
        .filter(|w| w.justified)
        .map(|w| (w.line, next_code_line(w.line), w.category.as_str()))
        .collect();
    raw_hits.retain(|hit| {
        !covered.iter().any(|&(start, end, category)| {
            category == hit.category.as_str() && hit.line >= start && hit.line <= end
        })
    });
    raw_hits
}

/// Aggregate hits into allowlist counts.
#[must_use]
pub fn count_hits(hits: &[LintHit]) -> LintCounts {
    let mut counts = LintCounts::new();
    for hit in hits {
        *counts
            .entry((hit.file.clone(), hit.category.as_str().to_string()))
            .or_insert(0) += 1;
    }
    counts
}

/// Parse the allowlist file format: `#`-comments and blank lines ignored,
/// otherwise `<path> <category> <count>` per line.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_allowlist(text: &str) -> Result<LintCounts, String> {
    let mut counts = LintCounts::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(category), Some(count)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("allowlist line {}: expected `<path> <category> <count>`", idx + 1));
        };
        if LintCategory::parse(category).is_none() {
            return Err(format!("allowlist line {}: unknown category `{category}`", idx + 1));
        }
        let n: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count `{count}`", idx + 1))?;
        counts.insert((path.to_string(), category.to_string()), n);
    }
    Ok(counts)
}

/// Render counts in the allowlist file format (sorted, reproducible).
#[must_use]
pub fn format_allowlist(counts: &LintCounts) -> String {
    let mut out = String::from(
        "# a3cs-check lint allowlist: grandfathered counts per (file, category).\n\
         # Counts may only ratchet down. Regenerate with:\n\
         #   cargo run -p a3cs-check --bin lint -- --update\n",
    );
    for ((path, category), count) in counts {
        out.push_str(&format!("{path} {category} {count}\n"));
    }
    out
}

/// Outcome of comparing actual counts against the allowlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintOutcome {
    /// `(file, category, actual, allowed)` where actual exceeds allowed.
    pub violations: Vec<(String, String, usize, usize)>,
    /// `(file, category, actual, allowed)` where the allowlist can shrink.
    pub ratchets: Vec<(String, String, usize, usize)>,
}

impl LintOutcome {
    /// `true` when no count exceeds its allowance.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Compare actual counts with allowed ones. Entries absent from the
/// allowlist are allowed zero.
#[must_use]
pub fn compare(actual: &LintCounts, allowed: &LintCounts) -> LintOutcome {
    let mut outcome = LintOutcome::default();
    for (key, &n) in actual {
        let cap = allowed.get(key).copied().unwrap_or(0);
        if n > cap {
            outcome
                .violations
                .push((key.0.clone(), key.1.clone(), n, cap));
        } else if n < cap {
            outcome.ratchets.push((key.0.clone(), key.1.clone(), n, cap));
        }
    }
    for (key, &cap) in allowed {
        if !actual.contains_key(key) && cap > 0 {
            outcome.ratchets.push((key.0.clone(), key.1.clone(), 0, cap));
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cats(relpath: &str, src: &str) -> Vec<LintCategory> {
        scan_source(relpath, src).iter().map(|h| h.category).collect()
    }

    #[test]
    fn flags_panics_outside_tests_only() {
        let src = "\
pub fn risky(x: Option<u32>) -> u32 {
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = Some(1).unwrap();
        panic!(\"fine here\");
    }
}
";
        let hits = scan_source("a.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].category, LintCategory::Unwrap);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn comments_and_strings_do_not_count() {
        let src = "\
// this mentions .unwrap() in prose
/// docs may say panic!(...) too
pub fn fine() {
    let url = \"https://example.com\"; // trailing .expect( note
    let raw = r#\"HashMap::new() and thread::spawn inside\"#;
    let _ = (url, raw);
}
";
        assert!(scan_source("b.rs", src).is_empty());
    }

    #[test]
    fn mod_tests_without_cfg_attr_is_exempt() {
        let src = "mod tests {\n    fn helper() { panic!(\"x\") }\n}\nfn f() { todo!() }\n";
        assert_eq!(cats("c.rs", src), vec![LintCategory::Todo]);
    }

    #[test]
    fn todo_and_unimplemented_are_flagged() {
        let src = "fn later() {\n    todo!()\n}\nfn never() {\n    unimplemented!()\n}\n";
        assert_eq!(
            cats("c.rs", src),
            vec![LintCategory::Todo, LintCategory::Unimplemented]
        );
    }

    #[test]
    fn must_use_attribute_suppresses_the_hit() {
        let flagged = "impl X {\n    pub fn value(&self) -> u32 {\n        self.0\n    }\n}\n";
        assert_eq!(cats("d.rs", flagged), vec![LintCategory::MissingMustUse]);
        let ok = "impl X {\n    /// Doc.\n    #[must_use]\n    pub fn value(&self) -> u32 {\n        self.0\n    }\n}\n";
        assert!(scan_source("e.rs", ok).is_empty());
    }

    #[test]
    fn must_use_types_need_no_attribute() {
        let src = "\
impl X {
    pub fn a(&self) -> Result<u32, String> { Ok(self.0) }
    pub fn b(&self) -> io::Result<()> { Ok(()) }
    pub fn c(&self) -> Option<u32> { Some(self.0) }
    pub fn d(&self) -> impl Iterator<Item = u32> { std::iter::once(self.0) }
}
";
        assert!(scan_source("m.rs", src).is_empty());
    }

    #[test]
    fn multiline_signatures_are_caught() {
        // The historical line-based scanner missed these.
        let src = "impl X {\n    pub fn value(\n        &self,\n        k: u32,\n    ) -> u32 {\n        self.0 + k\n    }\n}\n";
        assert_eq!(cats("f.rs", src), vec![LintCategory::MissingMustUse]);
    }

    #[test]
    fn determinism_catalog_fires() {
        let src = "\
use std::collections::HashMap;
fn f() {
    let t = std::time::Instant::now();
    let h = std::thread::spawn(|| 1);
    let mut r = rand::thread_rng();
}
";
        let got = cats("g.rs", src);
        assert_eq!(
            got,
            vec![
                LintCategory::NondeterministicCollection,
                LintCategory::WallClock,
                LintCategory::ThreadSpawn,
                LintCategory::AmbientRng,
            ]
        );
    }

    #[test]
    fn lossy_cast_only_in_checkpoint_paths() {
        let src = "fn f(x: f32) -> u32 { x as u32 }\n";
        assert!(cats("crates/tensor/src/linalg.rs", src).is_empty());
        assert_eq!(
            cats("crates/core/src/binfmt.rs", src),
            vec![LintCategory::LossyCast]
        );
    }

    #[test]
    fn builtin_exemptions_apply() {
        let spawn = "fn f() { std::thread::spawn(|| 1); }\n";
        assert!(cats("vendor/threadpool/src/lib.rs", spawn).is_empty());
        assert_eq!(cats("crates/drl/src/a2c.rs", spawn), vec![LintCategory::ThreadSpawn]);
        let clock = "fn f() { let _ = std::time::Instant::now(); }\n";
        assert!(cats("vendor/telemetry/src/lib.rs", clock).is_empty());
        assert!(cats("crates/bench/src/bin/bench_par.rs", clock).is_empty());
    }

    #[test]
    fn justified_waivers_suppress_and_unjustified_do_not() {
        let waived = "\
// a3cs::allow(wall-clock): feeds the watchdog EWMA only, observe-only
fn f() { let _ = std::time::Instant::now(); }
";
        assert!(scan_source("h.rs", waived).is_empty());
        let same_line = "fn f() { unsafe { core::hint::unreachable_unchecked() } } // a3cs::allow(unsafe-block): reviewed\n";
        assert!(scan_source("h2.rs", same_line).is_empty());
        let unjustified = "\
// a3cs::allow(wall-clock)
fn f() { let _ = std::time::Instant::now(); }
";
        assert_eq!(cats("i.rs", unjustified), vec![LintCategory::WallClock]);
        let wrong_category = "\
// a3cs::allow(unsafe-block): wrong tag
fn f() { let _ = std::time::Instant::now(); }
";
        assert_eq!(cats("j.rs", wrong_category), vec![LintCategory::WallClock]);
    }

    #[test]
    fn hits_become_coded_diagnostics() {
        let hits = scan_source("k.rs", "fn f() { let x: Option<u32> = None; x.unwrap(); }\n");
        let report = hits_to_report(&hits);
        assert!(report.has_code(codes::LINT_UNWRAP));
        let json = report.to_json();
        assert!(json.contains("A3CS-L310"), "{json}");
        assert!(json.contains("k.rs:1"), "{json}");
    }

    #[test]
    fn allowlist_round_trip_and_compare() {
        let hits = vec![
            LintHit {
                file: "x.rs".into(),
                line: 1,
                category: LintCategory::Unwrap,
            },
            LintHit {
                file: "x.rs".into(),
                line: 2,
                category: LintCategory::Unwrap,
            },
        ];
        let actual = count_hits(&hits);
        let text = format_allowlist(&actual);
        let parsed = parse_allowlist(&text).expect("well-formed");
        assert_eq!(parsed, actual);
        assert!(compare(&actual, &parsed).is_ok());

        // One fewer hit than allowed: a ratchet opportunity, still ok.
        let fewer = count_hits(&hits[..1]);
        let outcome = compare(&fewer, &parsed);
        assert!(outcome.is_ok());
        assert_eq!(outcome.ratchets.len(), 1);

        // More hits than allowed: a violation.
        let mut more = actual.clone();
        *more.get_mut(&("x.rs".to_string(), "unwrap".to_string())).expect("key") = 3;
        assert!(!compare(&more, &parsed).is_ok());
    }

    #[test]
    fn new_categories_parse_in_allowlists() {
        let text = "x.rs nondet-collection 1\ny.rs lossy-cast 2\nz.rs unsafe-block 1\n";
        let counts = parse_allowlist(text).expect("well-formed");
        assert_eq!(counts.len(), 3);
    }

    #[test]
    fn malformed_allowlist_lines_error() {
        assert!(parse_allowlist("x.rs unwrap notanumber").is_err());
        assert!(parse_allowlist("x.rs nonsense 3").is_err());
        assert!(parse_allowlist("# comment\n\n").expect("ok").is_empty());
    }
}
