//! Delta checkpoint frames and the zero-dependency compression codec
//! (DESIGN.md §17).
//!
//! A checkpoint *chain* on disk is one **base frame** (the full payload)
//! followed by **delta frames**, one per later checkpoint, each carrying
//! the word-wise XOR of its payload against its parent's. Consecutive
//! co-search checkpoints differ in a sliver of their bytes (the sampled
//! path's weights, the optimiser slots it touched, the env states), so
//! the XOR stream is mostly zero words and the run-length codec collapses
//! it to a fraction of the full payload.
//!
//! Every frame is self-describing and self-verifying:
//!
//! - base frames record the codec and the payload length; the chain id of
//!   the chain they root is the FNV-1a hash of their payload (derivable,
//!   never trusted from disk);
//! - delta frames record the chain id, their 1-based position in the
//!   chain, the parent's iteration, and FNV-1a sums of both the parent
//!   payload and the reconstructed target payload, so replay verifies the
//!   chain link-by-link *and* the final reconstruction end-to-end.
//!
//! Frames are opaque payloads to the envelope layer: the store still
//! seals every frame with its own checksummed header, so bit rot is
//! caught before a frame is even parsed. All decoding is total — corrupt
//! input yields [`FrameError`], never a panic.
//!
//! The [`CheckpointIo`] trait abstracts the three filesystem operations
//! durable writes need, so tests inject write errors, short writes and
//! torn renames deterministically while the production path stays
//! `std::fs` ([`StdIo`]).

use crate::checkpoint::fnv1a64;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Magic prefix of an encoded base frame.
pub const BASE_FRAME_MAGIC: &[u8; 8] = b"A3CSFRB1";
/// Magic prefix of an encoded delta frame.
pub const DELTA_FRAME_MAGIC: &[u8; 8] = b"A3CSFRD1";

/// Per-frame compression applied to the (possibly XOR-diffed) payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointCodec {
    /// Store the stream verbatim (useful for debugging and as the
    /// degenerate baseline in benchmarks).
    Raw,
    /// Run-length encoding of zero `u32` words with varint-counted literal
    /// runs — delta streams are mostly zero words, and base payloads still
    /// shrink on zero-heavy regions (fresh optimiser slots).
    #[default]
    RleZero,
}

impl CheckpointCodec {
    fn tag(self) -> u8 {
        match self {
            CheckpointCodec::Raw => 0,
            CheckpointCodec::RleZero => 1,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(CheckpointCodec::Raw),
            1 => Some(CheckpointCodec::RleZero),
            _ => None,
        }
    }

    /// Stable lowercase name (used in telemetry and benchmark records).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CheckpointCodec::Raw => "raw",
            CheckpointCodec::RleZero => "rle-zero",
        }
    }
}

/// Why a frame could not be decoded or a delta could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The bytes are not a parsable frame (bad magic, truncated header,
    /// unknown codec, or a compressed stream that does not decode to the
    /// recorded length).
    Malformed(String),
    /// The frame decoded but belongs to a different chain, position or
    /// parent than the replay expected — applying it would reconstruct
    /// garbage.
    ChainMismatch(String),
    /// The reconstructed payload does not hash to the sum recorded in the
    /// frame: the parent the delta was diffed against is not the parent
    /// supplied.
    TargetChecksum {
        /// Sum recorded in the frame.
        stored: u64,
        /// Sum of the payload actually reconstructed.
        computed: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Malformed(m) => write!(f, "malformed checkpoint frame: {m}"),
            FrameError::ChainMismatch(m) => write!(f, "checkpoint chain mismatch: {m}"),
            FrameError::TargetChecksum { stored, computed } => write!(
                f,
                "delta reconstruction checksum mismatch: frame says {stored:016x}, \
                 replay produced {computed:016x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

// --- varint + RLE-of-zero-words codec -----------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        // a3cs::allow(lossy-cast): intentional truncation to the low 7
        // bits of the varint; the remaining bits follow in later bytes.
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    for shift in 0..10 {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << (shift * 7);
        if byte & 0x80 == 0 {
            return Some(v);
        }
    }
    None // varint longer than 10 bytes cannot encode a u64
}

/// Compress `raw` with `codec`. The output does not record `raw.len()` —
/// frames carry the length in their header, and [`decompress`] validates
/// exact coverage against it.
#[must_use]
pub fn compress(raw: &[u8], codec: CheckpointCodec) -> Vec<u8> {
    match codec {
        CheckpointCodec::Raw => raw.to_vec(),
        CheckpointCodec::RleZero => {
            let words = raw.len() / 4;
            let tail = &raw[words * 4..];
            let word_at = |i: usize| &raw[i * 4..i * 4 + 4];
            let mut out = Vec::with_capacity(raw.len() / 8 + 16);
            let mut i = 0;
            while i < words {
                let zero = word_at(i) == [0u8; 4];
                let mut j = i + 1;
                while j < words && (word_at(j) == [0u8; 4]) == zero {
                    j += 1;
                }
                let run = (j - i) as u64;
                if zero {
                    put_varint(&mut out, run << 1);
                } else {
                    put_varint(&mut out, (run << 1) | 1);
                    out.extend_from_slice(&raw[i * 4..j * 4]);
                }
                i = j;
            }
            out.extend_from_slice(tail);
            out
        }
    }
}

/// Invert [`compress`], validating that the stream covers exactly
/// `raw_len` bytes.
///
/// # Errors
///
/// [`FrameError::Malformed`] when the stream is truncated, overruns
/// `raw_len`, or ends before covering it.
pub fn decompress(
    compressed: &[u8],
    raw_len: usize,
    codec: CheckpointCodec,
) -> Result<Vec<u8>, FrameError> {
    match codec {
        CheckpointCodec::Raw => {
            if compressed.len() != raw_len {
                return Err(FrameError::Malformed(format!(
                    "raw codec stream is {} bytes for a {raw_len}-byte payload",
                    compressed.len()
                )));
            }
            Ok(compressed.to_vec())
        }
        CheckpointCodec::RleZero => {
            let words = raw_len / 4;
            let tail_len = raw_len - words * 4;
            let mut out = Vec::with_capacity(raw_len);
            let mut pos = 0;
            while out.len() < words * 4 {
                let Some(op) = get_varint(compressed, &mut pos) else {
                    return Err(FrameError::Malformed(
                        "compressed stream truncated mid-op".to_string(),
                    ));
                };
                let run = usize::try_from(op >> 1).map_err(|_| {
                    FrameError::Malformed("run length exceeds the address space".to_string())
                })?;
                if run == 0 || run > words - out.len() / 4 {
                    return Err(FrameError::Malformed(format!(
                        "run of {run} words at word {} of {words}",
                        out.len() / 4
                    )));
                }
                if op & 1 == 0 {
                    out.resize(out.len() + run * 4, 0);
                } else {
                    let lit = compressed.get(pos..pos + run * 4).ok_or_else(|| {
                        FrameError::Malformed("literal run truncated".to_string())
                    })?;
                    out.extend_from_slice(lit);
                    pos += run * 4;
                }
            }
            let tail = compressed.get(pos..pos + tail_len).ok_or_else(|| {
                FrameError::Malformed("tail bytes truncated".to_string())
            })?;
            out.extend_from_slice(tail);
            pos += tail_len;
            if pos != compressed.len() {
                return Err(FrameError::Malformed(format!(
                    "{} trailing bytes after the stream",
                    compressed.len() - pos
                )));
            }
            Ok(out)
        }
    }
}

// --- frame encoding ------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let chunk: [u8; 8] = bytes.get(*pos..*pos + 8)?.try_into().ok()?;
    *pos += 8;
    Some(u64::from_le_bytes(chunk))
}

fn get_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let chunk: [u8; 4] = bytes.get(*pos..*pos + 4)?.try_into().ok()?;
    *pos += 4;
    Some(u32::from_le_bytes(chunk))
}

/// `true` if `bytes` starts with either frame magic (as opposed to a
/// legacy raw checkpoint payload, which starts with the checkpoint's own
/// binary magic or `{`).
#[must_use]
pub fn is_frame(bytes: &[u8]) -> bool {
    bytes.starts_with(BASE_FRAME_MAGIC) || bytes.starts_with(DELTA_FRAME_MAGIC)
}

/// `true` if `bytes` is an encoded base frame.
#[must_use]
pub fn is_base_frame(bytes: &[u8]) -> bool {
    bytes.starts_with(BASE_FRAME_MAGIC)
}

/// Encode `payload` as a base frame: the root of a new chain whose id is
/// `fnv1a64(payload)`.
#[must_use]
pub fn encode_base_frame(payload: &[u8], codec: CheckpointCodec) -> Vec<u8> {
    let compressed = compress(payload, codec);
    let mut out = Vec::with_capacity(compressed.len() + 24);
    out.extend_from_slice(BASE_FRAME_MAGIC);
    out.push(codec.tag());
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&compressed);
    out
}

/// Decode a base frame back to its payload.
///
/// # Errors
///
/// [`FrameError::Malformed`] on bad magic, an unknown codec, or a stream
/// that does not decompress to the recorded length.
pub fn decode_base_frame(frame: &[u8]) -> Result<Vec<u8>, FrameError> {
    let rest = frame.strip_prefix(BASE_FRAME_MAGIC.as_slice()).ok_or_else(|| {
        FrameError::Malformed("not a base frame (bad magic)".to_string())
    })?;
    let mut pos = 0;
    let &tag = rest.first().ok_or_else(|| {
        FrameError::Malformed("base frame truncated before the codec tag".to_string())
    })?;
    pos += 1;
    let codec = CheckpointCodec::from_tag(tag)
        .ok_or_else(|| FrameError::Malformed(format!("unknown codec tag {tag}")))?;
    let raw_len = get_u64(rest, &mut pos).ok_or_else(|| {
        FrameError::Malformed("base frame truncated in the header".to_string())
    })?;
    let raw_len = usize::try_from(raw_len).map_err(|_| {
        FrameError::Malformed("payload length exceeds the address space".to_string())
    })?;
    decompress(&rest[pos..], raw_len, codec)
}

/// Header fields of a decoded delta frame (exposed for scrubbing, which
/// verifies chains without reconstructing payloads it does not need).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaHeader {
    /// FNV-1a hash of the chain's base payload.
    pub chain_id: u64,
    /// 1-based position of this delta in its chain.
    pub position: u32,
    /// Iteration of the frame this delta was diffed against.
    pub parent_iteration: u64,
    /// FNV-1a hash of the parent payload.
    pub parent_sum: u64,
    /// FNV-1a hash of the payload this delta reconstructs.
    pub target_sum: u64,
    /// Length in bytes of the payload this delta reconstructs.
    pub raw_len: u64,
}

/// Encode the delta frame that turns `parent` into `target`.
///
/// The XOR stream has `target.len()` bytes: `target[i] ^ parent[i]`, with
/// the parent zero-padded past its end, so growing and shrinking payloads
/// both round-trip.
#[must_use]
pub fn encode_delta_frame(
    parent: &[u8],
    target: &[u8],
    chain_id: u64,
    position: u32,
    parent_iteration: u64,
    codec: CheckpointCodec,
) -> Vec<u8> {
    let mut xor: Vec<u8> = Vec::with_capacity(target.len());
    for (i, &t) in target.iter().enumerate() {
        xor.push(t ^ parent.get(i).copied().unwrap_or(0));
    }
    let compressed = compress(&xor, codec);
    let mut out = Vec::with_capacity(compressed.len() + 56);
    out.extend_from_slice(DELTA_FRAME_MAGIC);
    out.push(codec.tag());
    put_u64(&mut out, chain_id);
    put_u32(&mut out, position);
    put_u64(&mut out, parent_iteration);
    put_u64(&mut out, fnv1a64(parent));
    put_u64(&mut out, fnv1a64(target));
    put_u64(&mut out, target.len() as u64);
    out.extend_from_slice(&compressed);
    out
}

/// Decode just the header of a delta frame.
///
/// # Errors
///
/// [`FrameError::Malformed`] on bad magic, an unknown codec, or a
/// truncated header.
pub fn decode_delta_header(frame: &[u8]) -> Result<(DeltaHeader, CheckpointCodec), FrameError> {
    let rest = frame.strip_prefix(DELTA_FRAME_MAGIC.as_slice()).ok_or_else(|| {
        FrameError::Malformed("not a delta frame (bad magic)".to_string())
    })?;
    let mut pos = 0;
    let &tag = rest.first().ok_or_else(|| {
        FrameError::Malformed("delta frame truncated before the codec tag".to_string())
    })?;
    pos += 1;
    let codec = CheckpointCodec::from_tag(tag)
        .ok_or_else(|| FrameError::Malformed(format!("unknown codec tag {tag}")))?;
    let header = (|| {
        Some(DeltaHeader {
            chain_id: get_u64(rest, &mut pos)?,
            position: get_u32(rest, &mut pos)?,
            parent_iteration: get_u64(rest, &mut pos)?,
            parent_sum: get_u64(rest, &mut pos)?,
            target_sum: get_u64(rest, &mut pos)?,
            raw_len: get_u64(rest, &mut pos)?,
        })
    })()
    .ok_or_else(|| FrameError::Malformed("delta frame truncated in the header".to_string()))?;
    Ok((header, codec))
}

/// Apply a delta frame to `parent`, verifying every chain invariant:
/// the chain id, the expected position, the parent's checksum before the
/// XOR is applied, and the reconstructed target's checksum after.
///
/// # Errors
///
/// [`FrameError`] on any verification failure; `parent` is never trusted
/// to be right just because the bytes decode.
pub fn apply_delta_frame(
    frame: &[u8],
    parent: &[u8],
    expect_chain_id: u64,
    expect_position: u32,
) -> Result<Vec<u8>, FrameError> {
    let (header, codec) = decode_delta_header(frame)?;
    if header.chain_id != expect_chain_id {
        return Err(FrameError::ChainMismatch(format!(
            "frame belongs to chain {:016x}, replaying chain {expect_chain_id:016x}",
            header.chain_id
        )));
    }
    if header.position != expect_position {
        return Err(FrameError::ChainMismatch(format!(
            "frame is chain position {}, expected {expect_position}",
            header.position
        )));
    }
    let parent_sum = fnv1a64(parent);
    if header.parent_sum != parent_sum {
        return Err(FrameError::ChainMismatch(format!(
            "frame was diffed against parent {:016x}, replay has {parent_sum:016x}",
            header.parent_sum
        )));
    }
    let raw_len = usize::try_from(header.raw_len).map_err(|_| {
        FrameError::Malformed("payload length exceeds the address space".to_string())
    })?;
    // Header: magic(8) + codec(1) + chain_id/parent_iteration/parent_sum/
    // target_sum/raw_len (5×8) + position(4).
    let body = &frame[8 + 1 + 8 * 5 + 4..];
    let xor = decompress(body, raw_len, codec)?;
    let target: Vec<u8> = xor
        .iter()
        .enumerate()
        .map(|(i, &d)| d ^ parent.get(i).copied().unwrap_or(0))
        .collect();
    let computed = fnv1a64(&target);
    if header.target_sum != computed {
        return Err(FrameError::TargetChecksum {
            stored: header.target_sum,
            computed,
        });
    }
    Ok(target)
}

// --- the I/O seam durable writes go through ------------------------------

/// The three filesystem operations durable checkpoint writes need,
/// abstracted so fault-injection tests can fail them deterministically.
/// Directory creation and reads stay on `std::fs` — only the mutations
/// that can tear a frame are behind the seam.
pub trait CheckpointIo {
    /// Write `contents` to `path`, replacing any existing file.
    ///
    /// # Errors
    /// Any I/O failure; a failed write may leave a partial file behind
    /// (that is the point of the injected short-write fault).
    fn write_file(&mut self, path: &Path, contents: &[u8]) -> io::Result<()>;

    /// Atomically rename `from` to `to`.
    ///
    /// # Errors
    /// Any I/O failure; on failure `from` may remain on disk.
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove the file at `path`.
    ///
    /// # Errors
    /// Any I/O failure.
    fn remove_file(&mut self, path: &Path) -> io::Result<()>;
}

/// The production [`CheckpointIo`]: plain `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdIo;

impl CheckpointIo for StdIo {
    fn write_file(&mut self, path: &Path, contents: &[u8]) -> io::Result<()> {
        fs::write(path, contents)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&mut self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_round_trips_boundary_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos), Some(v));
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn rle_zero_collapses_zero_runs() {
        let mut raw = vec![0u8; 4096];
        raw[100] = 7;
        raw[2000] = 9;
        let compressed = compress(&raw, CheckpointCodec::RleZero);
        assert!(
            compressed.len() < 32,
            "two dirty words in 1024 must collapse: {} bytes",
            compressed.len()
        );
        assert_eq!(
            decompress(&compressed, raw.len(), CheckpointCodec::RleZero).expect("round trip"),
            raw
        );
    }

    #[test]
    fn codecs_round_trip_unaligned_lengths() {
        for codec in [CheckpointCodec::Raw, CheckpointCodec::RleZero] {
            for len in [0usize, 1, 3, 4, 5, 7, 8, 1023] {
                let raw: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
                let compressed = compress(&raw, codec);
                assert_eq!(
                    decompress(&compressed, len, codec).expect("round trip"),
                    raw,
                    "codec {codec:?} len {len}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary byte streams survive the codec exactly.
        #[test]
        fn rle_zero_round_trips_arbitrary_bytes(raw in prop::collection::vec(any::<u8>(), 0..2048)) {
            let compressed = compress(&raw, CheckpointCodec::RleZero);
            prop_assert_eq!(
                decompress(&compressed, raw.len(), CheckpointCodec::RleZero).expect("round trip"),
                raw
            );
        }

        /// Sparse streams (mostly zeros) compress and still round-trip.
        #[test]
        fn rle_zero_round_trips_sparse_streams(
            len in 16usize..2048,
            dirty in prop::collection::vec((0usize..2048, any::<u8>()), 0..8),
        ) {
            let mut raw = vec![0u8; len];
            for (at, v) in dirty {
                raw[at % len] = v;
            }
            let compressed = compress(&raw, CheckpointCodec::RleZero);
            prop_assert_eq!(
                decompress(&compressed, len, CheckpointCodec::RleZero).expect("round trip"),
                raw
            );
        }

        /// Truncating or corrupting a compressed stream is an error, never a
        /// panic and never a silent wrong answer of the right length.
        #[test]
        fn corrupted_streams_are_errors_or_detectable(
            raw in prop::collection::vec(any::<u8>(), 1..512),
            cut in 0usize..512,
        ) {
            let compressed = compress(&raw, CheckpointCodec::RleZero);
            let cut = cut.min(compressed.len().saturating_sub(1));
            // Either the decode fails, or it succeeds with different bytes
            // (caught one level up by the frame checksums).
            if let Ok(out) = decompress(&compressed[..cut], raw.len(), CheckpointCodec::RleZero) {
                prop_assert_ne!(out, raw);
            }
        }

        /// Base frames round-trip arbitrary payloads under both codecs.
        #[test]
        fn base_frame_round_trip(
            payload in prop::collection::vec(any::<u8>(), 0..2048),
            use_raw in any::<bool>(),
        ) {
            let codec = if use_raw { CheckpointCodec::Raw } else { CheckpointCodec::RleZero };
            let frame = encode_base_frame(&payload, codec);
            prop_assert!(is_frame(&frame) && is_base_frame(&frame));
            prop_assert_eq!(decode_base_frame(&frame).expect("round trip"), payload);
        }

        /// Delta frames reconstruct the target exactly, including when the
        /// payload grows or shrinks between checkpoints.
        #[test]
        fn delta_frame_round_trip(
            parent in prop::collection::vec(any::<u8>(), 0..1024),
            target in prop::collection::vec(any::<u8>(), 0..1024),
        ) {
            let chain_id = fnv1a64(&parent);
            let frame = encode_delta_frame(&parent, &target, chain_id, 1, 5, CheckpointCodec::RleZero);
            prop_assert!(is_frame(&frame) && !is_base_frame(&frame));
            let back = apply_delta_frame(&frame, &parent, chain_id, 1).expect("round trip");
            prop_assert_eq!(back, target);
        }

        /// Truncating a frame anywhere yields an error, never a panic.
        #[test]
        fn truncated_frames_are_errors(
            payload in prop::collection::vec(any::<u8>(), 0..512),
            cut in 0usize..600,
        ) {
            let base = encode_base_frame(&payload, CheckpointCodec::RleZero);
            let cut_b = cut.min(base.len().saturating_sub(1));
            prop_assert!(decode_base_frame(&base[..cut_b]).is_err());
            let delta =
                encode_delta_frame(&payload, &payload, fnv1a64(&payload), 1, 0, CheckpointCodec::RleZero);
            let cut_d = cut.min(delta.len().saturating_sub(1));
            prop_assert!(apply_delta_frame(&delta[..cut_d], &payload, fnv1a64(&payload), 1).is_err());
        }
    }

    #[test]
    fn apply_verifies_every_chain_invariant() {
        let parent = b"parent payload".to_vec();
        let target = b"target payload!".to_vec();
        let chain_id = fnv1a64(&parent);
        let frame = encode_delta_frame(&parent, &target, chain_id, 3, 7, CheckpointCodec::RleZero);

        // Happy path.
        assert_eq!(
            apply_delta_frame(&frame, &parent, chain_id, 3).expect("applies"),
            target
        );
        // Wrong chain id.
        assert!(matches!(
            apply_delta_frame(&frame, &parent, chain_id ^ 1, 3),
            Err(FrameError::ChainMismatch(_))
        ));
        // Wrong position.
        assert!(matches!(
            apply_delta_frame(&frame, &parent, chain_id, 4),
            Err(FrameError::ChainMismatch(_))
        ));
        // Wrong parent bytes: caught by the parent sum before any XOR.
        assert!(matches!(
            apply_delta_frame(&frame, b"parent payloaX", chain_id, 3),
            Err(FrameError::ChainMismatch(_))
        ));
        // Flipped byte in the frame body: caught by the target sum.
        let mut corrupt = frame.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        let err = apply_delta_frame(&corrupt, &parent, chain_id, 3);
        assert!(
            matches!(
                err,
                Err(FrameError::TargetChecksum { .. }) | Err(FrameError::Malformed(_))
            ),
            "{err:?}"
        );
    }

    #[test]
    fn delta_header_exposes_chain_fields() {
        let parent = vec![1u8; 64];
        let target = vec![2u8; 72];
        let frame = encode_delta_frame(&parent, &target, 42, 9, 100, CheckpointCodec::Raw);
        let (header, codec) = decode_delta_header(&frame).expect("header decodes");
        assert_eq!(codec, CheckpointCodec::Raw);
        assert_eq!(header.chain_id, 42);
        assert_eq!(header.position, 9);
        assert_eq!(header.parent_iteration, 100);
        assert_eq!(header.parent_sum, fnv1a64(&parent));
        assert_eq!(header.target_sum, fnv1a64(&target));
        assert_eq!(header.raw_len, 72);
    }

    #[test]
    fn frames_never_collide_with_legacy_payloads() {
        // Legacy payloads begin with the checkpoint binary magic or '{'.
        assert!(!is_frame(b"A3CSBIN2...."));
        assert!(!is_frame(b"{\"version\":2}"));
        assert!(!is_frame(b""));
    }

    #[test]
    fn identical_payload_delta_is_tiny() {
        let payload = vec![0xabu8; 64 * 1024];
        let frame = encode_delta_frame(
            &payload,
            &payload,
            fnv1a64(&payload),
            1,
            0,
            CheckpointCodec::RleZero,
        );
        assert!(
            frame.len() < 128,
            "an all-zero XOR stream must collapse: {} bytes",
            frame.len()
        );
    }
}
