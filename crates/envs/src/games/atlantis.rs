//! Atlantis: three fixed cannons defend a city against crossing raiders.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;
const CITY_HP: u32 = 10;
/// Column bands covered by the left/centre/right cannons.
const BANDS: [(isize, isize); 3] = [(0, 3), (4, 7), (8, 11)];
const COOLDOWN: u32 = 2;

#[derive(Debug, Clone, Copy)]
struct Raider {
    row: isize,
    col: isize,
    dir: isize,
}

/// Atlantis stand-in: raiders cross the upper rows; three cannons each
/// cover a column band and, when fired, destroy the lowest raider in their
/// band (`+1`). Raiders that exit untouched damage the city; ten hits end
/// the episode. Deliberately easy — matching the paper's observation that
/// even the Vanilla network scores millions on Atlantis.
///
/// Actions: `0` no-op, `1` fire-left, `2` fire-centre, `3` fire-right.
#[derive(Debug, Clone)]
pub struct Atlantis {
    rng: StdRng,
    raiders: Vec<Raider>,
    cooldowns: [u32; 3],
    city_hp: u32,
    clock: u32,
    done: bool,
}

impl Atlantis {
    /// Create a seeded Atlantis game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Atlantis {
            rng: StdRng::seed_from_u64(seed),
            raiders: Vec::new(),
            cooldowns: [0; 3],
            city_hp: CITY_HP,
            clock: 0,
            done: true,
        }
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(3, GRID, GRID);
        for r in &self.raiders {
            canvas.paint(0, r.row, r.col, 1.0);
        }
        // Cannons at the bottom of plane 1 (static, with cooldown dimming).
        for (i, &(lo, hi)) in BANDS.iter().enumerate() {
            let col = (lo + hi) / 2;
            let v = if self.cooldowns[i] == 0 { 1.0 } else { 0.4 };
            canvas.paint(1, GRID as isize - 1, col, v);
        }
        // City HP bar.
        for c in 0..self.city_hp as usize {
            canvas.paint(2, GRID as isize - 1, c as isize, 1.0);
        }
        canvas.into_observation()
    }
}

impl Environment for Atlantis {
    fn name(&self) -> &str {
        "Atlantis"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (3, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        4
    }

    fn reset(&mut self) -> Vec<f32> {
        self.raiders.clear();
        self.cooldowns = [0; 3];
        self.city_hp = CITY_HP;
        self.clock = 0;
        self.done = false;
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        self.clock += 1;
        let mut reward = 0.0f32;

        for cd in &mut self.cooldowns {
            *cd = cd.saturating_sub(1);
        }

        if (1..=3).contains(&action) {
            let cannon = action - 1;
            if self.cooldowns[cannon] == 0 {
                self.cooldowns[cannon] = COOLDOWN;
                let (lo, hi) = BANDS[cannon];
                // Destroy the lowest (most threatening) raider in the band.
                if let Some(i) = self
                    .raiders
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.col >= lo && r.col <= hi)
                    .max_by_key(|(_, r)| r.row)
                    .map(|(i, _)| i)
                {
                    self.raiders.swap_remove(i);
                    reward += 1.0;
                }
            }
        }

        // Raiders cross; untouched exits damage the city.
        let mut escaped = 0;
        self.raiders.retain_mut(|r| {
            r.col += r.dir;
            if (0..GRID as isize).contains(&r.col) {
                true
            } else {
                escaped += 1;
                false
            }
        });
        if escaped > 0 {
            self.city_hp = self.city_hp.saturating_sub(escaped);
            if self.city_hp == 0 {
                self.done = true;
            }
        }

        // Spawns.
        if self.clock % 3 == 0 && self.raiders.len() < 5 {
            let dir = if self.rng.gen_bool(0.5) { 1 } else { -1 };
            self.raiders.push(Raider {
                row: self.rng.gen_range(1..5),
                col: if dir > 0 { 0 } else { GRID as isize - 1 },
                dir,
            });
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("Atlantis");
        w.rng(&self.rng);
        w.usize(self.raiders.len());
        for item in &self.raiders {
            w.isize(item.row);
            w.isize(item.col);
            w.isize(item.dir);
        }
        for item in &self.cooldowns {
            w.u32(*item);
        }
        w.u32(self.city_hp);
        w.u32(self.clock);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "Atlantis")?;
        self.rng = r.rng()?;
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(Raider { row: r.isize()?, col: r.isize()?, dir: r.isize()? });
        }
        self.raiders = items;
        for item in &mut self.cooldowns {
            *item = r.u32()?;
        }
        self.city_hp = r.u32()?;
        self.clock = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(Atlantis::new(81), Atlantis::new(81), 400);
    }

    #[test]
    fn random_play_scores_easily() {
        let mut env = Atlantis::new(1);
        let total = random_rollout(&mut env, 800, 12);
        assert!(total > 0.0, "Atlantis is easy; random fire should score");
    }

    #[test]
    fn idle_city_falls() {
        let mut env = Atlantis::new(2);
        let _ = env.reset();
        let mut steps = 0;
        loop {
            steps += 1;
            if env.step(0).done {
                break;
            }
            assert!(steps < 5000);
        }
    }

    #[test]
    fn cooldown_limits_fire_rate() {
        let mut env = Atlantis::new(3);
        let _ = env.reset();
        // Let raiders accumulate.
        for _ in 0..6 {
            let _ = env.step(0);
        }
        let r1 = env.step(2).reward;
        let r2 = env.step(2).reward; // still cooling down
        assert!(r1 >= r2, "second immediate shot cannot outscore the first");
    }

    #[test]
    fn rotating_fire_sustains_defense_longer_than_idle() {
        let lifetime = |fire: bool, seed: u64| {
            let mut env = Atlantis::new(seed);
            let _ = env.reset();
            let mut steps = 0u32;
            loop {
                steps += 1;
                let a = if fire { 1 + (steps as usize % 3) } else { 0 };
                if env.step(a).done || steps > 3000 {
                    return steps;
                }
            }
        };
        assert!(lifetime(true, 5) > lifetime(false, 5));
    }
}
