//! Negative fixture: parallelism through the deterministic pool never
//! fires A3CS-L303.
pub fn fan_out(pool: &threadpool::Pool, items: &[u32]) -> u32 {
    pool.map_reduce(items, |x| x * 2, |a, b| a + b)
}
